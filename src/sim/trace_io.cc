#include "sim/trace_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace uniloc::sim {

namespace {

// Record kinds, one per line:
//   V <venue> ; P <step_period> ; S <x> <y> <heading>    (header)
//   F <t> <truth_x> <truth_y> <truth_heading> <truth_env> <truth_arclen>
//     <gps_enabled>                                       (starts a frame)
//   W <id> <rssi> ...   (wifi scan of the current frame)
//   C <id> <rssi> ...   (cell scan)
//   G <lat> <lon> <hdop> <sats>                           (gps fix)
//   I <t> <accel> <gyro> <mag> ...                        (imu samples, 4
//                                                          numbers each)
//   A <lux> <mag_sd>                                      (ambient)
//   L <x> <y> <env> <kind> ...                            (landmarks, 4
//                                                          numbers each)

void write_scan(std::ostream& os, char tag,
                const std::vector<ApReading>& scan) {
  if (scan.empty()) return;
  os << tag;
  for (const ApReading& r : scan) os << ' ' << r.id << ' ' << r.rssi_dbm;
  os << '\n';
}

std::vector<ApReading> parse_scan(std::istringstream& ss) {
  std::vector<ApReading> scan;
  int id;
  double rssi;
  while (ss >> id >> rssi) scan.push_back({id, rssi});
  return scan;
}

}  // namespace

void write_trace(const Trace& trace, std::ostream& os) {
  os << std::setprecision(17);
  os << "# uniloc sensor trace v1\n";
  os << "V " << trace.venue << '\n';
  os << "P " << trace.step_period_s << '\n';
  os << "S " << trace.start_pos.x << ' ' << trace.start_pos.y << ' '
     << trace.start_heading << '\n';
  for (const SensorFrame& f : trace.frames) {
    os << "F " << f.t << ' ' << f.truth_pos.x << ' ' << f.truth_pos.y << ' '
       << f.truth_heading << ' ' << static_cast<int>(f.truth_env) << ' '
       << f.truth_arclen << ' ' << (f.gps_enabled ? 1 : 0) << '\n';
    write_scan(os, 'W', f.wifi);
    write_scan(os, 'C', f.cell);
    if (f.gps.has_value()) {
      os << "G " << f.gps->pos.lat_deg << ' ' << f.gps->pos.lon_deg << ' '
         << f.gps->hdop << ' ' << f.gps->num_satellites << '\n';
    }
    if (!f.imu.empty()) {
      os << 'I';
      for (const ImuSample& s : f.imu) {
        os << ' ' << s.t << ' ' << s.accel_mag << ' ' << s.gyro_z << ' '
           << s.mag_heading;
      }
      os << '\n';
    }
    os << "A " << f.ambient.light_lux << ' ' << f.ambient.mag_field_sd_ut
       << '\n';
    if (!f.landmarks.empty()) {
      os << 'L';
      for (const LandmarkObservation& l : f.landmarks) {
        os << ' ' << l.map_pos.x << ' ' << l.map_pos.y << ' '
           << static_cast<int>(l.env) << ' ' << l.kind;
      }
      os << '\n';
    }
  }
}

void write_trace(const Trace& trace, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_trace: cannot open " + path);
  write_trace(trace, os);
  if (!os) throw std::runtime_error("write_trace: write failed: " + path);
}

Trace read_trace(std::istream& is) {
  Trace trace;
  std::string line;
  SensorFrame* cur = nullptr;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    char tag;
    ss >> tag;
    auto fail = [&](const char* why) {
      throw std::runtime_error("read_trace: line " + std::to_string(line_no) +
                               ": " + why);
    };
    switch (tag) {
      case 'V':
        ss >> trace.venue;
        break;
      case 'P':
        if (!(ss >> trace.step_period_s)) fail("bad period");
        break;
      case 'S':
        if (!(ss >> trace.start_pos.x >> trace.start_pos.y >>
              trace.start_heading)) {
          fail("bad start");
        }
        break;
      case 'F': {
        SensorFrame f;
        int env = 0, gps_en = 0;
        if (!(ss >> f.t >> f.truth_pos.x >> f.truth_pos.y >>
              f.truth_heading >> env >> f.truth_arclen >> gps_en)) {
          fail("bad frame");
        }
        f.truth_env = static_cast<SegmentType>(env);
        f.gps_enabled = gps_en != 0;
        trace.frames.push_back(std::move(f));
        cur = &trace.frames.back();
        break;
      }
      case 'W':
        if (cur == nullptr) fail("scan before frame");
        cur->wifi = parse_scan(ss);
        break;
      case 'C':
        if (cur == nullptr) fail("scan before frame");
        cur->cell = parse_scan(ss);
        break;
      case 'G': {
        if (cur == nullptr) fail("gps before frame");
        GpsFix fix;
        if (!(ss >> fix.pos.lat_deg >> fix.pos.lon_deg >> fix.hdop >>
              fix.num_satellites)) {
          fail("bad gps");
        }
        cur->gps = fix;
        break;
      }
      case 'I': {
        if (cur == nullptr) fail("imu before frame");
        ImuSample s;
        while (ss >> s.t >> s.accel_mag >> s.gyro_z >> s.mag_heading) {
          cur->imu.push_back(s);
        }
        break;
      }
      case 'A':
        if (cur == nullptr) fail("ambient before frame");
        if (!(ss >> cur->ambient.light_lux >> cur->ambient.mag_field_sd_ut)) {
          fail("bad ambient");
        }
        break;
      case 'L': {
        if (cur == nullptr) fail("landmark before frame");
        LandmarkObservation l;
        int env;
        while (ss >> l.map_pos.x >> l.map_pos.y >> env >> l.kind) {
          l.env = static_cast<SegmentType>(env);
          cur->landmarks.push_back(l);
        }
        break;
      }
      default:
        fail("unknown record tag");
    }
  }
  return trace;
}

Trace read_trace(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("read_trace: cannot open " + path);
  return read_trace(is);
}

}  // namespace uniloc::sim
