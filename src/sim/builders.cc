#include "sim/builders.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "stats/rng.h"

namespace uniloc::sim {

namespace {

constexpr double deg2rad(double d) { return d * std::numbers::pi / 180.0; }

/// Per-segment-type AP deployment spacing in meters (0 = no APs).
double ap_spacing(SegmentType t) {
  switch (t) {
    case SegmentType::kOffice: return 15.0;
    case SegmentType::kCorridor: return 22.0;
    case SegmentType::kBasement: return 0.0;
    case SegmentType::kCarPark: return 55.0;
    case SegmentType::kOpenSpace: return 70.0;
    case SegmentType::kMallAisle: return 14.0;
  }
  return 0.0;
}

geo::LatLon campus_anchor() { return {1.3483, 103.6831}; }  // NTU campus.

}  // namespace

Walkway make_walkway(std::string name, geo::Vec2 start, double heading_deg,
                     const std::vector<Leg>& legs) {
  Walkway w;
  w.name = std::move(name);
  std::vector<geo::Vec2> pts{start};
  double heading = deg2rad(heading_deg);
  double arclen = 0.0;
  for (const Leg& leg : legs) {
    const geo::Vec2 dir{std::cos(heading), std::sin(heading)};
    pts.push_back(pts.back() + dir * leg.length_m);
    const double seg_start = arclen;
    arclen += leg.length_m;
    const double width =
        leg.width_m > 0.0 ? leg.width_m : default_corridor_width(leg.type);
    if (!w.segments.empty() && w.segments.back().type == leg.type &&
        w.segments.back().corridor_width_m == width) {
      w.segments.back().end_arclen = arclen;
    } else {
      w.segments.push_back({leg.type, seg_start, arclen, width});
    }
    heading += deg2rad(leg.turn_after_deg);
  }
  w.line = geo::Polyline(std::move(pts));
  return w;
}

void deploy_access_points(Place& place, std::uint64_t seed) {
  stats::Rng rng(stats::hash_combine(seed, 0xA9));
  int next_id = 1;
  for (const Walkway& w : place.walkways()) {
    for (const PathSegment& seg : w.segments) {
      const double spacing = ap_spacing(seg.type);
      if (spacing <= 0.0) continue;
      // First AP half a spacing in, then every `spacing` meters, offset
      // laterally by several meters (APs sit in rooms/on walls, not on the
      // walking path itself).
      for (double s = seg.start_arclen + spacing / 2.0; s < seg.end_arclen;
           s += spacing) {
        const geo::Vec2 on_path = w.line.point_at(s);
        const geo::Vec2 lateral = w.line.tangent_at(s).perp();
        const double off = (rng.chance(0.5) ? 1.0 : -1.0) *
                           rng.uniform(2.0, seg.type == SegmentType::kOpenSpace
                                                ? 20.0
                                                : 6.0);
        AccessPoint ap;
        ap.id = next_id++;
        ap.pos = on_path + lateral * off;
        // Nobody installs APs in basements; if the lateral offset lands
        // the AP in a basement-classified spot (adjacent path), flip the
        // side or skip.
        if (place.environment_at(ap.pos).type == SegmentType::kBasement) {
          ap.pos = on_path - lateral * off;
          if (place.environment_at(ap.pos).type == SegmentType::kBasement) {
            continue;
          }
        }
        ap.tx_power_dbm = -40.0 + rng.normal(0.0, 2.0);
        // APs serving open spaces are mounted on building facades and are
        // attenuated toward the outdoor receiver.
        ap.indoor = true;
        place.add_access_point(ap);
      }
    }
  }
}

void deploy_landmarks(Place& place, std::uint64_t seed) {
  stats::Rng rng(stats::hash_combine(seed, 0x1A));
  place.add_turn_landmarks();
  for (const Walkway& w : place.walkways()) {
    for (const PathSegment& seg : w.segments) {
      double spacing = 0.0;
      LandmarkKind kind = LandmarkKind::kDoor;
      switch (seg.type) {
        case SegmentType::kOffice:
          spacing = 25.0;
          kind = LandmarkKind::kDoor;
          break;
        case SegmentType::kCorridor:
          spacing = 45.0;
          kind = LandmarkKind::kWifiSignature;
          break;
        case SegmentType::kMallAisle:
          spacing = 30.0;
          kind = LandmarkKind::kDoor;
          break;
        case SegmentType::kCarPark:
          spacing = 70.0;
          kind = LandmarkKind::kWifiSignature;
          break;
        default:
          break;  // basements and open spaces: no calibration opportunities
      }
      if (spacing <= 0.0) continue;
      for (double s = seg.start_arclen + spacing * 0.6; s < seg.end_arclen;
           s += spacing * rng.uniform(0.85, 1.15)) {
        place.add_landmark({w.line.point_at(s), kind, 2.0});
      }
    }
  }
}

Place campus(std::uint64_t seed) {
  Place place("campus", campus_anchor());

  using T = SegmentType;
  // Eight daily paths radiating from a common start (Fig. 4). Lengths sum
  // to ~2.8 km; open-space stretches sum to ~0.8 km.
  const geo::Vec2 start{0.0, 0.0};

  // Path 1 -- the 320 m daily path of Fig. 2 (96 m outdoor).
  place.add_walkway(make_walkway(
      "Path1", start, 0.0,
      {{T::kOffice, 20, -90}, {T::kOffice, 20, 90}, {T::kOffice, 20, 0},
       {T::kCorridor, 35, 90}, {T::kCorridor, 30, 0},
       {T::kBasement, 30, -90}, {T::kBasement, 25, 0},
       {T::kCarPark, 44, 90},
       {T::kOpenSpace, 48, -45}, {T::kOpenSpace, 48, 0}}));

  // Path 2 -- 290 m, 60 m outdoor.
  place.add_walkway(make_walkway(
      "Path2", start, 90.0,
      {{T::kOffice, 18, 90}, {T::kOffice, 22, -90}, {T::kOffice, 20, 0},
       {T::kCorridor, 40, -90}, {T::kCorridor, 45, 90},
       {T::kOpenSpace, 60, 0},
       {T::kCorridor, 45, -90}, {T::kOffice, 40, 0}}));

  // Path 3 -- 392 m, 120 m outdoor.
  place.add_walkway(make_walkway(
      "Path3", start, 180.0,
      {{T::kOffice, 25, -90}, {T::kOffice, 25, 0},
       {T::kCorridor, 50, 90}, {T::kCorridor, 42, 0},
       {T::kOpenSpace, 60, -45}, {T::kOpenSpace, 60, 0},
       {T::kCarPark, 50, 90}, {T::kCorridor, 45, -90}, {T::kOffice, 35, 0}}));

  // Path 4 -- 376 m, 90 m outdoor.
  place.add_walkway(make_walkway(
      "Path4", start, -90.0,
      {{T::kOffice, 20, 90}, {T::kOffice, 24, -90},
       {T::kCorridor, 55, -90}, {T::kCorridor, 47, 90},
       {T::kBasement, 40, 0},
       {T::kOpenSpace, 90, 45},
       {T::kCorridor, 60, -45}, {T::kOffice, 40, 0}}));

  // Path 5 -- 415 m, 150 m outdoor.
  place.add_walkway(make_walkway(
      "Path5", start, 45.0,
      {{T::kOffice, 22, -90}, {T::kOffice, 23, 90},
       {T::kCorridor, 60, 0},
       {T::kOpenSpace, 75, 90}, {T::kOpenSpace, 75, -90},
       {T::kCarPark, 60, 45}, {T::kCorridor, 58, -45}, {T::kOffice, 42, 0}}));

  // Path 6 -- 343 m, 80 m outdoor.
  place.add_walkway(make_walkway(
      "Path6", start, 135.0,
      {{T::kOffice, 25, 90}, {T::kOffice, 20, -90},
       {T::kCorridor, 48, -90}, {T::kCorridor, 50, 90},
       {T::kOpenSpace, 80, 0},
       {T::kBasement, 45, -90}, {T::kOffice, 75, 0}}));

  // Path 7 -- 372 m, 124 m outdoor.
  place.add_walkway(make_walkway(
      "Path7", start, -135.0,
      {{T::kOffice, 24, -90}, {T::kOffice, 24, 90},
       {T::kCorridor, 52, 90}, {T::kCorridor, 48, -90},
       {T::kOpenSpace, 62, -45}, {T::kOpenSpace, 62, 45},
       {T::kCarPark, 56, 0}, {T::kOffice, 44, 0}}));

  // Path 8 -- 290 m, 80 m outdoor.
  place.add_walkway(make_walkway(
      "Path8", start, -45.0,
      {{T::kOffice, 20, 90}, {T::kOffice, 20, 0},
       {T::kCorridor, 45, -90}, {T::kCorridor, 40, 90},
       {T::kOpenSpace, 80, -90},
       {T::kCorridor, 45, 90}, {T::kOffice, 40, 0}}));

  deploy_access_points(place, seed);
  deploy_landmarks(place, seed);

  // Campus-scale cellular: six towers at irregular ranges, bearings and
  // powers (a symmetric ring would make path loss identical at equal
  // radius and manufacture fingerprint collisions across the campus).
  // Two towers reach basements.
  const geo::Vec2 c = place.bounds().center();
  const double base_r = std::max(place.bounds().width(),
                                 place.bounds().height()) / 2.0;
  struct TowerSpec {
    double bearing_deg, extra_r, power_offset_db;
    bool basement;
  };
  const TowerSpec specs[] = {
      {23.0, 180.0, 0.0, true},   {95.0, 420.0, 4.0, false},
      {151.0, 260.0, -3.0, false}, {208.0, 550.0, 6.0, true},
      {266.0, 330.0, -5.0, false}, {331.0, 480.0, 2.0, false},
  };
  int tid = 100;
  for (const TowerSpec& s : specs) {
    CellTower t;
    t.id = tid++;
    const double a = deg2rad(s.bearing_deg);
    t.pos = c + geo::Vec2{std::cos(a), std::sin(a)} * (base_r + s.extra_r);
    t.tx_power_dbm += s.power_offset_db;
    t.basement_reachable = s.basement;
    place.add_cell_tower(t);
  }
  return place;
}

Place office_place(std::uint64_t seed) {
  Place place("office", campus_anchor());
  using T = SegmentType;
  // 56 x 20 m office floor: serpentine corridor with many turns (the
  // paper: "the office has more stable wireless signals and narrow
  // corridors with many turns"). Corridor widths vary leg to leg so the
  // width feature carries signal during training.
  place.add_walkway(make_walkway(
      "office-loop", {2.0, 2.0}, 0.0,
      {{T::kOffice, 52, 90, 2.0}, {T::kOffice, 8, 90, 3.5},
       {T::kOffice, 52, -90, 6.0}, {T::kOffice, 8, -90, 3.0},
       {T::kOffice, 52, 0, 4.5}}));
  deploy_access_points(place, seed);
  deploy_landmarks(place, seed);
  const double radii_o[] = {320.0, 540.0, 410.0, 650.0};
  const double bearings_o[] = {38.0, 122.0, 231.0, 305.0};
  for (int i = 0; i < 4; ++i) {
    CellTower t;
    t.id = 200 + i;
    t.pos = geo::Vec2{28.0, 10.0} +
            geo::Vec2{std::cos(deg2rad(bearings_o[i])),
                      std::sin(deg2rad(bearings_o[i]))} *
                radii_o[i];
    t.tx_power_dbm += (i % 2 == 0 ? 3.0 : -2.0);
    place.add_cell_tower(t);
  }
  return place;
}

Place open_space_place(std::uint64_t seed) {
  Place place("open_space", campus_anchor());
  using T = SegmentType;
  // Urban open space: long, wide outdoor paths with a single turn.
  place.add_walkway(make_walkway("plaza-1", {0.0, 0.0}, 0.0,
                                 {{T::kOpenSpace, 90, 90, 8.0},
                                  {T::kOpenSpace, 50, -90, 14.0},
                                  {T::kOpenSpace, 80, 0, 11.0}}));
  place.add_walkway(make_walkway("plaza-2", {0.0, 20.0}, 0.0,
                                 {{T::kOpenSpace, 120, -45, 16.0},
                                  {T::kOpenSpace, 100, 0, 9.0}}));
  deploy_access_points(place, seed);
  deploy_landmarks(place, seed);
  const double radii_p[] = {280.0, 510.0, 390.0, 620.0, 450.0};
  const double bearings_p[] = {15.0, 98.0, 170.0, 244.0, 322.0};
  for (int i = 0; i < 5; ++i) {
    CellTower t;
    t.id = 300 + i;
    t.pos = geo::Vec2{80.0, 30.0} +
            geo::Vec2{std::cos(deg2rad(bearings_p[i])),
                      std::sin(deg2rad(bearings_p[i]))} *
                radii_p[i];
    t.tx_power_dbm += (i - 2) * 2.0;
    place.add_cell_tower(t);
  }
  return place;
}

Place mall_place(std::uint64_t seed) {
  Place place("mall", campus_anchor());
  using T = SegmentType;
  // One 95 x 27 m mall floor: two long aisles joined by cross aisles.
  place.add_walkway(make_walkway(
      "aisles", {2.0, 4.0}, 0.0,
      {{T::kMallAisle, 90, 90}, {T::kMallAisle, 18, 90},
       {T::kMallAisle, 90, -90}, {T::kMallAisle, 0.5, 0}}));
  place.add_walkway(make_walkway("cross-1", {30.0, 4.0}, 90.0,
                                 {{T::kMallAisle, 18, 0}}));
  place.add_walkway(make_walkway("cross-2", {60.0, 4.0}, 90.0,
                                 {{T::kMallAisle, 18, 0}}));
  deploy_access_points(place, seed);
  deploy_landmarks(place, seed);
  // Basement floor: only two towers effectively audible (paper Sec. V-B3).
  const double radii_m[] = {360.0, 560.0, 430.0, 680.0};
  const double bearings_m[] = {52.0, 137.0, 228.0, 316.0};
  for (int i = 0; i < 4; ++i) {
    CellTower t;
    t.id = 400 + i;
    t.pos = geo::Vec2{47.0, 13.0} +
            geo::Vec2{std::cos(deg2rad(bearings_m[i])),
                      std::sin(deg2rad(bearings_m[i]))} *
                radii_m[i];
    t.tx_power_dbm += (i % 2 == 0 ? -2.0 : 3.0);
    t.basement_reachable = (i < 2);
    place.add_cell_tower(t);
  }
  return place;
}

Place campus_b(std::uint64_t seed) {
  Place place("campus_b", campus_anchor());
  using T = SegmentType;
  // Three daily paths with different proportions from the main campus:
  // longer basements, an L-shaped outdoor plaza, a wide car park.
  place.add_walkway(make_walkway(
      "B1", {0.0, 0.0}, 30.0,
      {{T::kOffice, 30, 90}, {T::kOffice, 18, -90},
       {T::kBasement, 55, 90}, {T::kBasement, 20, 0},
       {T::kCorridor, 48, -45},
       {T::kOpenSpace, 70, 90}, {T::kOpenSpace, 40, 0},
       {T::kOffice, 35, 0}}));
  place.add_walkway(make_walkway(
      "B2", {10.0, -15.0}, -60.0,
      {{T::kCorridor, 42, -90}, {T::kCorridor, 36, 90},
       {T::kCarPark, 75, 45},
       {T::kOpenSpace, 55, -90},
       {T::kOffice, 48, 0}}));
  place.add_walkway(make_walkway(
      "B3", {-12.0, 8.0}, 150.0,
      {{T::kOffice, 26, -90}, {T::kOffice, 22, 90, 5.0},
       {T::kCorridor, 58, 90},
       {T::kBasement, 34, -90},
       {T::kCorridor, 40, 45}, {T::kOpenSpace, 65, 0}}));
  deploy_access_points(place, seed);
  deploy_landmarks(place, seed);
  const geo::Vec2 c = place.bounds().center();
  const double radii[] = {240.0, 590.0, 380.0, 700.0, 460.0};
  const double bearings[] = {41.0, 118.0, 199.0, 262.0, 347.0};
  for (int i = 0; i < 5; ++i) {
    CellTower t;
    t.id = 500 + i;
    t.pos = c + geo::Vec2{std::cos(deg2rad(bearings[i])),
                          std::sin(deg2rad(bearings[i]))} *
                    radii[i];
    t.tx_power_dbm += (i - 2) * 2.5;
    t.basement_reachable = (i == 1 || i == 4);
    place.add_cell_tower(t);
  }
  return place;
}

Place random_place(const RandomPlaceSpec& spec) {
  const int walkways = std::max(1, spec.walkways);
  const int legs = std::max(1, spec.legs_per_walkway);
  const double leg_len = std::clamp(spec.leg_length_m, 4.0, 60.0);
  const int towers = std::clamp(spec.cell_towers, 0, 8);

  stats::Rng rng(stats::hash_combine(spec.seed, 0x9E0'71ACEULL));
  Place place("random", campus_anchor());

  // Segment-type palette per venue mix; drawn per leg with a bias toward
  // keeping the previous leg's type so venues grow coherent zones
  // instead of per-leg confetti.
  const std::vector<SegmentType> palettes[] = {
      {SegmentType::kOffice, SegmentType::kCorridor},
      {SegmentType::kMallAisle, SegmentType::kCorridor},
      {SegmentType::kOpenSpace, SegmentType::kCarPark},
      {SegmentType::kOffice, SegmentType::kCorridor, SegmentType::kBasement,
       SegmentType::kCarPark, SegmentType::kOpenSpace,
       SegmentType::kMallAisle},
  };
  const std::vector<SegmentType>& palette =
      palettes[std::clamp(spec.venue_mix, 0, 3)];

  for (int k = 0; k < walkways; ++k) {
    // Stagger starts on a loose grid so routes overlap without stacking.
    const geo::Vec2 start{10.0 + 35.0 * (k % 3) + rng.uniform(-5.0, 5.0),
                          10.0 + 30.0 * (k / 3) + rng.uniform(-5.0, 5.0)};
    double heading = 90.0 * rng.uniform_int(0, 3);
    SegmentType type = palette[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(palette.size()) - 1))];
    std::vector<Leg> route;
    for (int l = 0; l < legs; ++l) {
      if (!rng.chance(0.6)) {
        type = palette[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(palette.size()) - 1))];
      }
      Leg leg;
      leg.type = type;
      leg.length_m = leg_len * rng.uniform(0.6, 1.4);
      leg.turn_after_deg =
          rng.chance(0.6) ? (rng.chance(0.5) ? 90.0 : -90.0) : 0.0;
      route.push_back(leg);
    }
    place.add_walkway(make_walkway("rand-" + std::to_string(k), start,
                                   heading, route));
  }

  deploy_access_points(place, spec.seed);
  deploy_landmarks(place, spec.seed);

  const geo::Vec2 center{place.bounds().min.x / 2 + place.bounds().max.x / 2,
                         place.bounds().min.y / 2 + place.bounds().max.y / 2};
  for (int i = 0; i < towers; ++i) {
    CellTower t;
    t.id = 900 + i;
    const double bearing = deg2rad(rng.uniform(0.0, 360.0));
    t.pos = center + geo::Vec2{std::cos(bearing), std::sin(bearing)} *
                         rng.uniform(280.0, 700.0);
    t.tx_power_dbm += rng.uniform(-3.0, 3.0);
    t.basement_reachable = rng.chance(0.5);
    place.add_cell_tower(t);
  }
  return place;
}

std::vector<std::size_t> add_random_walkways(Place& place, int count,
                                             double length_m, SegmentType type,
                                             std::uint64_t seed) {
  stats::Rng rng(stats::hash_combine(seed, 0x77A1));
  const geo::BBox box = place.bounds().inflated(-10.0);
  std::vector<std::size_t> indices;
  for (int k = 0; k < count; ++k) {
    std::vector<geo::Vec2> pts;
    geo::Vec2 pos{rng.uniform(box.min.x, box.max.x),
                  rng.uniform(box.min.y, box.max.y)};
    pts.push_back(pos);
    double heading = 90.0 * rng.uniform_int(0, 3);
    double remaining = length_m;
    while (remaining > 0.0) {
      const double leg_len = std::min(remaining, rng.uniform(15.0, 40.0));
      geo::Vec2 end = pos + geo::Vec2{std::cos(deg2rad(heading)),
                                      std::sin(deg2rad(heading))} *
                                leg_len;
      // Turn until the leg stays inside the venue.
      int guard = 0;
      while (!box.contains(end) && guard++ < 8) {
        heading += 90.0;
        end = pos + geo::Vec2{std::cos(deg2rad(heading)),
                              std::sin(deg2rad(heading))} *
                        leg_len;
      }
      pts.push_back(end);
      pos = end;
      remaining -= leg_len;
      if (rng.chance(0.6)) heading += rng.chance(0.5) ? 90.0 : -90.0;
    }
    Walkway w;
    w.name = "traj-" + std::to_string(k);
    w.line = geo::Polyline(std::move(pts));
    w.segments = {
        {type, 0.0, w.line.length(), default_corridor_width(type)}};
    indices.push_back(place.add_walkway(std::move(w)));
  }
  return indices;
}

}  // namespace uniloc::sim
