#include "sim/place.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

namespace uniloc::sim {

const PathSegment& Walkway::segment_at(double arclen) const {
  assert(!segments.empty());
  for (const PathSegment& s : segments) {
    if (arclen >= s.start_arclen && arclen <= s.end_arclen) return s;
  }
  return arclen < segments.front().start_arclen ? segments.front()
                                                : segments.back();
}

double Walkway::length_where(bool (*pred)(SegmentType)) const {
  double total = 0.0;
  for (const PathSegment& s : segments) {
    if (pred(s.type)) total += s.end_arclen - s.start_arclen;
  }
  return total;
}

std::vector<Landmark> Walkway::turn_landmarks(double min_turn_rad) const {
  std::vector<Landmark> out;
  const auto& pts = line.points();
  for (std::size_t i = 1; i + 1 < pts.size(); ++i) {
    const double h0 = (pts[i] - pts[i - 1]).angle();
    const double h1 = (pts[i + 1] - pts[i]).angle();
    if (std::fabs(geo::angle_diff(h1, h0)) >= min_turn_rad) {
      out.push_back({pts[i], LandmarkKind::kTurn, 2.0});
    }
  }
  return out;
}

Place::Place(std::string name, geo::LatLon anchor)
    : name_(std::move(name)), frame_(anchor) {}

std::size_t Place::add_walkway(Walkway w) {
  if (w.line.size() < 2) throw std::invalid_argument("walkway needs >=2 pts");
  if (w.segments.empty()) {
    // Default: one corridor segment covering the whole line.
    w.segments.push_back({SegmentType::kCorridor, 0.0, w.line.length(),
                          default_corridor_width(SegmentType::kCorridor)});
  }
  walkways_.push_back(std::move(w));
  env_index_.reset();  // candidate lists are stale; rebuild on demand
  return walkways_.size() - 1;
}

void Place::add_access_point(AccessPoint ap) { aps_.push_back(ap); }
void Place::add_cell_tower(CellTower t) { towers_.push_back(t); }
void Place::add_landmark(Landmark l) { landmarks_.push_back(l); }
void Place::add_wall(geo::Segment wall) {
  walls_.push_back(wall);
  wall_index_.reset();  // rebuild lazily on next query
}

bool Place::crosses_wall(geo::Vec2 a, geo::Vec2 b) const {
  if (walls_.empty()) return false;
  prebuild_wall_index();
  return wall_index_->crosses(a, b);
}

void Place::prebuild_wall_index() const {
  if (wall_index_ == nullptr && !walls_.empty()) {
    wall_index_ =
        std::make_shared<const geo::SegmentIndex>(walls_, /*cell_size=*/8.0);
  }
}

void Place::add_turn_landmarks(double min_turn_rad) {
  for (const Walkway& w : walkways_) {
    for (const Landmark& l : w.turn_landmarks(min_turn_rad)) {
      // Outdoor turns are not usable landmarks: "it is hard to find
      // sufficient signatures outdoors" (paper Sec. V-B2) -- open spaces
      // have no walls or doorways to disambiguate a heading change.
      const geo::Projection proj = w.line.project(l.pos);
      if (!is_indoor(w.segment_at(proj.arclen).type)) continue;
      landmarks_.push_back(l);
    }
  }
}

geo::BBox Place::bounds() const {
  geo::BBox box;
  for (const Walkway& w : walkways_) box.extend(w.line.bounds());
  return box.inflated(10.0);
}

LocalEnvironment Place::environment_at(geo::Vec2 p) const {
  LocalEnvironment env;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < walkways_.size(); ++i) {
    const geo::Projection proj = walkways_[i].line.project(p);
    if (proj.distance < best) {
      best = proj.distance;
      const PathSegment& seg = walkways_[i].segment_at(proj.arclen);
      env.type = seg.type;
      env.corridor_width_m = seg.corridor_width_m;
      env.indoor = is_indoor(seg.type);
      env.sky_visibility = sim::sky_visibility(seg.type);
      env.walkway = i;
      env.arclen = proj.arclen;
      env.distance_to_walkway = proj.distance;
    }
  }
  // A point far off every walkway is treated as outdoors.
  if (best > 25.0) {
    env.type = SegmentType::kOpenSpace;
    env.corridor_width_m = default_corridor_width(SegmentType::kOpenSpace);
    env.indoor = false;
    env.sky_visibility = 1.0;
  }
  return env;
}

LocalEnvironment Place::environment_over(geo::Vec2 p,
                                         const std::uint32_t* cand,
                                         std::size_t count) const {
  // Mirrors environment_at exactly -- same strict `<` winner update in
  // ascending walkway order, same open-space fallback -- over a candidate
  // subset that provably contains the winner.
  LocalEnvironment env;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < count; ++c) {
    const std::size_t i = cand[c];
    const geo::Projection proj = walkways_[i].line.project(p);
    if (proj.distance < best) {
      best = proj.distance;
      const PathSegment& seg = walkways_[i].segment_at(proj.arclen);
      env.type = seg.type;
      env.corridor_width_m = seg.corridor_width_m;
      env.indoor = is_indoor(seg.type);
      env.sky_visibility = sim::sky_visibility(seg.type);
      env.walkway = i;
      env.arclen = proj.arclen;
      env.distance_to_walkway = proj.distance;
    }
  }
  if (best > 25.0) {
    env.type = SegmentType::kOpenSpace;
    env.corridor_width_m = default_corridor_width(SegmentType::kOpenSpace);
    env.indoor = false;
    env.sky_visibility = 1.0;
  }
  return env;
}

LocalEnvironment Place::environment_at_fast(geo::Vec2 p) const {
  const std::shared_ptr<const EnvIndex> idx = env_index_;
  if (idx == nullptr || !idx->box.contains(p)) return environment_at(p);
  const std::size_t cx = std::min(
      idx->nx - 1, static_cast<std::size_t>((p.x - idx->box.min.x) / idx->cell));
  const std::size_t cy = std::min(
      idx->ny - 1, static_cast<std::size_t>((p.y - idx->box.min.y) / idx->cell));
  const std::size_t c = cy * idx->nx + cx;
  return environment_over(p, idx->candidates.data() + idx->begin[c],
                          idx->begin[c + 1] - idx->begin[c]);
}

void Place::prebuild_env_index() const {
  if (env_index_ != nullptr || walkways_.empty()) return;
  auto idx = std::make_shared<EnvIndex>();
  idx->box = bounds();
  idx->cell = 4.0;
  idx->nx = static_cast<std::size_t>(
      std::max(1.0, std::ceil(idx->box.width() / idx->cell)));
  idx->ny = static_cast<std::size_t>(
      std::max(1.0, std::ceil(idx->box.height() / idx->cell)));
  // For any point p of a cell, |p - center| <= r (the half-diagonal), so
  // d_i(p) >= d_i(center) - r and d_min(p) <= d_min(center) + r. A
  // walkway with d_i(center) > d_min(center) + 2r is therefore strictly
  // farther than the closest one at EVERY p in the cell -- it can never
  // be environment_at's `<` winner and never changes the minimum, so
  // dropping it is exact. The epsilon only widens the keep set (always
  // safe) to absorb rounding in the center distances themselves.
  const double r = 0.5 * idx->cell * std::sqrt(2.0);
  std::vector<double> dist(walkways_.size());
  idx->begin.reserve(idx->nx * idx->ny + 1);
  for (std::size_t cy = 0; cy < idx->ny; ++cy) {
    for (std::size_t cx = 0; cx < idx->nx; ++cx) {
      const geo::Vec2 center{
          idx->box.min.x + (static_cast<double>(cx) + 0.5) * idx->cell,
          idx->box.min.y + (static_cast<double>(cy) + 0.5) * idx->cell};
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < walkways_.size(); ++i) {
        dist[i] = walkways_[i].line.project(center).distance;
        best = std::min(best, dist[i]);
      }
      const double keep = best + 2.0 * r + 1e-9;
      idx->begin.push_back(static_cast<std::uint32_t>(idx->candidates.size()));
      for (std::size_t i = 0; i < walkways_.size(); ++i) {
        if (dist[i] <= keep) {
          idx->candidates.push_back(static_cast<std::uint32_t>(i));
        }
      }
    }
  }
  idx->begin.push_back(static_cast<std::uint32_t>(idx->candidates.size()));
  env_index_ = std::move(idx);
}

std::vector<const Landmark*> Place::landmarks_near(geo::Vec2 p,
                                                   double radius) const {
  std::vector<const Landmark*> out;
  for (const Landmark& l : landmarks_) {
    if (geo::distance(l.pos, p) <= radius) out.push_back(&l);
  }
  return out;
}

double Place::total_walkway_length() const {
  double total = 0.0;
  for (const Walkway& w : walkways_) total += w.line.length();
  return total;
}

}  // namespace uniloc::sim
