#include "sim/place.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

namespace uniloc::sim {

const PathSegment& Walkway::segment_at(double arclen) const {
  assert(!segments.empty());
  for (const PathSegment& s : segments) {
    if (arclen >= s.start_arclen && arclen <= s.end_arclen) return s;
  }
  return arclen < segments.front().start_arclen ? segments.front()
                                                : segments.back();
}

double Walkway::length_where(bool (*pred)(SegmentType)) const {
  double total = 0.0;
  for (const PathSegment& s : segments) {
    if (pred(s.type)) total += s.end_arclen - s.start_arclen;
  }
  return total;
}

std::vector<Landmark> Walkway::turn_landmarks(double min_turn_rad) const {
  std::vector<Landmark> out;
  const auto& pts = line.points();
  for (std::size_t i = 1; i + 1 < pts.size(); ++i) {
    const double h0 = (pts[i] - pts[i - 1]).angle();
    const double h1 = (pts[i + 1] - pts[i]).angle();
    if (std::fabs(geo::angle_diff(h1, h0)) >= min_turn_rad) {
      out.push_back({pts[i], LandmarkKind::kTurn, 2.0});
    }
  }
  return out;
}

Place::Place(std::string name, geo::LatLon anchor)
    : name_(std::move(name)), frame_(anchor) {}

std::size_t Place::add_walkway(Walkway w) {
  if (w.line.size() < 2) throw std::invalid_argument("walkway needs >=2 pts");
  if (w.segments.empty()) {
    // Default: one corridor segment covering the whole line.
    w.segments.push_back({SegmentType::kCorridor, 0.0, w.line.length(),
                          default_corridor_width(SegmentType::kCorridor)});
  }
  walkways_.push_back(std::move(w));
  env_index_.reset();  // candidate lists are stale; rebuild on demand
  return walkways_.size() - 1;
}

void Place::add_access_point(AccessPoint ap) { aps_.push_back(ap); }
void Place::add_cell_tower(CellTower t) { towers_.push_back(t); }
void Place::add_landmark(Landmark l) { landmarks_.push_back(l); }
void Place::add_wall(geo::Segment wall) {
  walls_.push_back(wall);
  wall_index_.reset();  // rebuild lazily on next query
}

bool Place::crosses_wall(geo::Vec2 a, geo::Vec2 b) const {
  if (walls_.empty()) return false;
  prebuild_wall_index();
  return wall_index_->crosses(a, b);
}

void Place::prebuild_wall_index() const {
  if (wall_index_ == nullptr && !walls_.empty()) {
    wall_index_ =
        std::make_shared<const geo::SegmentIndex>(walls_, /*cell_size=*/8.0);
  }
}

void Place::add_turn_landmarks(double min_turn_rad) {
  for (const Walkway& w : walkways_) {
    for (const Landmark& l : w.turn_landmarks(min_turn_rad)) {
      // Outdoor turns are not usable landmarks: "it is hard to find
      // sufficient signatures outdoors" (paper Sec. V-B2) -- open spaces
      // have no walls or doorways to disambiguate a heading change.
      const geo::Projection proj = w.line.project(l.pos);
      if (!is_indoor(w.segment_at(proj.arclen).type)) continue;
      landmarks_.push_back(l);
    }
  }
}

geo::BBox Place::bounds() const {
  geo::BBox box;
  for (const Walkway& w : walkways_) box.extend(w.line.bounds());
  return box.inflated(10.0);
}

LocalEnvironment Place::environment_at(geo::Vec2 p) const {
  LocalEnvironment env;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < walkways_.size(); ++i) {
    const geo::Projection proj = walkways_[i].line.project(p);
    if (proj.distance < best) {
      best = proj.distance;
      const PathSegment& seg = walkways_[i].segment_at(proj.arclen);
      env.type = seg.type;
      env.corridor_width_m = seg.corridor_width_m;
      env.indoor = is_indoor(seg.type);
      env.sky_visibility = sim::sky_visibility(seg.type);
      env.walkway = i;
      env.arclen = proj.arclen;
      env.distance_to_walkway = proj.distance;
    }
  }
  // A point far off every walkway is treated as outdoors.
  if (best > 25.0) {
    env.type = SegmentType::kOpenSpace;
    env.corridor_width_m = default_corridor_width(SegmentType::kOpenSpace);
    env.indoor = false;
    env.sky_visibility = 1.0;
  }
  return env;
}

LocalEnvironment Place::environment_over(geo::Vec2 p,
                                         const std::uint32_t* cand,
                                         std::size_t count) const {
  // Mirrors environment_at exactly -- same strict `<` winner update in
  // ascending walkway order, same open-space fallback -- over a candidate
  // subset that provably contains the winner.
  LocalEnvironment env;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < count; ++c) {
    const std::size_t i = cand[c];
    const geo::Projection proj = walkways_[i].line.project(p);
    if (proj.distance < best) {
      best = proj.distance;
      const PathSegment& seg = walkways_[i].segment_at(proj.arclen);
      env.type = seg.type;
      env.corridor_width_m = seg.corridor_width_m;
      env.indoor = is_indoor(seg.type);
      env.sky_visibility = sim::sky_visibility(seg.type);
      env.walkway = i;
      env.arclen = proj.arclen;
      env.distance_to_walkway = proj.distance;
    }
  }
  if (best > 25.0) {
    env.type = SegmentType::kOpenSpace;
    env.corridor_width_m = default_corridor_width(SegmentType::kOpenSpace);
    env.indoor = false;
    env.sky_visibility = 1.0;
  }
  return env;
}

LocalEnvironment Place::environment_over_edges(geo::Vec2 p,
                                               const std::uint32_t* cand,
                                               std::size_t count) const {
  // Mirrors environment_over -- itself a mirror of environment_at --
  // over a per-cell EDGE subset. Edges arrive ascending by (walkway,
  // edge), so the two-level scan below replays Polyline::project's
  // strict-< first-wins tie-break inside each walkway and then
  // environment_at's strict-< first-wins tie-break across walkways.
  // Pruned edges are strictly farther than the winner everywhere in the
  // cell (see EnvIndex::ecand), so every comparison that decides the
  // result sees identical operands and the output is bit-identical.
  LocalEnvironment env;
  double best = std::numeric_limits<double>::infinity();
  std::size_t c = 0;
  while (c < count) {
    const std::size_t i = cand[c] >> 16;
    const Walkway& way = walkways_[i];
    const std::vector<geo::Vec2>& pts = way.line.points();
    double wbest = std::numeric_limits<double>::infinity();
    double warc = 0.0;
    for (; c < count && (cand[c] >> 16) == i; ++c) {
      const std::size_t e = cand[c] & 0xFFFF;
      // Exactly Polyline::project's per-edge computation.
      const geo::Vec2 a = pts[e], b = pts[e + 1];
      const geo::Vec2 ab = b - a;
      const double len2 = ab.norm2();
      const double t =
          len2 > 0.0 ? std::clamp((p - a).dot(ab) / len2, 0.0, 1.0) : 0.0;
      const geo::Vec2 q = geo::lerp(a, b, t);
      const double d = geo::distance(p, q);
      if (d < wbest) {
        wbest = d;
        warc = way.line.arclen_of_vertex(e) + t * std::sqrt(len2);
      }
    }
    if (wbest < best) {
      best = wbest;
      const PathSegment& seg = way.segment_at(warc);
      env.type = seg.type;
      env.corridor_width_m = seg.corridor_width_m;
      env.indoor = is_indoor(seg.type);
      env.sky_visibility = sim::sky_visibility(seg.type);
      env.walkway = i;
      env.arclen = warc;
      env.distance_to_walkway = wbest;
    }
  }
  if (best > 25.0) {
    env.type = SegmentType::kOpenSpace;
    env.corridor_width_m = default_corridor_width(SegmentType::kOpenSpace);
    env.indoor = false;
    env.sky_visibility = 1.0;
  }
  return env;
}

LocalEnvironment Place::environment_at_fast(geo::Vec2 p) const {
  return env_view().environment(p);
}

LocalEnvironment Place::EnvView::environment(geo::Vec2 p) const {
  const EnvIndex* idx = idx_.get();
  if (idx == nullptr || !idx->box.contains(p)) {
    return place_->environment_at(p);
  }
  const std::size_t cx = std::min(
      idx->nx - 1, static_cast<std::size_t>((p.x - idx->box.min.x) / idx->cell));
  const std::size_t cy = std::min(
      idx->ny - 1, static_cast<std::size_t>((p.y - idx->box.min.y) / idx->cell));
  const std::size_t c = cy * idx->nx + cx;
  if (!idx->ebegin.empty()) {
    return place_->environment_over_edges(p, idx->ecand.data() + idx->ebegin[c],
                                          idx->ebegin[c + 1] - idx->ebegin[c]);
  }
  return place_->environment_over(p, idx->candidates.data() + idx->begin[c],
                                  idx->begin[c + 1] - idx->begin[c]);
}

void Place::prebuild_env_index() const {
  if (env_index_ != nullptr || walkways_.empty()) return;
  auto idx = std::make_shared<EnvIndex>();
  idx->box = bounds();
  idx->cell = 4.0;
  idx->nx = static_cast<std::size_t>(
      std::max(1.0, std::ceil(idx->box.width() / idx->cell)));
  idx->ny = static_cast<std::size_t>(
      std::max(1.0, std::ceil(idx->box.height() / idx->cell)));
  // For any point p of a cell, |p - center| <= r (the half-diagonal), so
  // d_i(p) >= d_i(center) - r and d_min(p) <= d_min(center) + r. A
  // walkway with d_i(center) > d_min(center) + 2r is therefore strictly
  // farther than the closest one at EVERY p in the cell -- it can never
  // be environment_at's `<` winner and never changes the minimum, so
  // dropping it is exact. The epsilon only widens the keep set (always
  // safe) to absorb rounding in the center distances themselves.
  const double r = 0.5 * idx->cell * std::sqrt(2.0);
  // Per walkway: the narrowest corridor width over its segments. The
  // safe-cell test below must hold no matter which segment the nearest
  // projection lands on, so it uses this lower bound.
  std::vector<double> min_width(walkways_.size(), 0.0);
  for (std::size_t i = 0; i < walkways_.size(); ++i) {
    double mw = std::numeric_limits<double>::infinity();
    for (const PathSegment& s : walkways_[i].segments) {
      mw = std::min(mw, s.corridor_width_m);
    }
    min_width[i] = walkways_[i].segments.empty() ? 0.0 : mw;
  }
  // dist[] doubles as per-cell walkway distances in the coarse pass and
  // per-candidate distances in the refinement pass below; both uses are
  // complete within one cell iteration.
  std::vector<double> dist(walkways_.size());
  idx->begin.reserve(idx->nx * idx->ny + 1);
  // Edge-level candidates need every walkway to have a genuine edge list
  // and the (walkway, edge) pair to fit the 16+16-bit packing; degenerate
  // or oversized worlds keep ebegin empty and query the walkway lists.
  bool edges_ok = walkways_.size() < 0xFFFF;
  for (const Walkway& w : walkways_) {
    if (w.line.size() < 2 || w.line.size() - 1 > 0xFFFF) edges_ok = false;
  }
  if (edges_ok) idx->ebegin.reserve(idx->nx * idx->ny + 1);
  // The fine safe sub-grid divides each coarse cell into kRefine^2 exact
  // sub-cells (same origin, so any point of a fine cell lies inside the
  // coarse cell that owns it -- the candidate-set containment argument
  // below needs that). 0.5 m fine cells give a 0.354 m half-diagonal:
  // small enough that points within ~1.4 m of a 3.5 m corridor's
  // centerline certify as safe, where the 2.83 m coarse half-diagonal
  // certifies nothing.
  constexpr std::size_t kRefine = 8;
  idx->fine_cell = idx->cell / static_cast<double>(kRefine);
  idx->fnx = static_cast<std::size_t>(
      std::max(1.0, std::ceil(idx->box.width() / idx->fine_cell)));
  idx->fny = static_cast<std::size_t>(
      std::max(1.0, std::ceil(idx->box.height() / idx->fine_cell)));
  idx->fine_safe.assign(idx->fnx * idx->fny, 0);
  const double rf = 0.5 * idx->fine_cell * std::sqrt(2.0);
  for (std::size_t cy = 0; cy < idx->ny; ++cy) {
    for (std::size_t cx = 0; cx < idx->nx; ++cx) {
      const geo::Vec2 center{
          idx->box.min.x + (static_cast<double>(cx) + 0.5) * idx->cell,
          idx->box.min.y + (static_cast<double>(cy) + 0.5) * idx->cell};
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < walkways_.size(); ++i) {
        dist[i] = walkways_[i].line.project(center).distance;
        best = std::min(best, dist[i]);
      }
      const double keep = best + 2.0 * r + 1e-9;
      idx->begin.push_back(static_cast<std::uint32_t>(idx->candidates.size()));
      const std::size_t cand_begin = idx->candidates.size();
      double max_half = 0.0;
      for (std::size_t i = 0; i < walkways_.size(); ++i) {
        if (dist[i] <= keep) {
          idx->candidates.push_back(static_cast<std::uint32_t>(i));
          max_half = std::max(max_half, 0.5 * min_width[i]);
        }
      }

      // Edge-level candidates under the same bound: any edge that is the
      // nearest edge (or an exact tie) at some p of the cell has center
      // distance at most d_e(p) + r = d_min(p) + r <= best + 2r, so
      // every edge kept here provably contains all possible winners and
      // ties -- environment_over_edges is then bit-identical to the full
      // projection. Walkways whose own minimum already exceeds the bound
      // are skipped without touching their edges.
      if (edges_ok) {
        idx->ebegin.push_back(static_cast<std::uint32_t>(idx->ecand.size()));
        for (std::size_t i = 0; i < walkways_.size(); ++i) {
          if (dist[i] > keep) continue;
          const std::vector<geo::Vec2>& pts = walkways_[i].line.points();
          for (std::size_t e = 0; e + 1 < pts.size(); ++e) {
            const geo::Vec2 a = pts[e], b = pts[e + 1];
            const geo::Vec2 ab = b - a;
            const double len2 = ab.norm2();
            const double t =
                len2 > 0.0
                    ? std::clamp((center - a).dot(ab) / len2, 0.0, 1.0)
                    : 0.0;
            const double de = geo::distance(center, geo::lerp(a, b, t));
            if (de <= keep) {
              idx->ecand.push_back(
                  static_cast<std::uint32_t>((i << 16) | e));
            }
          }
        }
      }

      // Refine only the corridor band: a fine cell here can be safe only
      // if its winner's distance (>= best - r at any point of the coarse
      // cell) plus the fine half-diagonal fits inside some candidate's
      // half-width. Cells that fail this necessary condition keep
      // fine_safe == 0 without projecting anything.
      if (best - r + rf > max_half + 1e-9) continue;
      const std::size_t cand_count = idx->candidates.size() - cand_begin;
      const std::uint32_t* cand = idx->candidates.data() + cand_begin;
      const std::size_t fx_end = std::min(idx->fnx, (cx + 1) * kRefine);
      const std::size_t fy_end = std::min(idx->fny, (cy + 1) * kRefine);
      for (std::size_t fy = cy * kRefine; fy < fy_end; ++fy) {
        for (std::size_t fx = cx * kRefine; fx < fx_end; ++fx) {
          const geo::Vec2 fc{
              idx->box.min.x +
                  (static_cast<double>(fx) + 0.5) * idx->fine_cell,
              idx->box.min.y +
                  (static_cast<double>(fy) + 0.5) * idx->fine_cell};
          // The winner at any p of this fine cell is a coarse candidate
          // (fine cell set-contained in the coarse cell) whose center
          // distance is within 2*rf of the fine best -- the same
          // triangle-inequality proof as above at the finer radius.
          double best_f = std::numeric_limits<double>::infinity();
          for (std::size_t c2 = 0; c2 < cand_count; ++c2) {
            dist[c2] = walkways_[cand[c2]].line.project(fc).distance;
            best_f = std::min(best_f, dist[c2]);
          }
          // corridor_safe_fast: whichever of those candidates wins at p,
          // its distance is at most dist + rf and the corridor width at
          // its projection at least its min_width. If every near
          // candidate satisfies dist + rf <= min_width / 2 (margin for
          // projection rounding), then beyond = max(0, d - width/2) is
          // exactly 0 and the corridor likelihood exactly 1.0 at every p
          // of the fine cell. The 25 m bound keeps the open-space
          // fallback (best > 25) from firing.
          const double keep_f = best_f + 2.0 * rf + 1e-9;
          bool fsafe = true;
          for (std::size_t c2 = 0; c2 < cand_count; ++c2) {
            if (dist[c2] > keep_f) continue;
            const double reach = dist[c2] + rf + 1e-9;
            if (reach > 0.5 * min_width[cand[c2]] || reach > 25.0) {
              fsafe = false;
            }
          }
          if (fsafe) idx->fine_safe[fy * idx->fnx + fx] = 1;
        }
      }
    }
  }
  idx->begin.push_back(static_cast<std::uint32_t>(idx->candidates.size()));
  if (edges_ok) {
    idx->ebegin.push_back(static_cast<std::uint32_t>(idx->ecand.size()));
  }
  env_index_ = std::move(idx);
}

bool Place::corridor_safe_fast(geo::Vec2 p) const {
  return env_view().corridor_safe(p);
}

bool Place::EnvView::corridor_safe(geo::Vec2 p) const {
  const EnvIndex* idx = idx_.get();
  if (idx == nullptr || !idx->box.contains(p)) return false;
  const std::size_t fx = std::min(
      idx->fnx - 1,
      static_cast<std::size_t>((p.x - idx->box.min.x) / idx->fine_cell));
  const std::size_t fy = std::min(
      idx->fny - 1,
      static_cast<std::size_t>((p.y - idx->box.min.y) / idx->fine_cell));
  return idx->fine_safe[fy * idx->fnx + fx] != 0;
}

std::vector<const Landmark*> Place::landmarks_near(geo::Vec2 p,
                                                   double radius) const {
  std::vector<const Landmark*> out;
  for (const Landmark& l : landmarks_) {
    if (geo::distance(l.pos, p) <= radius) out.push_back(&l);
  }
  return out;
}

double Place::total_walkway_length() const {
  double total = 0.0;
  for (const Walkway& w : walkways_) total += w.line.length();
  return total;
}

}  // namespace uniloc::sim
