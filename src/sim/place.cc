#include "sim/place.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

namespace uniloc::sim {

const PathSegment& Walkway::segment_at(double arclen) const {
  assert(!segments.empty());
  for (const PathSegment& s : segments) {
    if (arclen >= s.start_arclen && arclen <= s.end_arclen) return s;
  }
  return arclen < segments.front().start_arclen ? segments.front()
                                                : segments.back();
}

double Walkway::length_where(bool (*pred)(SegmentType)) const {
  double total = 0.0;
  for (const PathSegment& s : segments) {
    if (pred(s.type)) total += s.end_arclen - s.start_arclen;
  }
  return total;
}

std::vector<Landmark> Walkway::turn_landmarks(double min_turn_rad) const {
  std::vector<Landmark> out;
  const auto& pts = line.points();
  for (std::size_t i = 1; i + 1 < pts.size(); ++i) {
    const double h0 = (pts[i] - pts[i - 1]).angle();
    const double h1 = (pts[i + 1] - pts[i]).angle();
    if (std::fabs(geo::angle_diff(h1, h0)) >= min_turn_rad) {
      out.push_back({pts[i], LandmarkKind::kTurn, 2.0});
    }
  }
  return out;
}

Place::Place(std::string name, geo::LatLon anchor)
    : name_(std::move(name)), frame_(anchor) {}

std::size_t Place::add_walkway(Walkway w) {
  if (w.line.size() < 2) throw std::invalid_argument("walkway needs >=2 pts");
  if (w.segments.empty()) {
    // Default: one corridor segment covering the whole line.
    w.segments.push_back({SegmentType::kCorridor, 0.0, w.line.length(),
                          default_corridor_width(SegmentType::kCorridor)});
  }
  walkways_.push_back(std::move(w));
  return walkways_.size() - 1;
}

void Place::add_access_point(AccessPoint ap) { aps_.push_back(ap); }
void Place::add_cell_tower(CellTower t) { towers_.push_back(t); }
void Place::add_landmark(Landmark l) { landmarks_.push_back(l); }
void Place::add_wall(geo::Segment wall) {
  walls_.push_back(wall);
  wall_index_.reset();  // rebuild lazily on next query
}

bool Place::crosses_wall(geo::Vec2 a, geo::Vec2 b) const {
  if (walls_.empty()) return false;
  prebuild_wall_index();
  return wall_index_->crosses(a, b);
}

void Place::prebuild_wall_index() const {
  if (wall_index_ == nullptr && !walls_.empty()) {
    wall_index_ =
        std::make_shared<const geo::SegmentIndex>(walls_, /*cell_size=*/8.0);
  }
}

void Place::add_turn_landmarks(double min_turn_rad) {
  for (const Walkway& w : walkways_) {
    for (const Landmark& l : w.turn_landmarks(min_turn_rad)) {
      // Outdoor turns are not usable landmarks: "it is hard to find
      // sufficient signatures outdoors" (paper Sec. V-B2) -- open spaces
      // have no walls or doorways to disambiguate a heading change.
      const geo::Projection proj = w.line.project(l.pos);
      if (!is_indoor(w.segment_at(proj.arclen).type)) continue;
      landmarks_.push_back(l);
    }
  }
}

geo::BBox Place::bounds() const {
  geo::BBox box;
  for (const Walkway& w : walkways_) box.extend(w.line.bounds());
  return box.inflated(10.0);
}

LocalEnvironment Place::environment_at(geo::Vec2 p) const {
  LocalEnvironment env;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < walkways_.size(); ++i) {
    const geo::Projection proj = walkways_[i].line.project(p);
    if (proj.distance < best) {
      best = proj.distance;
      const PathSegment& seg = walkways_[i].segment_at(proj.arclen);
      env.type = seg.type;
      env.corridor_width_m = seg.corridor_width_m;
      env.indoor = is_indoor(seg.type);
      env.sky_visibility = sim::sky_visibility(seg.type);
      env.walkway = i;
      env.arclen = proj.arclen;
      env.distance_to_walkway = proj.distance;
    }
  }
  // A point far off every walkway is treated as outdoors.
  if (best > 25.0) {
    env.type = SegmentType::kOpenSpace;
    env.corridor_width_m = default_corridor_width(SegmentType::kOpenSpace);
    env.indoor = false;
    env.sky_visibility = 1.0;
  }
  return env;
}

std::vector<const Landmark*> Place::landmarks_near(geo::Vec2 p,
                                                   double radius) const {
  std::vector<const Landmark*> out;
  for (const Landmark& l : landmarks_) {
    if (geo::distance(l.pos, p) <= radius) out.push_back(&l);
  }
  return out;
}

double Place::total_walkway_length() const {
  double total = 0.0;
  for (const Walkway& w : walkways_) total += w.line.length();
  return total;
}

}  // namespace uniloc::sim
