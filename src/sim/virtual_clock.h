// VirtualClock: deterministic simulated time.
//
// Fault schedules, client timeouts, and server TTLs are all expressed in
// microseconds, but none of them may ever *sleep*: a chaos run must be a
// pure function of (seed, schedule), identical on a loaded CI box and a
// laptop. Components therefore read time through an injected
// now_us() and the harness advances this counter explicitly -- a 30 s
// server blackout costs zero wall time. Plugs straight into
// svc::ServerConfig::now_us via now_fn().
#pragma once

#include <cstdint>
#include <functional>

namespace uniloc::sim {

class VirtualClock {
 public:
  explicit VirtualClock(std::uint64_t start_us = 0) : now_us_(start_us) {}

  std::uint64_t now_us() const { return now_us_; }
  double now_s() const { return static_cast<double>(now_us_) / 1e6; }

  void advance_us(std::uint64_t us) { now_us_ += us; }
  void advance_s(double s) {
    if (s > 0.0) now_us_ += static_cast<std::uint64_t>(s * 1e6);
  }

  /// Adapter for injectable-clock hooks (e.g. svc::ServerConfig::now_us).
  /// The returned callable references this clock; keep the clock alive.
  std::function<std::uint64_t()> now_fn() {
    return [this] { return now_us_; };
  }

 private:
  std::uint64_t now_us_;
};

}  // namespace uniloc::sim
