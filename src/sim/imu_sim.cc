#include "sim/imu_sim.h"

#include <cmath>
#include <numbers>

#include "geo/vec2.h"

namespace uniloc::sim {

ImuSimulator::ImuSimulator(ImuParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {}

std::vector<ImuSample> ImuSimulator::step_trace(const GaitProfile& gait,
                                                double true_heading,
                                                double true_dheading,
                                                bool indoor) {
  const double dt = 1.0 / params_.sample_rate_hz;
  const auto n = static_cast<std::size_t>(
      std::max(1.0, std::round(gait.step_period_s / dt)));
  std::vector<ImuSample> out;
  out.reserve(n);

  const double start_heading = geo::wrap_angle(true_heading - true_dheading);
  const double turn_rate = true_dheading / gait.step_period_s;
  // Advance the persistent magnetic offset (constant within one step).
  const double rw_sd = indoor ? params_.mag_offset_rw_indoor
                              : params_.mag_offset_rw_outdoor;
  mag_offset_ =
      params_.mag_offset_decay * mag_offset_ + rng_.normal(0.0, rw_sd);
  const double mag_offset = mag_offset_;

  for (std::size_t i = 0; i < n; ++i) {
    ImuSample s;
    s.t = t_;
    const double phase =
        static_cast<double>(i) / static_cast<double>(n);  // 0..1 within step
    // One sinusoidal bump per step plus heel-strike sharpness.
    double accel = 9.81 + params_.step_peak_amp *
                              std::sin(phase * std::numbers::pi) *
                              std::sin(phase * std::numbers::pi);
    accel += rng_.normal(0.0, params_.accel_noise_sd);
    // Hand trembling adds spiky jitter that can fool a naive step counter.
    if (gait.trembling > 0.0 && rng_.chance(0.08 * gait.trembling)) {
      accel += rng_.normal(0.0, 2.5 * gait.trembling);
    }
    s.accel_mag = accel;

    gyro_bias_ += rng_.normal(0.0, params_.gyro_bias_drift_sd);
    s.gyro_z = turn_rate + gyro_bias_ + rng_.normal(0.0, params_.gyro_noise_sd);
    if (gait.trembling > 0.0 && rng_.chance(0.05 * gait.trembling)) {
      s.gyro_z += rng_.normal(0.0, 0.4 * gait.trembling);
    }

    const double heading_now =
        geo::wrap_angle(start_heading + true_dheading * phase);
    s.mag_heading = geo::wrap_angle(heading_now + mag_offset +
                                    rng_.normal(0.0, params_.mag_noise_sd));
    out.push_back(s);
    t_ += dt;
  }
  return out;
}

std::vector<ImuSample> ImuSimulator::idle_trace(double duration_s,
                                                double true_heading,
                                                bool indoor) {
  const double dt = 1.0 / params_.sample_rate_hz;
  const auto n = static_cast<std::size_t>(std::max(1.0, duration_s / dt));
  std::vector<ImuSample> out;
  out.reserve(n);
  const double rw_sd = indoor ? params_.mag_offset_rw_indoor
                              : params_.mag_offset_rw_outdoor;
  mag_offset_ =
      params_.mag_offset_decay * mag_offset_ + rng_.normal(0.0, rw_sd);
  const double mag_offset = mag_offset_;
  for (std::size_t i = 0; i < n; ++i) {
    ImuSample s;
    s.t = t_;
    s.accel_mag = 9.81 + rng_.normal(0.0, params_.accel_noise_sd * 0.5);
    gyro_bias_ += rng_.normal(0.0, params_.gyro_bias_drift_sd);
    s.gyro_z = gyro_bias_ + rng_.normal(0.0, params_.gyro_noise_sd);
    s.mag_heading = geo::wrap_angle(true_heading + mag_offset +
                                    rng_.normal(0.0, params_.mag_noise_sd));
    out.push_back(s);
    t_ += dt;
  }
  return out;
}

}  // namespace uniloc::sim
