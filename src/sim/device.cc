#include "sim/device.h"

namespace uniloc::sim {

std::vector<ApReading> DeviceModel::transform(std::vector<ApReading> scan,
                                              stats::Rng& rng) const {
  for (ApReading& r : scan) {
    r.rssi_dbm = rssi_alpha * r.rssi_dbm + rssi_delta_db;
    if (extra_noise_sd_db > 0.0) {
      r.rssi_dbm += rng.normal(0.0, extra_noise_sd_db);
    }
  }
  return scan;
}

DeviceModel nexus_5x() { return {"Nexus5X", 1.0, 0.0, 0.0}; }

DeviceModel lg_g3() { return {"LG-G3", 0.94, -7.5, 1.0}; }

}  // namespace uniloc::sim
