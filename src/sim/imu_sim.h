// Inertial sensor (IMU) trace synthesis.
//
// The phone samples its inertial sensors at 50 Hz (paper Sec. IV-C). For
// each walking step the simulator emits an accelerometer-magnitude trace
// (gravity + a per-step sinusoidal bump + noise + hand-trembling jitters),
// a gyroscope z-rate trace (true turn rate + bias drift + noise) and a
// magnetometer heading trace (true heading + hard-iron-ish offset field +
// noise). The PDR front-end in src/schemes consumes these raw samples to
// infer step count, step length and orientation -- exactly the pipeline
// of [7] that the paper implements.
#pragma once

#include <vector>

#include "stats/rng.h"

namespace uniloc::sim {

struct ImuSample {
  double t{0.0};             ///< Seconds since walk start.
  double accel_mag{9.81};    ///< |accelerometer| (m/s^2).
  double gyro_z{0.0};        ///< Turn rate (rad/s), phone-frame z.
  double mag_heading{0.0};   ///< Magnetometer heading estimate (rad).
};

struct ImuParams {
  double sample_rate_hz{50.0};
  double accel_noise_sd{0.4};
  double step_peak_amp{2.2};          ///< Peak accel above gravity per step.
  double gyro_noise_sd{0.03};
  double gyro_bias_drift_sd{0.002};   ///< Random-walk bias per sample.
  double mag_noise_sd{0.12};
  /// The magnetometer heading carries a slowly-varying offset from nearby
  /// ferromagnetic structure (an AR(1) random walk across steps). It is
  /// what makes heading drift *persist*: a zero-mean per-sample error
  /// would average out in the complementary filter.
  double mag_offset_rw_indoor{0.08};   ///< Per-step innovation sd (rad).
  double mag_offset_rw_outdoor{0.03};
  double mag_offset_decay{0.98};       ///< AR(1) pull toward zero.
};

/// Per-person gait (paper tests 6 persons aged 20s-50s; step period must
/// land in the "normal" 0.4-0.7 s band that the compensation mechanism
/// assumes).
struct GaitProfile {
  double step_length_m{0.70};
  double step_period_s{0.55};
  double trembling{0.2};  ///< 0 = steady hand; ~1 = heavy trembling.

  bool operator==(const GaitProfile&) const = default;
};

class ImuSimulator {
 public:
  ImuSimulator(ImuParams params, std::uint64_t seed);

  /// Synthesize the samples covering one true step: the walker turned by
  /// `true_dheading` (rad) during the step and ends at heading
  /// `true_heading`. `indoor` selects magnetic disturbance level.
  std::vector<ImuSample> step_trace(const GaitProfile& gait,
                                    double true_heading, double true_dheading,
                                    bool indoor);

  /// Synthesize `duration_s` of standing-still samples (no step bump).
  std::vector<ImuSample> idle_trace(double duration_s, double true_heading,
                                    bool indoor);

  double gyro_bias() const { return gyro_bias_; }
  double mag_offset() const { return mag_offset_; }
  double clock() const { return t_; }

 private:
  ImuParams params_;
  stats::Rng rng_;
  double t_{0.0};
  double gyro_bias_{0.0};
  double mag_offset_{0.0};
};

}  // namespace uniloc::sim
