// Floor-plan walls.
//
// The paper's PDR "uses a particle filter to incorporate the map
// constraints (e.g., path edges and walls)" [7]. The default PdrScheme
// constraint is the soft corridor tube (stay near the walkway); this
// module generates the *physical* version: wall segments flanking every
// indoor corridor at half the corridor width, with periodic doorway gaps.
// A particle step that crosses a wall is impossible and is killed -- the
// stricter constraint of the original system, available via
// PdrOptions::use_walls and compared in bench/ablation_walls.
#pragma once

#include <vector>

#include "geo/segment.h"
#include "sim/place.h"

namespace uniloc::sim {

struct WallOptions {
  double door_spacing_m = 12.0;  ///< A doorway gap roughly this often.
  double door_width_m = 1.2;
  double junction_gap_m = 2.5;   ///< Opening at segment boundaries.
  /// Extra clearance around corners beyond the corridor half-width, so
  /// the inside of a turn stays walkable.
  double corner_clearance_m = 0.8;
  /// No walls within `exclusion_radius_m` of these points -- used for
  /// hub areas where several walkways meet (e.g. the campus start hall,
  /// which all eight daily paths radiate from).
  std::vector<geo::Vec2> exclusion_centers;
  double exclusion_radius_m = 0.0;
};

/// Wall segments flanking the indoor stretches of one walkway.
std::vector<geo::Segment> generate_walls(const Walkway& walkway,
                                         const WallOptions& opts = {});

/// Generate and attach walls for every walkway of the place.
void deploy_walls(Place& place, const WallOptions& opts = {});

/// Wall options with the walkways' shared start points excluded -- the
/// right default for hub-and-spoke venues like the campus, whose eight
/// paths all leave the same hall.
WallOptions hub_aware_wall_options(const Place& place,
                                   double hub_radius_m = 30.0);

}  // namespace uniloc::sim
