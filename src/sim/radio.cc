#include "sim/radio.h"

#include <cassert>
#include <cmath>

namespace uniloc::sim {

RadioEnvironment::RadioEnvironment(const Place* place, RadioParams wifi_params,
                                   CellRadioParams cell_params,
                                   std::uint64_t shadow_seed)
    : place_(place),
      wifi_(wifi_params),
      cell_(cell_params),
      shadow_seed_(shadow_seed) {
  assert(place != nullptr);
  ap_shadow_.reserve(place->access_points().size());
  for (const AccessPoint& ap : place->access_points()) {
    ap_shadow_.emplace_back(
        stats::hash_combine(shadow_seed_, static_cast<std::uint64_t>(ap.id)),
        wifi_.shadow_corr_m, wifi_.shadow_sd_db);
  }
  tower_shadow_.reserve(place->cell_towers().size());
  for (const CellTower& t : place->cell_towers()) {
    tower_shadow_.emplace_back(
        stats::hash_combine(shadow_seed_ ^ 0xC311ULL,
                            static_cast<std::uint64_t>(t.id) + 7919),
        cell_.shadow_corr_m, cell_.shadow_sd_db);
  }
}

double RadioEnvironment::wifi_path_rssi(const AccessPoint& ap,
                                        geo::Vec2 pos) const {
  const double d = std::max(1.0, geo::distance(ap.pos, pos));
  const LocalEnvironment env = place_->environment_at(pos);
  const double n =
      env.indoor ? wifi_.path_loss_exp_indoor : wifi_.path_loss_exp_outdoor;
  double rssi = ap.tx_power_dbm - 10.0 * n * std::log10(d);
  if (ap.indoor != env.indoor) rssi -= wifi_.wall_penetration_db;
  if (env.type == SegmentType::kBasement) rssi -= wifi_.basement_extra_loss_db;
  return rssi;
}

std::optional<double> RadioEnvironment::wifi_mean_rssi(const AccessPoint& ap,
                                                       geo::Vec2 pos) const {
  const std::size_t idx = static_cast<std::size_t>(&ap - place_->access_points().data());
  const double shadow = idx < ap_shadow_.size() ? ap_shadow_[idx].at(pos) : 0.0;
  const double rssi = wifi_path_rssi(ap, pos) + shadow;
  if (rssi < wifi_.audible_threshold_dbm) return std::nullopt;
  return rssi;
}

std::vector<ApReading> RadioEnvironment::wifi_scan(geo::Vec2 pos,
                                                   stats::Rng& rng) const {
  std::vector<ApReading> out;
  const auto& aps = place_->access_points();
  for (std::size_t i = 0; i < aps.size(); ++i) {
    const double rssi = wifi_path_rssi(aps[i], pos) + ap_shadow_[i].at(pos) +
                        rng.normal(0.0, wifi_.temporal_sd_db);
    if (rssi >= wifi_.audible_threshold_dbm) out.push_back({aps[i].id, rssi});
  }
  return out;
}

std::vector<ApReading> RadioEnvironment::wifi_scan_noiseless(
    geo::Vec2 pos) const {
  std::vector<ApReading> out;
  const auto& aps = place_->access_points();
  for (std::size_t i = 0; i < aps.size(); ++i) {
    if (auto rssi = wifi_mean_rssi(aps[i], pos)) out.push_back({aps[i].id, *rssi});
  }
  return out;
}

double RadioEnvironment::cell_path_rssi(const CellTower& tower,
                                        geo::Vec2 pos) const {
  const double d = std::max(1.0, geo::distance(tower.pos, pos));
  const LocalEnvironment env = place_->environment_at(pos);
  double rssi = tower.tx_power_dbm - 10.0 * cell_.path_loss_exp * std::log10(d);
  if (env.indoor) rssi -= cell_.indoor_loss_db;
  if (env.type == SegmentType::kBasement ||
      env.type == SegmentType::kMallAisle) {
    rssi -= cell_.basement_loss_db;
    if (!tower.basement_reachable) rssi -= cell_.nonreachable_extra_db;
  }
  return rssi;
}

std::optional<double> RadioEnvironment::cell_mean_rssi(const CellTower& tower,
                                                       geo::Vec2 pos) const {
  const std::size_t idx =
      static_cast<std::size_t>(&tower - place_->cell_towers().data());
  const double shadow =
      idx < tower_shadow_.size() ? tower_shadow_[idx].at(pos) : 0.0;
  const double rssi = cell_path_rssi(tower, pos) + shadow;
  if (rssi < cell_.audible_threshold_dbm) return std::nullopt;
  return rssi;
}

std::vector<ApReading> RadioEnvironment::cell_scan(geo::Vec2 pos,
                                                   stats::Rng& rng) const {
  std::vector<ApReading> out;
  const auto& towers = place_->cell_towers();
  for (std::size_t i = 0; i < towers.size(); ++i) {
    const double rssi = cell_path_rssi(towers[i], pos) +
                        tower_shadow_[i].at(pos) +
                        rng.normal(0.0, cell_.temporal_sd_db);
    if (rssi >= cell_.audible_threshold_dbm) out.push_back({towers[i].id, rssi});
  }
  return out;
}

std::vector<ApReading> RadioEnvironment::cell_scan_noiseless(
    geo::Vec2 pos) const {
  std::vector<ApReading> out;
  const auto& towers = place_->cell_towers();
  for (std::size_t i = 0; i < towers.size(); ++i) {
    if (auto rssi = cell_mean_rssi(towers[i], pos)) {
      out.push_back({towers[i].id, *rssi});
    }
  }
  return out;
}

}  // namespace uniloc::sim
