// Core world-model value types for the UniLoc simulator.
#pragma once

#include <string>
#include <vector>

#include "geo/vec2.h"

namespace uniloc::sim {

/// Environment classes along the paper's walking paths (Fig. 2: office,
/// corridor, basement passageway, car park, open space; plus the mall
/// aisles of the Fig. 8a experiment).
enum class SegmentType {
  kOffice,
  kCorridor,     ///< Semi-open corridor (roofed => "indoor" per the paper).
  kBasement,     ///< No WiFi, no GPS; weak cellular.
  kCarPark,      ///< Roofed parking; sparse WiFi, degraded GPS.
  kOpenSpace,    ///< Outdoor.
  kMallAisle,    ///< Shopping-mall floor (crowded, basement-floor cellular).
};

/// The paper treats every roofed area as indoor (Sec. III-A).
constexpr bool is_indoor(SegmentType t) { return t != SegmentType::kOpenSpace; }

const char* segment_name(SegmentType t);

/// Fraction of open sky visible (drives GPS availability and quality).
double sky_visibility(SegmentType t);

/// Typical walkable corridor/path width in meters (the beta2 factor of the
/// motion error model: wider corridor => looser map constraint).
double default_corridor_width(SegmentType t);

/// PDR calibration landmarks (paper Sec. II: "turns, doors and
/// signatures" following UnLoc [12]).
enum class LandmarkKind { kTurn, kDoor, kWifiSignature };

struct Landmark {
  geo::Vec2 pos;
  LandmarkKind kind{LandmarkKind::kTurn};
  double detect_radius_m{2.0};  ///< Walker must pass this close to trigger.
};

/// A WiFi access point. `indoor` matters for wall-penetration loss.
struct AccessPoint {
  int id{0};
  geo::Vec2 pos;
  double tx_power_dbm{-40.0};  ///< RSSI at the 1 m reference distance.
  bool indoor{true};
};

/// A cellular base station. Longer range, fewer of them. The power is the
/// effective received level at the 1 m reference distance (towers radiate
/// tens of watts, hence the large value relative to WiFi APs).
struct CellTower {
  int id{0};
  geo::Vec2 pos;
  double tx_power_dbm{18.0};
  bool basement_reachable{true};  ///< Some towers penetrate to basements.
};

/// One typed stretch of a walkway, addressed by arc length on its polyline.
struct PathSegment {
  SegmentType type{SegmentType::kCorridor};
  double start_arclen{0.0};
  double end_arclen{0.0};
  double corridor_width_m{3.0};
};

}  // namespace uniloc::sim
