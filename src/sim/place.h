// Place: a named venue with walkable paths, radio infrastructure and
// landmarks -- the world every experiment runs in.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "geo/bbox.h"
#include "geo/spatial_index.h"
#include "geo/latlon.h"
#include "geo/polyline.h"
#include "geo/segment.h"
#include "geo/vec2.h"
#include "sim/types.h"

namespace uniloc::sim {

/// One named walkable route through a place (e.g. "Path 1" of Fig. 4),
/// a polyline annotated with typed segments by arc length.
struct Walkway {
  std::string name;
  geo::Polyline line;
  std::vector<PathSegment> segments;  ///< Ordered, covering [0, length].

  /// Segment attributes at arc length s (clamped).
  const PathSegment& segment_at(double arclen) const;

  /// Total length of stretches satisfying a predicate.
  double length_where(bool (*pred)(SegmentType)) const;

  /// Landmarks implied by geometry: one kTurn at every vertex whose
  /// direction change exceeds `min_turn_rad`.
  std::vector<Landmark> turn_landmarks(double min_turn_rad = 0.5) const;
};

/// Attributes of the environment at a point (resolved via the nearest
/// walkway; points far from all walkways resolve to open space).
struct LocalEnvironment {
  SegmentType type{SegmentType::kOpenSpace};
  double corridor_width_m{12.0};
  bool indoor{false};
  double sky_visibility{1.0};
  std::size_t walkway{0};
  double arclen{0.0};
  double distance_to_walkway{0.0};
};

class Place {
 private:
  struct EnvIndex;  // Defined below; named early for EnvView.

 public:
  Place(std::string name, geo::LatLon anchor);

  /// Borrowed view over the environment index: pins the index once (a
  /// single shared_ptr copy) so per-particle hot loops can query
  /// corridor safety and the environment without paying an atomic
  /// refcount round-trip on every call -- at ~1200 queries per epoch
  /// those two lock-prefixed ops per query were a measurable slice of
  /// the map constraint. Results are bit-identical to
  /// corridor_safe_fast / environment_at_fast; acquire one view per
  /// reweight pass, not per query.
  class EnvView {
   public:
    /// Same contract as Place::corridor_safe_fast.
    bool corridor_safe(geo::Vec2 p) const;
    /// Same contract as Place::environment_at_fast.
    LocalEnvironment environment(geo::Vec2 p) const;

   private:
    friend class Place;
    EnvView(const Place* place, std::shared_ptr<const EnvIndex> idx)
        : place_(place), idx_(std::move(idx)) {}
    const Place* place_;
    std::shared_ptr<const EnvIndex> idx_;
  };

  /// Pin the current env index (see EnvView). Safe to call before
  /// prebuild_env_index(); queries then fall back like the _fast calls.
  EnvView env_view() const { return EnvView(this, env_index_); }

  const std::string& name() const { return name_; }
  const geo::LocalFrame& frame() const { return frame_; }

  /// --- construction -------------------------------------------------
  /// Add a walkway; returns its index.
  std::size_t add_walkway(Walkway w);
  void add_access_point(AccessPoint ap);
  void add_cell_tower(CellTower t);
  void add_landmark(Landmark l);
  void add_wall(geo::Segment wall);

  /// Derive kTurn landmarks for all walkways and append them.
  void add_turn_landmarks(double min_turn_rad = 0.5);

  /// --- queries --------------------------------------------------------
  const std::vector<Walkway>& walkways() const { return walkways_; }
  const std::vector<AccessPoint>& access_points() const { return aps_; }
  const std::vector<CellTower>& cell_towers() const { return towers_; }
  const std::vector<Landmark>& landmarks() const { return landmarks_; }
  const std::vector<geo::Segment>& walls() const { return walls_; }

  /// True if the straight move a -> b crosses any wall.
  bool crosses_wall(geo::Vec2 a, geo::Vec2 b) const;

  /// Force-build the lazy wall index now. crosses_wall() builds it on
  /// first query, which is a hidden write behind a const call -- call
  /// this once before sharing a Place across threads (the svc server
  /// does) so concurrent const queries are genuinely read-only.
  void prebuild_wall_index() const;

  /// Bounding box of all walkways (inflated a little for grids).
  geo::BBox bounds() const;

  /// Environment attributes at a point.
  LocalEnvironment environment_at(geo::Vec2 p) const;

  /// environment_at through a precomputed per-cell candidate index: only
  /// the walkways that can possibly be nearest to some point of the
  /// query's grid cell are projected. Bit-identical to environment_at --
  /// the pruning is a strict triangle-inequality bound, so every pruned
  /// walkway is strictly farther than the winner at every point of the
  /// cell (never the `<` winner, and the global minimum distance is
  /// unchanged, so the open-space fallback fires identically). Falls back
  /// to the full scan off-grid or while the index is not built.
  LocalEnvironment environment_at_fast(geo::Vec2 p) const;

  /// Force-build the candidate index behind environment_at_fast() now;
  /// invalidated by add_walkway. Like prebuild_wall_index, call once at
  /// deployment warmup before sharing the Place across threads.
  void prebuild_env_index() const;

  /// True when every point of p's env-index grid cell is provably inside
  /// its nearest walkway's corridor (distance to the walkway at most half
  /// the walkway's minimum corridor width, with conservative margins for
  /// the cell diagonal and rounding). Where this holds, the map
  /// constraint's corridor likelihood is exactly 1.0 -- the SIMD fast
  /// path uses it to skip the walkway projection entirely without
  /// changing a single particle weight. Returns false off-grid, on unsafe
  /// cells, or while the index is not built (callers then take the full
  /// environment path).
  bool corridor_safe_fast(geo::Vec2 p) const;

  /// Landmarks within `radius` of a point.
  std::vector<const Landmark*> landmarks_near(geo::Vec2 p,
                                              double radius) const;

  /// Total walkway length (meters).
  double total_walkway_length() const;

 private:
  std::string name_;
  geo::LocalFrame frame_;
  std::vector<Walkway> walkways_;
  std::vector<AccessPoint> aps_;
  std::vector<CellTower> towers_;
  std::vector<Landmark> landmarks_;
  std::vector<geo::Segment> walls_;
  /// Lazily (re)built bucket index over walls_; invalidated by add_wall.
  /// shared_ptr keeps Place copyable (copies share the immutable index).
  mutable std::shared_ptr<const geo::SegmentIndex> wall_index_;

  /// Per-cell candidate walkways for environment_at_fast: a walkway is a
  /// candidate of a cell iff its distance to the cell center is within
  /// twice the cell half-diagonal of the closest walkway's (triangle
  /// inequality: anything farther can never win anywhere in the cell).
  /// Candidates are stored in ascending walkway order so the first-
  /// strictly-smaller tie-break of environment_at is preserved.
  struct EnvIndex {
    geo::BBox box;
    double cell{0.0};
    std::size_t nx{0}, ny{0};
    std::vector<std::uint32_t> begin;       ///< Cell -> span into candidates.
    std::vector<std::uint32_t> candidates;  ///< Walkway indices per cell.
    /// Fine-grained corridor-safe bitmap. Coarse (4 m) cells never
    /// certify safety in realistic venues -- their half-diagonal (2.8 m)
    /// alone exceeds the 1.75-2.25 m corridor half-widths -- so safety is
    /// tested on a sub-grid whose half-diagonal (0.35 m at 0.5 m cells)
    /// leaves room for the bound to hold. Only coarse cells where safety
    /// is possible at all are refined; everything else stays 0 without a
    /// single projection.
    double fine_cell{0.0};
    std::size_t fnx{0}, fny{0};
    std::vector<std::uint8_t> fine_safe;
    /// Edge-level candidate lists, packed (walkway << 16) | edge and
    /// stored ascending. The same triangle-inequality proof applies per
    /// edge: an edge whose center distance exceeds the cell minimum by
    /// more than the cell diagonal can never be the nearest edge (nor an
    /// exact tie) anywhere in the cell, so querying only the kept edges
    /// reproduces the full projection bit for bit while skipping most of
    /// each candidate walkway's vertices. Left empty (query falls back
    /// to walkway-level candidates) when any walkway is degenerate
    /// (< 2 points) or indices would overflow the 16-bit packing.
    std::vector<std::uint32_t> ebegin;  ///< Cell -> span into ecand.
    std::vector<std::uint32_t> ecand;   ///< Packed (walkway, edge) per cell.
  };
  LocalEnvironment environment_over(geo::Vec2 p, const std::uint32_t* cand,
                                    std::size_t count) const;
  LocalEnvironment environment_over_edges(geo::Vec2 p,
                                          const std::uint32_t* cand,
                                          std::size_t count) const;
  mutable std::shared_ptr<const EnvIndex> env_index_;
};

}  // namespace uniloc::sim
