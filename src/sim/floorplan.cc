#include "sim/floorplan.h"

#include <algorithm>
#include <cmath>

namespace uniloc::sim {

namespace {

/// Emit wall pieces along one side of a straight corridor stretch,
/// leaving periodic doorway gaps.
void emit_side(const geo::Polyline& line, double s0, double s1, double offset,
               const WallOptions& opts, std::vector<geo::Segment>* out) {
  double cursor = s0;
  // First door half a spacing in, so walls start with a solid piece.
  double next_door = s0 + opts.door_spacing_m / 2.0;
  while (cursor < s1 - 0.05) {
    const double piece_end = std::min(s1, next_door);
    if (piece_end - cursor > 0.2) {
      const geo::Vec2 a =
          line.point_at(cursor) + line.tangent_at(cursor).perp() * offset;
      const geo::Vec2 b = line.point_at(piece_end) +
                          line.tangent_at(piece_end).perp() * offset;
      out->push_back({a, b});
    }
    cursor = piece_end + opts.door_width_m;
    next_door += opts.door_spacing_m;
  }
}

}  // namespace

std::vector<geo::Segment> generate_walls(const Walkway& walkway,
                                         const WallOptions& opts) {
  std::vector<geo::Segment> walls;
  const geo::Polyline& line = walkway.line;
  for (const PathSegment& seg : walkway.segments) {
    if (!is_indoor(seg.type)) continue;
    const double half = seg.corridor_width_m / 2.0;
    // Junction openings at segment boundaries; split the stretch at
    // polyline vertices so walls follow corners.
    const double s_begin = seg.start_arclen + opts.junction_gap_m / 2.0;
    const double s_end = seg.end_arclen - opts.junction_gap_m / 2.0;
    if (s_end <= s_begin) continue;
    // Walk vertex to vertex within [s_begin, s_end]. Corners get a
    // clearance of half-width + corner_clearance on both sides so the
    // inside of a turn stays walkable.
    const double corner_gap = half + opts.corner_clearance_m;
    double piece_start = s_begin;
    for (std::size_t v = 0; v + 1 < line.size(); ++v) {
      const double vs = line.arclen_of_vertex(v + 1);
      if (vs <= piece_start || piece_start >= s_end) continue;
      const bool at_line_end = v + 2 >= line.size();
      const double piece_end =
          std::min(at_line_end ? vs : vs - corner_gap, s_end);
      emit_side(line, piece_start, std::max(piece_start, piece_end), half,
                opts, &walls);
      emit_side(line, piece_start, std::max(piece_start, piece_end), -half,
                opts, &walls);
      piece_start = vs + corner_gap;
      if (piece_start >= s_end) break;
    }
  }
  // Exclusion zones (shared hubs).
  if (opts.exclusion_radius_m > 0.0 && !opts.exclusion_centers.empty()) {
    std::vector<geo::Segment> kept;
    kept.reserve(walls.size());
    for (const geo::Segment& w : walls) {
      bool excluded = false;
      for (const geo::Vec2& c : opts.exclusion_centers) {
        if (geo::point_segment_distance(c, w.a, w.b) <
            opts.exclusion_radius_m) {
          excluded = true;
          break;
        }
      }
      if (!excluded) kept.push_back(w);
    }
    walls = std::move(kept);
  }
  return walls;
}

void deploy_walls(Place& place, const WallOptions& opts) {
  // A wall cannot stand inside another corridor: where two walkways
  // cross, the junction stays open. Drop wall pieces that intrude into a
  // different walkway's corridor.
  auto intrudes = [&](const geo::Segment& wall, std::size_t own) {
    for (std::size_t j = 0; j < place.walkways().size(); ++j) {
      if (j == own) continue;
      const Walkway& other = place.walkways()[j];
      for (const geo::Vec2 probe :
           {wall.a, wall.midpoint(), wall.b}) {
        const geo::Projection proj = other.line.project(probe);
        const PathSegment& seg = other.segment_at(proj.arclen);
        if (proj.distance < seg.corridor_width_m / 2.0 + 0.5) return true;
      }
    }
    return false;
  };
  for (std::size_t i = 0; i < place.walkways().size(); ++i) {
    for (const geo::Segment& s : generate_walls(place.walkways()[i], opts)) {
      if (!intrudes(s, i)) place.add_wall(s);
    }
  }
}

WallOptions hub_aware_wall_options(const Place& place, double hub_radius_m) {
  WallOptions opts;
  opts.exclusion_radius_m = hub_radius_m;
  for (const Walkway& w : place.walkways()) {
    if (w.line.empty()) continue;
    const geo::Vec2 start = w.line.point_at(0.0);
    bool duplicate = false;
    for (const geo::Vec2& c : opts.exclusion_centers) {
      duplicate = duplicate || geo::distance(c, start) < 1.0;
    }
    if (!duplicate) opts.exclusion_centers.push_back(start);
  }
  return opts;
}

}  // namespace uniloc::sim
