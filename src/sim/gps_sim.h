// GPS receiver simulator.
//
// The paper measured smartphone GPS outdoors: ~10.9 visible satellites,
// HDOP ~0.9, and a localization error that "follows a Gaussian
// distribution with a mean of 13.5 m and a deviation of 9.4 m"
// (Sec. III-B). The simulator reproduces exactly that: outdoors it emits a
// fix whose radial error is Gaussian(13.5, 9.4) in a uniform direction;
// under partial sky (car park, corridor edge) satellites drop, HDOP grows
// and error inflates; with no sky (office interior, basement, mall) there
// is no fix. A fix is reported only when n_sats > 4 and HDOP < 6 -- the
// validity gate of [28] the paper adopts.
#pragma once

#include <optional>

#include "geo/latlon.h"
#include "geo/vec2.h"
#include "stats/rng.h"

namespace uniloc::sim {

struct GpsFix {
  geo::LatLon pos;
  double hdop{1.0};
  int num_satellites{0};
};

struct GpsParams {
  double open_sky_error_mean_m{13.5};
  double open_sky_error_sd_m{9.4};
  double open_sky_satellites{10.9};
  double open_sky_hdop{0.9};
  double min_visibility_for_fix{0.18};  ///< Below this no fix at all.
  int min_satellites{5};                ///< Paper/[28]: need > 4 sats.
  double max_hdop{6.0};                 ///< Paper/[28]: need HDOP < 6.
};

class GpsSimulator {
 public:
  GpsSimulator(const geo::LocalFrame& frame, GpsParams params = {});

  /// Sample a fix at true position `true_pos` with sky fraction
  /// `sky_visibility` in [0,1]. Returns nullopt when the receiver cannot
  /// produce a valid fix.
  std::optional<GpsFix> sample(geo::Vec2 true_pos, double sky_visibility,
                               stats::Rng& rng) const;

  const GpsParams& params() const { return params_; }

 private:
  geo::LocalFrame frame_;
  GpsParams params_;
};

}  // namespace uniloc::sim
