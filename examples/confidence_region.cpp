// Confidence regions from the full fused posterior.
//
// UniLoc2's point estimate is the mixture expectation, but applications
// like geofencing or emergency dispatch want "where is the user with 90%
// probability?". This example rasterizes the schemes' posteriors onto the
// place grid with the epoch's BMA weights (Eq. 3 in its literal discrete
// form) and reports MAP cell, entropy and the 90% confidence radius as
// the walker moves from deep indoors to open space.
#include <cstdio>

#include "core/posterior_fusion.h"
#include "core/runner.h"
#include "sim/walker.h"

using namespace uniloc;

namespace {

/// Smallest radius around the expectation holding >= `target` mass.
double confidence_radius(const core::FusedPosterior& post, double target) {
  const geo::Vec2 center = post.expectation();
  for (double r = 1.0; r < 200.0; r += 1.0) {
    if (post.mass_within(center, r) >= target) return r;
  }
  return 200.0;
}

}  // namespace

int main() {
  const core::TrainedModels models = core::train_standard_models(42, 300);
  core::Deployment campus = core::make_deployment(sim::campus());
  core::Uniloc uniloc = core::make_uniloc(campus, models);

  const geo::Grid grid(campus.place->bounds(), 3.0);
  std::printf("posterior grid: %dx%d cells of 3 m\n\n", grid.nx(), grid.ny());
  std::printf("%6s %-11s %9s %9s %9s %8s\n", "t(s)", "segment", "err(m)",
              "90%% rad", "entropy", "schemes");

  sim::WalkConfig wc;
  wc.seed = 404;
  sim::Walker walker(campus.place.get(), campus.radio.get(), 0, wc);
  uniloc.reset({walker.start_position(), walker.start_heading()});

  int epoch = 0;
  while (!walker.done()) {
    const sim::SensorFrame frame = walker.step(uniloc.gps_enabled());
    const core::EpochDecision dec = uniloc.update(frame);
    if (++epoch % 60 != 0) continue;

    const core::FusedPosterior post =
        core::fuse_posteriors(grid, dec.outputs, dec.weight);
    int active = 0;
    for (double w : dec.weight) active += w > 0.01 ? 1 : 0;
    std::printf("%6.1f %-11s %8.1fm %8.0fm %9.2f %8d\n", frame.t,
                sim::segment_name(frame.truth_env),
                geo::distance(post.expectation(), frame.truth_pos),
                confidence_radius(post, 0.9), post.entropy(), active);
  }
  std::printf("\nthe confidence radius widens exactly where individual "
              "schemes disagree (open space) and tightens where the "
              "ensemble is unanimous (office corridors).\n");
  return 0;
}
