// Quickstart: train UniLoc's error models once, then localize a walker
// along the campus daily path with five schemes fused by locally-weighted
// BMA.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "core/runner.h"
#include "energy/energy_model.h"
#include "stats/descriptive.h"

using namespace uniloc;

int main() {
  // 1. Offline, once ever: train the per-family error models in two small
  //    training venues (an office and an open space). They transfer to
  //    every other place without retraining.
  std::printf("training error models (office + open space)...\n");
  const core::TrainedModels models = core::train_standard_models(
      /*seed=*/42, /*target_samples=*/300);

  // 2. Deploy on the campus: build the world, radio environment and
  //    fingerprint databases, and assemble UniLoc with the standard five
  //    schemes (GPS, WiFi/RADAR, cellular, motion PDR, fusion).
  core::Deployment campus = core::make_deployment(sim::campus());
  core::Uniloc uniloc = core::make_uniloc(campus, models);

  // 3. Walk Path 1 (office -> corridor -> basement -> car park -> open
  //    space) and localize at every step.
  core::RunOptions opts;
  opts.walk.seed = 2024;
  const core::RunResult run = core::run_walk(uniloc, campus, /*walkway=*/0,
                                             opts);

  std::printf("\n%zu location estimates on %s\n", run.epochs.size(),
              campus.place->walkways()[0].name.c_str());
  std::printf("%-10s %10s %10s\n", "scheme", "mean err", "90th pct");
  for (std::size_t i = 0; i < run.scheme_names.size(); ++i) {
    const std::vector<double> errs = run.scheme_errors(i);
    if (errs.empty()) continue;
    std::printf("%-10s %9.2fm %9.2fm   (available %4.0f%% of epochs)\n",
                run.scheme_names[i].c_str(), stats::mean(errs),
                stats::percentile(errs, 90.0),
                100.0 * static_cast<double>(errs.size()) /
                    static_cast<double>(run.epochs.size()));
  }
  const auto u1 = run.uniloc1_errors();
  const auto u2 = run.uniloc2_errors();
  const auto oracle = run.oracle_errors();
  std::printf("%-10s %9.2fm %9.2fm\n", "Oracle", stats::mean(oracle),
              stats::percentile(oracle, 90.0));
  std::printf("%-10s %9.2fm %9.2fm\n", "UniLoc1", stats::mean(u1),
              stats::percentile(u1, 90.0));
  std::printf("%-10s %9.2fm %9.2fm\n", "UniLoc2", stats::mean(u2),
              stats::percentile(u2, 90.0));

  const energy::GpsSavings gps = energy::gps_savings(run, 0.55);
  std::printf("\nGPS duty cycle: on %.0f%% of epochs; outdoor GPS energy "
              "%.1fJ vs %.1fJ always-on (%.1fx saved)\n",
              100.0 * run.gps_duty_fraction(), gps.duty_cycled_j,
              gps.always_on_j, gps.ratio);
  return 0;
}
