// Mall tracking: deploy UniLoc in a venue its error models never saw
// (the paper's scalability claim), with a heterogeneous phone (LG G3 on
// Nexus-5X fingerprints) and online offset calibration.
//
// Tracks several shoppers through the aisles of the basement-floor mall
// -- no GPS, only ~2 cell towers -- and prints per-shopper accuracy.
#include <cstdio>

#include "core/runner.h"
#include "stats/descriptive.h"

using namespace uniloc;

int main() {
  // Error models come from the office + open space, never the mall.
  const core::TrainedModels models = core::train_standard_models(42, 300);

  core::DeploymentOptions opts;
  opts.seed = 7;
  opts.cell.nonreachable_extra_db = 45.0;  // basement floor: ~2 towers
  core::Deployment mall = core::make_deployment(sim::mall_place(7), opts);

  // Three shoppers with different phones and gaits.
  struct Shopper {
    const char* name;
    sim::DeviceModel device;
    double step_len;
    std::uint64_t seed;
  };
  const Shopper shoppers[] = {
      {"alice (Nexus 5X)", sim::nexus_5x(), 0.66, 10},
      {"bob   (LG G3)", sim::lg_g3(), 0.78, 20},
      {"carol (LG G3)", sim::lg_g3(), 0.60, 30},
  };

  std::printf("tracking %zu shoppers in the mall (%zu fingerprints, "
              "%zu APs)\n\n",
              std::size(shoppers), mall.wifi_db->size(),
              mall.place->access_points().size());

  for (const Shopper& s : shoppers) {
    // Heterogeneous phones get online offset calibration (Fig. 8d).
    const bool calibrate = s.device.name != "Nexus5X";
    core::Uniloc uniloc = core::make_uniloc(mall, models, {}, calibrate,
                                            s.seed);
    core::RunOptions ro;
    ro.walk.seed = s.seed;
    ro.walk.device = s.device;
    ro.walk.gait.step_length_m = s.step_len;
    const core::RunResult run = core::run_walk(uniloc, mall, 0, ro);

    const auto u2 = run.uniloc2_errors();
    std::printf("%-18s  %4zu estimates | UniLoc2 mean %5.2f m  p90 %5.2f m"
                "  | calibration %s\n",
                s.name, run.epochs.size(), stats::mean(u2),
                stats::percentile(u2, 90.0), calibrate ? "on" : "off");
    // Which schemes carried the load here (no GPS underground).
    const std::vector<double> usage = run.uniloc1_usage();
    std::printf("%-18s  scheme usage:", "");
    for (std::size_t i = 0; i < usage.size(); ++i) {
      if (usage[i] > 0.01) {
        std::printf(" %s %.0f%%", run.scheme_names[i].c_str(),
                    100.0 * usage[i]);
      }
    }
    std::printf("\n");
  }
  return 0;
}
