// Campus navigation: live positioning along a daily path with a
// turn-by-turn style progress readout -- the workload the paper's
// introduction motivates (walking from the lab to a restaurant across
// office, corridor, basement, car park and open space).
//
// Demonstrates: per-epoch EpochDecision introspection (which scheme
// UniLoc trusts where), GPS duty-cycling in action, and remaining-
// distance estimation from the fused position.
#include <cstdio>

#include "core/runner.h"
#include "sim/walker.h"
#include "stats/descriptive.h"

using namespace uniloc;

int main() {
  const core::TrainedModels models = core::train_standard_models(42, 300);
  core::Deployment campus = core::make_deployment(sim::campus());
  core::Uniloc uniloc = core::make_uniloc(campus, models);

  const std::size_t path = 0;  // Path 1: lab -> restaurant
  const sim::Walkway& way = campus.place->walkways()[path];
  std::printf("navigating %s (%.0f m)\n\n", way.name.c_str(),
              way.line.length());

  sim::WalkConfig wc;
  wc.seed = 321;
  sim::Walker walker(campus.place.get(), campus.radio.get(), path, wc);
  uniloc.reset({walker.start_position(), walker.start_heading()});

  int epoch = 0;
  sim::SegmentType last_env = sim::SegmentType::kOffice;
  std::vector<double> errors;
  while (!walker.done()) {
    const sim::SensorFrame frame = walker.step(uniloc.gps_enabled());
    const core::EpochDecision dec = uniloc.update(frame);
    ++epoch;
    errors.push_back(geo::distance(dec.uniloc2, frame.truth_pos));

    // Announce environment changes like a navigation app would.
    if (frame.truth_env != last_env) {
      std::printf(">> entering %s (detected %s)\n",
                  sim::segment_name(frame.truth_env),
                  dec.indoor ? "indoor" : "outdoor");
      last_env = frame.truth_env;
    }
    if (epoch % 80 == 0) {
      // Remaining distance from the fused position.
      const geo::Projection proj = way.line.project(dec.uniloc2);
      const char* trusted =
          dec.selected >= 0
              ? uniloc.scheme_names()[static_cast<std::size_t>(dec.selected)]
                    .c_str()
              : "none";
      std::printf("   t=%5.1fs  %5.0f m to go | trusting %-8s | GPS %s | "
                  "err %4.1f m\n",
                  frame.t, way.line.length() - proj.arclen, trusted,
                  frame.gps_enabled ? "ON " : "off", errors.back());
    }
  }
  std::printf("\narrived after %d steps; mean positioning error %.2f m "
              "(p90 %.2f m)\n",
              epoch, stats::mean(errors), stats::percentile(errors, 90.0));
  return 0;
}
