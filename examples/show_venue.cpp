// Render a venue (and optionally a UniLoc trajectory over it) as ASCII.
//
//   show_venue [campus|office|open_space|mall] [--walk <walkway-index>]
#include <cstdio>
#include <cstring>
#include <string>

#include "core/runner.h"
#include "io/ascii_map.h"
#include "sim/floorplan.h"
#include "stats/descriptive.h"

using namespace uniloc;

int main(int argc, char** argv) {
  const std::string venue = argc > 1 ? argv[1] : "campus";
  int walk = -1;
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--walk") == 0) walk = std::atoi(argv[i + 1]);
  }

  sim::Place place = venue == "office"       ? sim::office_place()
                     : venue == "open_space" ? sim::open_space_place()
                     : venue == "mall"       ? sim::mall_place()
                                             : sim::campus();
  sim::deploy_walls(place, sim::hub_aware_wall_options(place));

  std::vector<geo::Vec2> trajectory;
  if (walk >= 0) {
    const core::TrainedModels models = core::train_standard_models(42, 200);
    core::Deployment d = core::make_deployment(std::move(place));
    core::Uniloc uniloc = core::make_uniloc(d, models);
    core::RunOptions opts;
    opts.walk.seed = 11;
    opts.record_every = 4;
    const core::RunResult run =
        core::run_walk(uniloc, d, static_cast<std::size_t>(walk), opts);
    for (const core::EpochRecord& e : run.epochs) {
      trajectory.push_back(e.truth);
    }
    std::printf("%s, walkway %d (%zu samples, UniLoc2 mean err %.2f m)\n",
                venue.c_str(), walk, trajectory.size(),
                stats::mean(run.uniloc2_errors()));
    io::AsciiMapOptions mopts;
    std::printf("%s", io::render_ascii_map(*d.place, mopts, trajectory)
                          .c_str());
  } else {
    std::printf("%s: %zu walkways, %zu APs, %zu landmarks, %zu walls\n",
                venue.c_str(), place.walkways().size(),
                place.access_points().size(), place.landmarks().size(),
                place.walls().size());
    std::printf("%s", io::render_ascii_map(place).c_str());
  }
  std::printf("\nlegend: . walkway  # wall  A access point  * landmark  "
              "o trajectory (S start, E end)\n");
  return 0;
}
