// uniloc_cli: record / replay sensor traces from the command line.
//
//   uniloc_cli venues
//   uniloc_cli record <venue> <walkway-index> <seed> <out.trace>
//   uniloc_cli replay <venue> <trace-file> [--cold-start]
//
// `record` walks a venue and saves the full sensor stream (dataset
// collection). `replay` runs UniLoc offline over a saved trace and prints
// accuracy -- identical inputs for every algorithm variant you evaluate.
// With --cold-start the recorded start position is withheld and UniLoc
// bootstraps it from the first WiFi scans (Zee-style).
#include <cstdio>
#include <cstring>
#include <string>

#include "core/cold_start.h"
#include "core/runner.h"
#include "sim/trace_io.h"
#include "stats/descriptive.h"

using namespace uniloc;

namespace {

const char* kVenues[] = {"campus", "office", "open_space", "mall"};

sim::Place venue_by_name(const std::string& name, std::uint64_t seed) {
  if (name == "campus") return sim::campus(seed);
  if (name == "office") return sim::office_place(seed);
  if (name == "open_space") return sim::open_space_place(seed);
  if (name == "mall") return sim::mall_place(seed);
  throw std::runtime_error("unknown venue: " + name);
}

int cmd_venues() {
  std::printf("venue       walkways  length(m)\n");
  for (const char* name : kVenues) {
    const sim::Place p = venue_by_name(name, 42);
    std::printf("%-11s %8zu %10.0f\n", name, p.walkways().size(),
                p.total_walkway_length());
  }
  return 0;
}

int cmd_record(const std::string& venue, std::size_t walkway,
               std::uint64_t seed, const std::string& out) {
  core::Deployment d = core::make_deployment(
      venue_by_name(venue, 42), core::DeploymentOptions{.seed = 42});
  sim::WalkConfig wc;
  wc.seed = seed;
  sim::Walker walker(d.place.get(), d.radio.get(), walkway, wc);

  sim::Trace trace;
  trace.venue = venue;
  trace.step_period_s = wc.gait.step_period_s;
  trace.start_pos = walker.start_position();
  trace.start_heading = walker.start_heading();
  while (!walker.done()) trace.frames.push_back(walker.step(true));
  sim::write_trace(trace, out);
  std::printf("recorded %zu frames (%.0f m walk) to %s\n",
              trace.frames.size(),
              d.place->walkways()[walkway].line.length(), out.c_str());
  return 0;
}

int cmd_replay(const std::string& venue, const std::string& path,
               bool cold_start) {
  const sim::Trace trace = sim::read_trace(path);
  if (trace.venue != venue) {
    std::fprintf(stderr, "warning: trace was recorded in '%s'\n",
                 trace.venue.c_str());
  }
  std::printf("training error models...\n");
  const core::TrainedModels models = core::train_standard_models(42, 300);
  core::Deployment d = core::make_deployment(
      venue_by_name(venue, 42), core::DeploymentOptions{.seed = 42});
  core::Uniloc uniloc = core::make_uniloc(d, models);

  std::size_t first_frame = 0;
  if (cold_start) {
    core::ColdStartLocator locator(d.wifi_db.get());
    std::optional<schemes::StartCondition> start;
    while (first_frame < trace.frames.size() && !start.has_value()) {
      start = locator.observe(trace.frames[first_frame++]);
    }
    if (!start.has_value()) {
      std::fprintf(stderr, "cold start failed: no usable WiFi scans\n");
      return 1;
    }
    std::printf("cold start after %zu frames: (%.1f, %.1f), true start "
                "(%.1f, %.1f) -> %.1f m off\n",
                first_frame, start->pos.x, start->pos.y, trace.start_pos.x,
                trace.start_pos.y,
                geo::distance(start->pos, trace.start_pos));
    uniloc.reset(*start);
  } else {
    uniloc.reset({trace.start_pos, trace.start_heading});
  }

  std::vector<double> u1, u2;
  for (std::size_t i = first_frame; i < trace.frames.size(); ++i) {
    const core::EpochDecision dec = uniloc.update(trace.frames[i]);
    u1.push_back(geo::distance(dec.uniloc1, trace.frames[i].truth_pos));
    u2.push_back(geo::distance(dec.uniloc2, trace.frames[i].truth_pos));
  }
  std::printf("replayed %zu frames: UniLoc1 mean %.2f m (p90 %.2f), "
              "UniLoc2 mean %.2f m (p90 %.2f)\n",
              u1.size(), stats::mean(u1), stats::percentile(u1, 90.0),
              stats::mean(u2), stats::percentile(u2, 90.0));
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  uniloc_cli venues\n"
               "  uniloc_cli record <venue> <walkway> <seed> <out.trace>\n"
               "  uniloc_cli replay <venue> <trace> [--cold-start]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    if (cmd == "venues") return cmd_venues();
    if (cmd == "record" && argc == 6) {
      return cmd_record(argv[2], std::stoul(argv[3]), std::stoull(argv[4]),
                        argv[5]);
    }
    if (cmd == "replay" && (argc == 4 || argc == 5)) {
      const bool cold =
          argc == 5 && std::strcmp(argv[4], "--cold-start") == 0;
      return cmd_replay(argv[2], argv[3], cold);
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
