// uniloc_cli: record / replay sensor traces from the command line.
//
//   uniloc_cli venues
//   uniloc_cli record <venue> <walkway-index> <seed> <out.trace>
//   uniloc_cli replay <venue> <trace-file> [--cold-start]
//                     [--trace <out.jsonl>] [--metrics]
//
//   uniloc_cli serve-sim [--venue <name>] [--walkers N] [--workers W]
//                        [--shards K] [--epochs E] [--seed S]
//                        [--faults <plan>] [--metrics] [--statusz]
//                        [--trace-spans <file>] [--flight <file>]
//
// `record` walks a venue and saves the full sensor stream (dataset
// collection). `replay` runs UniLoc offline over a saved trace and prints
// accuracy -- identical inputs for every algorithm variant you evaluate.
// `serve-sim` stands up the src/svc multi-session LocalizationServer
// in-process and drives it with N simulated phones over the venue's
// walkways (the svc wire protocol end to end), printing throughput,
// latency percentiles, per-walker accuracy, and wire traffic. With
// --shards K (K > 1) the endpoint is instead a shard::ShardRouter over K
// in-process shards: consistent-hash session placement, per-round fleet
// checkpoints, and live rebalancing (DESIGN.md section 14); --statusz
// then dumps every shard via the kStatus admin frame (session id =
// shard index).
// With --faults every phone's link goes through a fault::FaultyLink; the
// plan is comma-separated key=value pairs, e.g.
//   --faults drop=0.02,corrupt=0.01,dup=0.01,delay_ms=50,blackout=10:20
// (rates are per-request probabilities; `blackout=a:b` takes the link
// down for send indices [a, b) and may repeat; `seed` defaults to the
// load seed). Phones retry with backoff and fall back to local PDR
// dead-reckoning during outages -- same machinery as tests/test_fault.cc.
// With --cold-start the recorded start position is withheld and UniLoc
// bootstraps it from the first WiFi scans (Zee-style).
// With --trace every epoch's full decision (scheme availability,
// predicted error, confidence, weights, UniLoc1's pick, GPS duty) is
// streamed as one JSON object per line. With --metrics the per-stage
// latency histograms are printed when the replay finishes.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "core/cold_start.h"
#include "core/runner.h"
#include "fault/link.h"
#include "fault/plan.h"
#include "io/table.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "shard/router.h"
#include "sim/trace_io.h"
#include "stats/descriptive.h"
#include "svc/checkpoint.h"
#include "svc/committer.h"
#include "svc/loadgen.h"
#include "svc/server.h"

using namespace uniloc;

namespace {

const char* kVenues[] = {"campus", "office", "open_space", "mall"};

sim::Place venue_by_name(const std::string& name, std::uint64_t seed) {
  if (name == "campus") return sim::campus(seed);
  if (name == "office") return sim::office_place(seed);
  if (name == "open_space") return sim::open_space_place(seed);
  if (name == "mall") return sim::mall_place(seed);
  throw std::runtime_error("unknown venue: " + name);
}

int cmd_venues() {
  std::printf("venue       walkways  length(m)\n");
  for (const char* name : kVenues) {
    const sim::Place p = venue_by_name(name, 42);
    std::printf("%-11s %8zu %10.0f\n", name, p.walkways().size(),
                p.total_walkway_length());
  }
  return 0;
}

int cmd_record(const std::string& venue, std::size_t walkway,
               std::uint64_t seed, const std::string& out) {
  core::Deployment d = core::make_deployment(
      venue_by_name(venue, 42), core::DeploymentOptions{.seed = 42});
  sim::WalkConfig wc;
  wc.seed = seed;
  sim::Walker walker(d.place.get(), d.radio.get(), walkway, wc);

  sim::Trace trace;
  trace.venue = venue;
  trace.step_period_s = wc.gait.step_period_s;
  trace.start_pos = walker.start_position();
  trace.start_heading = walker.start_heading();
  while (!walker.done()) trace.frames.push_back(walker.step(true));
  sim::write_trace(trace, out);
  std::printf("recorded %zu frames (%.0f m walk) to %s\n",
              trace.frames.size(),
              d.place->walkways()[walkway].line.length(), out.c_str());
  return 0;
}

struct ReplayOptions {
  bool cold_start{false};
  std::string trace_out;  ///< Empty: no JSONL tracing.
  bool metrics{false};
};

/// One replay epoch -> trace event (the recorded trace carries truth, so
/// per-scheme errors and the oracle pick are filled in).
obs::TraceEvent make_trace_event(const core::Uniloc& uniloc,
                                 const core::EpochDecision& dec,
                                 const sim::SensorFrame& frame,
                                 std::uint64_t epoch, double t,
                                 bool gps_was_enabled) {
  obs::TraceEvent ev;
  ev.epoch = epoch;
  ev.t = t;
  ev.indoor = dec.indoor;
  ev.tau = dec.tau;
  ev.uniloc1_choice = dec.selected;
  ev.gps_was_enabled = gps_was_enabled;
  ev.gps_enable_next = dec.gps_enable_next;
  ev.uniloc1_x = dec.uniloc1.x;
  ev.uniloc1_y = dec.uniloc1.y;
  ev.uniloc2_x = dec.uniloc2.x;
  ev.uniloc2_y = dec.uniloc2.y;
  ev.has_truth = true;
  ev.truth_x = frame.truth_pos.x;
  ev.truth_y = frame.truth_pos.y;
  ev.uniloc1_err = geo::distance(dec.uniloc1, frame.truth_pos);
  ev.uniloc2_err = geo::distance(dec.uniloc2, frame.truth_pos);
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < dec.outputs.size(); ++i) {
    obs::SchemeTrace st;
    st.name = uniloc.scheme(i).name();
    st.available = dec.outputs[i].available;
    st.confidence = dec.confidence[i];
    st.weight = dec.weight[i];
    if (st.available) {
      st.predicted_mu = dec.predicted_error[i].mean;
      st.predicted_sigma = dec.predicted_error[i].sd;
      st.error_m = geo::distance(dec.outputs[i].estimate, frame.truth_pos);
      if (st.error_m < best) {
        best = st.error_m;
        ev.oracle_choice = static_cast<int>(i);
      }
    }
    ev.schemes.push_back(std::move(st));
  }
  return ev;
}

int cmd_replay(const std::string& venue, const std::string& path,
               const ReplayOptions& ropts) {
  const sim::Trace trace = sim::read_trace(path);
  if (trace.venue != venue) {
    std::fprintf(stderr, "warning: trace was recorded in '%s'\n",
                 trace.venue.c_str());
  }
  // Open the trace output first so a bad path fails before the slow
  // model training.
  std::unique_ptr<obs::JsonlTraceSink> sink;
  if (!ropts.trace_out.empty()) {
    sink = std::make_unique<obs::JsonlTraceSink>(ropts.trace_out);
  }
  std::printf("training error models...\n");
  const core::TrainedModels models = core::train_standard_models(42, 300);
  core::Deployment d = core::make_deployment(
      venue_by_name(venue, 42), core::DeploymentOptions{.seed = 42});
  core::Uniloc uniloc = core::make_uniloc(d, models);

  obs::MetricsRegistry registry;
  if (ropts.metrics) {
    uniloc.attach_metrics(&registry);
    if (d.wifi_db) d.wifi_db->attach_metrics(&registry, "fpdb.wifi");
    if (d.cell_db) d.cell_db->attach_metrics(&registry, "fpdb.cell");
  }
  std::size_t first_frame = 0;
  if (ropts.cold_start) {
    core::ColdStartLocator locator(d.wifi_db.get());
    std::optional<schemes::StartCondition> start;
    while (first_frame < trace.frames.size() && !start.has_value()) {
      start = locator.observe(trace.frames[first_frame++]);
    }
    if (!start.has_value()) {
      std::fprintf(stderr, "cold start failed: no usable WiFi scans\n");
      return 1;
    }
    std::printf("cold start after %zu frames: (%.1f, %.1f), true start "
                "(%.1f, %.1f) -> %.1f m off\n",
                first_frame, start->pos.x, start->pos.y, trace.start_pos.x,
                trace.start_pos.y,
                geo::distance(start->pos, trace.start_pos));
    uniloc.reset(*start);
  } else {
    uniloc.reset({trace.start_pos, trace.start_heading});
  }

  std::vector<double> u1, u2;
  for (std::size_t i = first_frame; i < trace.frames.size(); ++i) {
    const bool gps_was_enabled = uniloc.gps_enabled();
    const core::EpochDecision dec = uniloc.update(trace.frames[i]);
    u1.push_back(geo::distance(dec.uniloc1, trace.frames[i].truth_pos));
    u2.push_back(geo::distance(dec.uniloc2, trace.frames[i].truth_pos));
    if (sink) {
      sink->on_epoch(make_trace_event(
          uniloc, dec, trace.frames[i], u1.size() - 1,
          static_cast<double>(i) * trace.step_period_s, gps_was_enabled));
    }
  }
  std::printf("replayed %zu frames: UniLoc1 mean %.2f m (p90 %.2f), "
              "UniLoc2 mean %.2f m (p90 %.2f)\n",
              u1.size(), stats::mean(u1), stats::percentile(u1, 90.0),
              stats::mean(u2), stats::percentile(u2, 90.0));
  if (sink) {
    sink->flush();
    std::printf("wrote %zu trace events to %s\n", sink->events_written(),
                ropts.trace_out.c_str());
  }
  if (ropts.metrics) {
    std::printf("\nper-stage metrics:\n%s",
                registry.to_table().to_string().c_str());
  }
  return 0;
}

struct ServeSimOptions {
  std::string venue{"campus"};
  std::size_t walkers{8};
  int workers{2};
  /// 1 = one LocalizationServer (the classic path). >1 = a ShardRouter
  /// over this many in-process shards, each with its own `workers`-thread
  /// pool, rebalanced once per round.
  std::size_t shards{1};
  std::size_t epochs{50};  ///< Per walker; 0 = full paths.
  std::uint64_t seed{2024};
  std::string faults;  ///< Empty: perfect wire.
  /// Empty: no checkpointing. Otherwise the server persists a wave
  /// chain into <dir> (quantized keyframe + delta waves, published
  /// atomically by an async group committer), restores from any chain
  /// already there at startup, and flushes a final wave when the run
  /// drains.
  std::string checkpoint_dir;
  bool metrics{false};
  /// Query the server's kStatus admin frame when the run drains and
  /// print both the JSON and the Prometheus renderings.
  bool statusz{false};
  std::string trace_spans;  ///< Empty: no span tracing. Else JSONL path.
  std::string flight_out;   ///< Empty: no flight recorder. Else JSONL path.
};

/// Parse a `--faults` spec ("drop=0.02,delay_ms=50,blackout=10:20,...")
/// into a FaultPlan. Throws std::runtime_error on unknown keys.
fault::FaultPlan parse_fault_plan(const std::string& spec,
                                  std::uint64_t default_seed) {
  fault::FaultRates rates;
  std::uint64_t seed = default_seed;
  std::vector<std::pair<std::size_t, std::size_t>> blackouts;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("--faults item needs key=value: " + item);
    }
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    if (key == "drop") {
      rates.drop = std::stod(val);
    } else if (key == "dup" || key == "duplicate") {
      rates.duplicate = std::stod(val);
    } else if (key == "reorder") {
      rates.reorder = std::stod(val);
    } else if (key == "corrupt") {
      rates.corrupt = std::stod(val);
    } else if (key == "delay_ms") {
      rates.base_delay_us =
          static_cast<std::uint64_t>(std::stod(val) * 1000.0);
    } else if (key == "jitter_ms") {
      rates.jitter_delay_us =
          static_cast<std::uint64_t>(std::stod(val) * 1000.0);
    } else if (key == "seed") {
      seed = std::stoull(val);
    } else if (key == "blackout") {
      const std::size_t colon = val.find(':');
      if (colon == std::string::npos) {
        throw std::runtime_error("blackout needs from:to, got " + val);
      }
      blackouts.emplace_back(std::stoul(val.substr(0, colon)),
                             std::stoul(val.substr(colon + 1)));
    } else {
      throw std::runtime_error("unknown --faults key: " + key);
    }
  }
  fault::FaultPlan plan(seed, rates);
  for (const auto& [from, to] : blackouts) plan.add_blackout(from, to);
  return plan;
}

int cmd_serve_sim(const ServeSimOptions& sopts) {
  std::printf("training error models...\n");
  const core::TrainedModels models = core::train_standard_models(42, 300);
  core::Deployment d = core::make_deployment(
      venue_by_name(sopts.venue, 42), core::DeploymentOptions{.seed = 42});

  obs::MetricsRegistry registry;
  svc::ServerConfig cfg;
  cfg.workers = sopts.workers;
  // A compressed stand-in for the per-fix WLAN transmission time the
  // paper measures (Table V); workers overlap these waits.
  cfg.simulated_network = std::chrono::microseconds(5000);

  // Observability sidecars: span tracing to JSONL (feed the file to
  // scripts/trace2chrome.py), a per-session flight recorder dumped when
  // the run drains, and an SLO monitor rendered by the status dumps.
  std::unique_ptr<obs::JsonlSpanSink> span_sink;
  std::unique_ptr<obs::SpanTracer> tracer;
  if (!sopts.trace_spans.empty()) {
    span_sink = std::make_unique<obs::JsonlSpanSink>(sopts.trace_spans);
    tracer = std::make_unique<obs::SpanTracer>(span_sink.get());
    cfg.tracer = tracer.get();
  }
  std::unique_ptr<obs::FlightRecorder> flight;
  if (!sopts.flight_out.empty()) {
    flight = std::make_unique<obs::FlightRecorder>();
    cfg.flight = flight.get();
  }
  obs::SloMonitor slo({}, &registry);
  cfg.slo = &slo;
  const bool sharded = sopts.shards > 1;
  // The committer outlives the server (declared first): the server's
  // final wave may still sit in its queue when the server destructs.
  std::unique_ptr<svc::GroupCommitter> committer;
  if (!sopts.checkpoint_dir.empty() && !sharded) {
    committer = std::make_unique<svc::GroupCommitter>();
    cfg.checkpoint_period_us = 1'000'000;  // wall-clock second
    cfg.checkpoint_dir = sopts.checkpoint_dir;
    cfg.snapshot_quantize = true;  // v2 waves: the durable-chain codec
    cfg.committer = committer.get();
  }
  svc::UnilocFactory factory = [&](std::uint64_t sid) {
    return std::make_unique<core::Uniloc>(
        core::make_uniloc(d, models, {}, false, 7 + sid));
  };
  std::unique_ptr<svc::LocalizationServer> server;
  std::unique_ptr<shard::ShardRouter> router;
  svc::Endpoint* endpoint = nullptr;
  if (sharded) {
    if (!sopts.checkpoint_dir.empty()) {
      std::printf("note: --checkpoint-dir is per-server; the fleet keeps "
                  "in-RAM shard checkpoints (checkpoint_all) instead\n");
    }
    shard::RouterConfig rc;
    rc.shards = sopts.shards;
    rc.server = cfg;
    router = std::make_unique<shard::ShardRouter>(std::move(rc), factory,
                                                  &registry);
    endpoint = router.get();
  } else {
    server = std::make_unique<svc::LocalizationServer>(cfg, factory,
                                                       &registry);
    endpoint = server.get();
    if (!sopts.checkpoint_dir.empty()) {
      // Crash recovery: resume whatever chain a previous run left here.
      const svc::LocalizationServer::ChainRestoreResult r =
          server->restore_chain();
      if (r.ok) {
        std::printf("restored %zu sessions from the wave chain in %s "
                    "(seq %llu, %zu deltas, %zu waves rejected)\n",
                    server->live_sessions(), sopts.checkpoint_dir.c_str(),
                    static_cast<unsigned long long>(r.seq),
                    r.deltas_applied, r.waves_rejected);
      }
    }
  }

  if (sharded) {
    std::printf("serving %zu walkers on '%s' across %zu shards x %d "
                "workers%s...\n",
                sopts.walkers, sopts.venue.c_str(), sopts.shards,
                sopts.workers, sopts.faults.empty() ? "" : " (faulty wire)");
  } else {
    std::printf("serving %zu walkers on '%s' with %d workers%s...\n",
                sopts.walkers, sopts.venue.c_str(), sopts.workers,
                sopts.faults.empty() ? "" : " (faulty wire)");
  }
  svc::LoadGenConfig lg;
  lg.walkers = sopts.walkers;
  lg.max_epochs_per_walker = sopts.epochs;
  lg.seed = sopts.seed;
  lg.tracer = tracer.get();
  lg.flight = flight.get();
  std::optional<fault::FaultPlan> plan;
  if (!sopts.faults.empty()) {
    plan = parse_fault_plan(sopts.faults, sopts.seed);
    lg.make_link = [&plan, &registry, &tracer](svc::Endpoint& s,
                                               std::uint64_t sid) {
      return std::make_unique<fault::FaultyLink>(
          std::make_unique<svc::DirectLink>(&s), &*plan, sid, &registry,
          tracer.get());
    };
  }
  if (sharded) {
    // Fleet housekeeping between rounds: keep every shard's recovery
    // checkpoint fresh and let the rebalancer chase hot shards.
    lg.on_round = [&router](std::size_t) {
      router->checkpoint_all();
      router->rebalance();
    };
  }
  const svc::LoadReport report = svc::run_load(*endpoint, d, lg, &registry);
  if (!sopts.checkpoint_dir.empty() && !sharded) {
    // One final wave so the chain reflects the drained end state, then
    // drain the committer before reporting.
    server->checkpoint_wave_now();
    committer->flush();
    const svc::LocalizationServer::CheckpointStats cs =
        server->checkpoint_stats();
    std::printf("wrote %llu waves (%llu keyframes, %llu delta records, "
                "%llu publish failures) to %s\n",
                static_cast<unsigned long long>(cs.waves),
                static_cast<unsigned long long>(cs.keyframes),
                static_cast<unsigned long long>(cs.delta_records),
                static_cast<unsigned long long>(cs.publish_failures),
                sopts.checkpoint_dir.c_str());
  }
  if (sopts.statusz) {
    // Live introspection through the wire protocol itself: the same
    // kStatus frame an operator's admin socket would submit. On a fleet
    // the frame's session id names the shard, so each shard dumps its
    // own health.
    const std::size_t targets = sharded ? sopts.shards : 1;
    for (std::size_t k = 0; k < targets; ++k) {
      for (const svc::StatusFormat fmt :
           {svc::StatusFormat::kJson, svc::StatusFormat::kPrometheus}) {
        svc::Frame req;
        req.type = svc::FrameType::kStatus;
        req.session_id = k;
        req.payload = svc::encode_status_request(fmt);
        const std::vector<std::uint8_t> bytes =
            endpoint->submit(svc::encode_frame(req)).get();
        const svc::DecodeResult decoded = svc::decode_frame(bytes);
        if (decoded.frame.has_value() &&
            decoded.frame->type == svc::FrameType::kReply) {
          if (sharded) {
            std::printf("\n--- statusz shard %zu (%s) ---\n%.*s\n", k,
                        fmt == svc::StatusFormat::kJson ? "json"
                                                        : "prometheus",
                        static_cast<int>(decoded.frame->payload.size()),
                        reinterpret_cast<const char*>(
                            decoded.frame->payload.data()));
          } else {
            std::printf(
                "\n--- statusz (%s) ---\n%.*s\n",
                fmt == svc::StatusFormat::kJson ? "json" : "prometheus",
                static_cast<int>(decoded.frame->payload.size()),
                reinterpret_cast<const char*>(decoded.frame->payload.data()));
          }
        } else {
          std::fprintf(stderr, "statusz query failed\n");
        }
      }
    }
  }
  if (server != nullptr) server->shutdown();
  if (router != nullptr) router->shutdown();
  if (flight != nullptr) {
    if (flight->dump_to_file(sopts.flight_out)) {
      std::printf("wrote flight recorder (%llu events, %zu sessions) to "
                  "%s\n",
                  static_cast<unsigned long long>(flight->total_recorded()),
                  flight->session_ids().size(), sopts.flight_out.c_str());
    } else {
      std::fprintf(stderr, "warning: flight dump to %s failed\n",
                   sopts.flight_out.c_str());
    }
  }
  if (tracer != nullptr) {
    tracer->flush();
    std::printf("wrote %zu spans to %s (opened %llu, closed %llu)\n",
                span_sink->spans_written(), sopts.trace_spans.c_str(),
                static_cast<unsigned long long>(tracer->spans_opened()),
                static_cast<unsigned long long>(tracer->spans_closed()));
  }

  const bool chaos = plan.has_value();
  io::Table t = chaos
                    ? io::Table({"session", "walkway", "epochs", "local",
                                 "retries", "mean err (m)", "rejected"})
                    : io::Table({"session", "walkway", "epochs",
                                 "mean err (m)", "rejected"});
  for (const svc::WalkerOutcome& w : report.walkers) {
    if (chaos) {
      t.add_row({std::to_string(w.session_id), std::to_string(w.walkway),
                 std::to_string(w.epochs_accepted),
                 std::to_string(w.local_epochs), std::to_string(w.retries),
                 io::Table::num(w.mean_error_m),
                 std::to_string(w.backpressure + w.errors)});
    } else {
      t.add_row({std::to_string(w.session_id), std::to_string(w.walkway),
                 std::to_string(w.epochs_accepted),
                 io::Table::num(w.mean_error_m),
                 std::to_string(w.backpressure + w.errors)});
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("%zu epochs in %.2f s: %.1f epochs/s, latency p50 %.1f ms "
              "p95 %.1f ms\n",
              report.total_epochs, report.wall_s, report.throughput_eps(),
              stats::percentile(report.latencies_us, 50.0) / 1000.0,
              stats::percentile(report.latencies_us, 95.0) / 1000.0);
  std::printf("wire traffic: uplink %.1f B/epoch, downlink %.1f B/epoch\n",
              report.traffic.uplink_bytes_per_epoch(),
              report.traffic.downlink_bytes_per_epoch());
  if (sharded) {
    std::printf("fleet: %llu migrations (%llu failed), %llu rebalance "
                "passes, %llu frames buffered mid-migration\n",
                static_cast<unsigned long long>(
                    registry.counter("shard.migrations").value()),
                static_cast<unsigned long long>(
                    registry.counter("shard.migration_failures").value()),
                static_cast<unsigned long long>(
                    registry.counter("shard.rebalances").value()),
                static_cast<unsigned long long>(
                    registry.counter("shard.buffered_frames").value()));
  }
  if (chaos) {
    std::printf("degradation: %zu retries, %zu timeouts, %zu local epochs, "
                "%zu B retransmitted\n",
                report.retries_total, report.timeouts_total,
                report.local_epochs_total,
                report.traffic.retransmitted_bytes);
  }
  if (sopts.metrics) {
    std::printf("\nservice metrics:\n%s",
                registry.to_table().to_string().c_str());
  }
  // With faults on, recovered errors (e.g. corrupted frames the server
  // rejected and the phone retransmitted) are the expected outcome.
  return (chaos || report.error_total == 0) ? 0 : 1;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  uniloc_cli venues\n"
               "  uniloc_cli record <venue> <walkway> <seed> <out.trace>\n"
               "  uniloc_cli replay <venue> <trace> [--cold-start]\n"
               "                    [--trace <out.jsonl>] [--metrics]\n"
               "  uniloc_cli serve-sim [--venue <name>] [--walkers N]\n"
               "                    [--workers W] [--shards K] [--epochs E]\n"
               "                    [--seed S] [--faults <plan>]\n"
               "                    [--checkpoint-dir <dir>]\n"
               "                    [--metrics] [--statusz]\n"
               "                    [--trace-spans <out.jsonl>]\n"
               "                    [--flight <out.jsonl>]\n"
               "      <plan>: drop=P,dup=P,reorder=P,corrupt=P,delay_ms=D,\n"
               "              jitter_ms=J,seed=S,blackout=a:b[,...]\n"
               "      --shards: K > 1 serves the fleet path -- a\n"
               "              ShardRouter over K in-process shards\n"
               "              (consistent-hash placement, per-round\n"
               "              checkpoints + rebalancing); statusz then\n"
               "              dumps every shard\n"
               "      --checkpoint-dir: persist a delta wave chain into\n"
               "              <dir> every second (quantized keyframe +\n"
               "              delta waves, async group commit), restore\n"
               "              any chain found there at startup, and flush\n"
               "              a final wave when the run drains\n"
               "      --statusz: print the server's kStatus dump (JSON and\n"
               "              Prometheus text) when the run drains\n"
               "      --trace-spans: stream causal spans as JSONL (convert\n"
               "              with scripts/trace2chrome.py)\n"
               "      --flight: dump the per-session flight recorder as\n"
               "              JSONL when the run drains\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    if (cmd == "venues") return cmd_venues();
    if (cmd == "record" && argc == 6) {
      return cmd_record(argv[2], std::stoul(argv[3]), std::stoull(argv[4]),
                        argv[5]);
    }
    if (cmd == "replay" && argc >= 4) {
      ReplayOptions ropts;
      for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--cold-start") {
          ropts.cold_start = true;
        } else if (arg == "--trace" && i + 1 < argc) {
          ropts.trace_out = argv[++i];
        } else if (arg == "--metrics") {
          ropts.metrics = true;
        } else {
          return usage();
        }
      }
      return cmd_replay(argv[2], argv[3], ropts);
    }
    if (cmd == "serve-sim") {
      ServeSimOptions sopts;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--venue" && i + 1 < argc) {
          sopts.venue = argv[++i];
        } else if (arg == "--walkers" && i + 1 < argc) {
          sopts.walkers = std::stoul(argv[++i]);
        } else if (arg == "--workers" && i + 1 < argc) {
          sopts.workers = std::stoi(argv[++i]);
        } else if (arg == "--shards" && i + 1 < argc) {
          sopts.shards = std::stoul(argv[++i]);
          if (sopts.shards == 0) sopts.shards = 1;
        } else if (arg == "--epochs" && i + 1 < argc) {
          sopts.epochs = std::stoul(argv[++i]);
        } else if (arg == "--seed" && i + 1 < argc) {
          sopts.seed = std::stoull(argv[++i]);
        } else if (arg == "--faults" && i + 1 < argc) {
          sopts.faults = argv[++i];
        } else if (arg == "--checkpoint-dir" && i + 1 < argc) {
          sopts.checkpoint_dir = argv[++i];
        } else if (arg == "--metrics") {
          sopts.metrics = true;
        } else if (arg == "--statusz") {
          sopts.statusz = true;
        } else if (arg == "--trace-spans" && i + 1 < argc) {
          sopts.trace_spans = argv[++i];
        } else if (arg == "--flight" && i + 1 < argc) {
          sopts.flight_out = argv[++i];
        } else {
          return usage();
        }
      }
      return cmd_serve_sim(sopts);
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
