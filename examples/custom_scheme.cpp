// Integrating a new localization scheme -- the paper's "general" design
// feature: "Any localization scheme can be easily integrated into UniLoc".
//
// We invent a scheme UniLoc has never seen: magnetic-fingerprint matching
// along the walkway (FOLLOWME-style [18], using the ambient magnetic
// fluctuation as a 1-D signature). Integration cost is exactly:
//   1. implement LocalizationScheme (update() -> estimate + posterior),
//   2. collect (features, error) tuples once and fit its error model,
//   3. uniloc.add_scheme(std::move(scheme), model).
// No UniLoc internals are touched.
#include <cstdio>

#include "core/runner.h"
#include "core/trainer.h"
#include "stats/descriptive.h"

using namespace uniloc;

namespace {

/// Toy magnetic matcher: remembers the ambient magnetic fluctuation
/// profile along the walkway (collected offline) and matches the recent
/// window of online readings against it. Coarse, drifts in open space,
/// quite usable in steel-framed corridors -- a genuinely different error
/// profile from the standard five schemes.
class MagneticScheme final : public schemes::LocalizationScheme {
 public:
  MagneticScheme(const sim::Place* place, std::size_t walkway,
                 std::uint64_t seed)
      : place_(place), walkway_(walkway) {
    // Offline signature: magnetic sd sampled every meter along the path.
    sim::AmbientSimulator ambient(sim::AmbientParams{}, seed);
    const sim::Walkway& w = place_->walkways()[walkway_];
    for (double s = 0.0; s <= w.line.length(); s += 1.0) {
      profile_.push_back(
          ambient.sample(w.segment_at(s).type).mag_field_sd_ut);
      arclen_.push_back(s);
    }
  }

  std::string name() const override { return "Magnetic"; }
  schemes::SchemeFamily family() const override {
    return schemes::SchemeFamily::kOther;
  }

  void reset(const schemes::StartCondition& start) override {
    window_.clear();
    const geo::Projection proj =
        place_->walkways()[walkway_].line.project(start.pos);
    cursor_ = proj.arclen;
  }

  schemes::SchemeOutput update(const sim::SensorFrame& frame) override {
    window_.push_back(frame.ambient.mag_field_sd_ut);
    if (window_.size() > kWindow) window_.erase(window_.begin());
    schemes::SchemeOutput out;
    if (window_.size() < kWindow) return out;  // warming up

    // Advance a cursor by the nominal step and refine it by matching the
    // recent magnetic window against the offline profile near the cursor.
    cursor_ += 0.7;
    double best_s = cursor_, best_score = 1e18;
    for (double s = cursor_ - 8.0; s <= cursor_ + 8.0; s += 1.0) {
      double score = 0.0;
      for (std::size_t k = 0; k < kWindow; ++k) {
        const double at = s - static_cast<double>(kWindow - 1 - k) * 0.7;
        score += std::abs(profile_at(at) - window_[k]);
      }
      if (score < best_score) {
        best_score = score;
        best_s = s;
      }
    }
    cursor_ = best_s;
    const sim::Walkway& w = place_->walkways()[walkway_];
    out.available = true;
    out.estimate = w.line.point_at(cursor_);
    out.posterior = schemes::Posterior::gaussian(out.estimate, 6.0, 2);
    return out;
  }

 private:
  static constexpr std::size_t kWindow = 8;

  double profile_at(double s) const {
    if (profile_.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        std::clamp(s, 0.0, static_cast<double>(profile_.size() - 1)));
    return profile_[idx];
  }

  const sim::Place* place_;
  std::size_t walkway_;
  std::vector<double> profile_;
  std::vector<double> arclen_;
  std::vector<double> window_;
  double cursor_{0.0};
};

/// Step 2 of integration: train the new scheme's error model with the
/// generic 2-step workflow (Sec. III-A) -- black-box execution, record
/// (features, error), fit.
core::ErrorModel train_magnetic_model(const core::Deployment& d,
                                      std::size_t walkway) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    MagneticScheme scheme(d.place.get(), walkway, 77);
    sim::WalkConfig wc;
    wc.seed = seed;
    sim::Walker walker(d.place.get(), d.radio.get(), walkway, wc);
    scheme.reset({walker.start_position(), walker.start_heading()});
    while (!walker.done()) {
      const sim::SensorFrame f = walker.step(false);
      const schemes::SchemeOutput out = scheme.update(f);
      if (!out.available) continue;
      core::FeatureContext ctx;  // kOther features need no infrastructure
      x.push_back(core::extract_features(schemes::SchemeFamily::kOther, f,
                                         out, ctx));
      y.push_back(geo::distance(out.estimate, f.truth_pos));
    }
  }
  return core::ErrorModel::fitted_single(stats::fit_ols(x, y, {"spread"}));
}

}  // namespace

int main() {
  const core::TrainedModels models = core::train_standard_models(42, 300);
  core::Deployment campus = core::make_deployment(sim::campus());
  const std::size_t path = 0;

  // Baseline: the standard five schemes.
  core::Uniloc five = core::make_uniloc(campus, models);
  core::RunOptions opts;
  opts.walk.seed = 555;
  const core::RunResult base = core::run_walk(five, campus, path, opts);

  // Step 3 of integration: one add_scheme() call.
  core::Uniloc six = core::make_uniloc(campus, models);
  six.add_scheme(std::make_unique<MagneticScheme>(campus.place.get(), path,
                                                  77),
                 train_magnetic_model(campus, path));
  const core::RunResult extended = core::run_walk(six, campus, path, opts);

  std::printf("integrating a 6th scheme (magnetic matching) into UniLoc:\n\n");
  std::printf("  schemes registered: %zu -> %zu\n", five.num_schemes(),
              six.num_schemes());
  std::printf("  UniLoc2 mean error: %.2f m (5 schemes) -> %.2f m "
              "(6 schemes)\n",
              stats::mean(base.uniloc2_errors()),
              stats::mean(extended.uniloc2_errors()));
  const std::vector<double> usage = extended.uniloc1_usage();
  std::printf("  the new scheme was UniLoc1's choice at %.1f%% of "
              "locations\n\n",
              100.0 * usage.back());
  std::printf("integration touched zero lines of framework code: one class, "
              "one model fit, one add_scheme() call.\n");
  return 0;
}
