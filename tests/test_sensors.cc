#include <gtest/gtest.h>

#include <cmath>

#include "sim/ambient_sim.h"
#include "sim/device.h"
#include "sim/gps_sim.h"
#include "sim/imu_sim.h"

namespace uniloc::sim {
namespace {

// ------------------------------------------------------------------- GPS

class GpsTest : public ::testing::Test {
 protected:
  geo::LocalFrame frame_{geo::LatLon{1.35, 103.68}};
  GpsSimulator gps_{frame_};
};

TEST_F(GpsTest, NoFixWithoutSky) {
  stats::Rng rng(1);
  EXPECT_FALSE(gps_.sample({0.0, 0.0}, 0.0, rng).has_value());
  EXPECT_FALSE(gps_.sample({0.0, 0.0}, 0.1, rng).has_value());
}

TEST_F(GpsTest, OpenSkyFixStatistics) {
  stats::Rng rng(2);
  std::vector<double> errors;
  int sats_sum = 0;
  int n_fix = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto fix = gps_.sample({100.0, 50.0}, 1.0, rng);
    if (!fix.has_value()) continue;
    ++n_fix;
    sats_sum += fix->num_satellites;
    errors.push_back(
        geo::distance(frame_.to_local(fix->pos), {100.0, 50.0}));
  }
  ASSERT_GT(n_fix, 1800);  // open sky: fixes nearly always
  double mean_err = 0.0;
  for (double e : errors) mean_err += e;
  mean_err /= static_cast<double>(errors.size());
  // Paper: error Gaussian(13.5, 9.4) in the open.
  EXPECT_NEAR(mean_err, 13.5, 2.0);
  EXPECT_NEAR(static_cast<double>(sats_sum) / n_fix, 10.9, 1.5);
}

TEST_F(GpsTest, FixRespectsValidityGate) {
  stats::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const auto fix = gps_.sample({0.0, 0.0}, 0.5, rng);
    if (!fix.has_value()) continue;
    EXPECT_GT(fix->num_satellites, 4);   // paper/[28]: > 4 satellites
    EXPECT_LT(fix->hdop, 6.0);           // paper/[28]: HDOP < 6
  }
}

TEST_F(GpsTest, PartialSkyDegradesAccuracy) {
  stats::Rng rng(4);
  auto mean_error = [&](double sky) {
    double sum = 0.0;
    int n = 0;
    for (int i = 0; i < 1500; ++i) {
      const auto fix = gps_.sample({0.0, 0.0}, sky, rng);
      if (!fix.has_value()) continue;
      sum += geo::distance(frame_.to_local(fix->pos), {0.0, 0.0});
      ++n;
    }
    return n > 30 ? sum / n : -1.0;
  };
  const double open = mean_error(1.0);
  const double partial = mean_error(0.45);
  ASSERT_GT(open, 0.0);
  ASSERT_GT(partial, 0.0);
  EXPECT_GT(partial, open);
}

// ------------------------------------------------------------------- IMU

TEST(ImuSim, StepTraceCoversStepPeriod) {
  ImuSimulator imu(ImuParams{}, 1);
  GaitProfile gait;
  const auto trace = imu.step_trace(gait, 0.0, 0.0, true);
  EXPECT_NEAR(static_cast<double>(trace.size()),
              gait.step_period_s * 50.0, 1.5);
  EXPECT_NEAR(imu.clock(), gait.step_period_s, 0.05);
}

TEST(ImuSim, AccelHasStepBump) {
  ImuSimulator imu(ImuParams{}, 2);
  GaitProfile gait;
  gait.trembling = 0.0;
  const auto trace = imu.step_trace(gait, 0.0, 0.0, true);
  double amax = 0.0, amin = 100.0;
  for (const ImuSample& s : trace) {
    amax = std::max(amax, s.accel_mag);
    amin = std::min(amin, s.accel_mag);
  }
  EXPECT_GT(amax, 10.8);  // peak above gravity
  EXPECT_GT(amax - amin, 1.0);
}

TEST(ImuSim, IdleTraceHasNoBump) {
  ImuSimulator imu(ImuParams{}, 3);
  const auto trace = imu.idle_trace(1.0, 0.0, true);
  for (const ImuSample& s : trace) {
    EXPECT_LT(std::fabs(s.accel_mag - 9.81), 1.5);
  }
}

TEST(ImuSim, GyroTracksTurnRate) {
  ImuSimulator imu(ImuParams{}, 4);
  GaitProfile gait;
  const double dheading = 0.5;
  const auto trace = imu.step_trace(gait, dheading, dheading, false);
  double integrated = 0.0;
  for (const ImuSample& s : trace) integrated += s.gyro_z / 50.0;
  EXPECT_NEAR(integrated, dheading, 0.15);
}

TEST(ImuSim, MagHeadingNearTruthOutdoors) {
  ImuSimulator imu(ImuParams{}, 5);
  GaitProfile gait;
  double worst = 0.0;
  for (int i = 0; i < 50; ++i) {
    const auto trace = imu.step_trace(gait, 1.0, 0.0, false);
    for (const ImuSample& s : trace) {
      worst = std::max(worst, std::fabs(geo::angle_diff(s.mag_heading, 1.0)));
    }
  }
  EXPECT_LT(worst, 0.9);
}

TEST(ImuSim, IndoorMagOffsetDriftsMoreThanOutdoor) {
  // Steady-state |offset| should be larger indoors (AR(1) with a larger
  // innovation).
  auto steady_offset = [](bool indoor) {
    ImuSimulator imu(ImuParams{}, 6);
    GaitProfile gait;
    double acc = 0.0;
    for (int i = 0; i < 400; ++i) {
      imu.step_trace(gait, 0.0, 0.0, indoor);
      if (i >= 200) acc += std::fabs(imu.mag_offset());
    }
    return acc / 200.0;
  };
  EXPECT_GT(steady_offset(true), steady_offset(false));
}

// ---------------------------------------------------------------- ambient

TEST(AmbientSim, OutdoorBrighterThanIndoor) {
  AmbientSimulator amb(AmbientParams{}, 1);
  double lux_out = 0.0, lux_in = 0.0;
  for (int i = 0; i < 100; ++i) {
    lux_out += amb.sample(SegmentType::kOpenSpace).light_lux;
    lux_in += amb.sample(SegmentType::kOffice).light_lux;
  }
  EXPECT_GT(lux_out / 100.0, 5.0 * lux_in / 100.0);
}

TEST(AmbientSim, IndoorMagneticFluctuationHigher) {
  AmbientSimulator amb(AmbientParams{}, 2);
  double mag_out = 0.0, mag_in = 0.0;
  for (int i = 0; i < 100; ++i) {
    mag_out += amb.sample(SegmentType::kOpenSpace).mag_field_sd_ut;
    mag_in += amb.sample(SegmentType::kBasement).mag_field_sd_ut;
  }
  EXPECT_GT(mag_in, 2.0 * mag_out);
}

TEST(AmbientSim, ReadingsNonNegative) {
  AmbientSimulator amb(AmbientParams{}, 3);
  for (int i = 0; i < 200; ++i) {
    const AmbientReading r = amb.sample(SegmentType::kCorridor);
    EXPECT_GE(r.light_lux, 0.0);
    EXPECT_GE(r.mag_field_sd_ut, 0.0);
  }
}

// ----------------------------------------------------------------- device

TEST(Device, ReferenceDeviceIsIdentity) {
  const DeviceModel ref = nexus_5x();
  stats::Rng rng(1);
  std::vector<ApReading> scan{{1, -60.0}, {2, -75.0}};
  const auto out = ref.transform(scan, rng);
  EXPECT_DOUBLE_EQ(out[0].rssi_dbm, -60.0);
  EXPECT_DOUBLE_EQ(out[1].rssi_dbm, -75.0);
}

TEST(Device, LgG3AppliesAffineOffset) {
  const DeviceModel lg = lg_g3();
  stats::Rng rng(2);
  std::vector<ApReading> scan{{1, -60.0}};
  const auto out = lg.transform(scan, rng);
  // alpha * -60 + delta, plus small chipset noise.
  const double expected = lg.rssi_alpha * -60.0 + lg.rssi_delta_db;
  EXPECT_NEAR(out[0].rssi_dbm, expected, 4.0 * lg.extra_noise_sd_db);
  EXPECT_LT(out[0].rssi_dbm, -60.0);  // LG reads lower than the Nexus
}

TEST(Device, TransformPreservesIds) {
  const DeviceModel lg = lg_g3();
  stats::Rng rng(3);
  std::vector<ApReading> scan{{7, -50.0}, {9, -80.0}};
  const auto out = lg.transform(scan, rng);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 7);
  EXPECT_EQ(out[1].id, 9);
}

}  // namespace
}  // namespace uniloc::sim
