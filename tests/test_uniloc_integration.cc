// Integration tests: the full train -> deploy -> walk pipeline.
//
// These exercise the paper's headline behaviours end-to-end: error models
// trained in two small venues transfer to the campus; UniLoc tracks or
// beats the best individual scheme; unavailability is tolerated; GPS is
// duty-cycled; the whole pipeline is deterministic under a fixed seed.
#include <gtest/gtest.h>

#include "core/runner.h"
#include "core/trainer.h"
#include "stats/descriptive.h"
#include "testing_util.h"

namespace uniloc::core {
namespace {

/// Train once for the whole test binary (takes ~0.3 s).
const TrainedModels& models() { return testing_util::standard_models(300); }

const Deployment& campus() {
  static Deployment d = make_deployment(sim::campus());
  return d;
}

TEST(Trainer, CollectsRequestedSampleCount) {
  Deployment office = make_deployment(sim::office_place(42),
                                      DeploymentOptions{.seed = 42});
  CollectOptions opts;
  opts.target_samples = 120;
  const TrainingData data = collect_training_data(office, opts);
  EXPECT_EQ(data.num_epochs, 120u);
  EXPECT_TRUE(data.venue_indoor);
  // All four regression families must have rows.
  using SF = schemes::SchemeFamily;
  for (SF f : {SF::kWifiFingerprint, SF::kCellFingerprint, SF::kMotionPdr,
               SF::kFusion}) {
    ASSERT_TRUE(data.by_family.count(f));
    EXPECT_GT(data.by_family.at(f).rows.size(), 50u);
  }
}

TEST(Trainer, OutdoorVenueCollectsGpsErrors) {
  Deployment open = make_deployment(sim::open_space_place(42),
                                    DeploymentOptions{.seed = 43});
  CollectOptions opts;
  opts.target_samples = 120;
  const TrainingData data = collect_training_data(open, opts);
  EXPECT_FALSE(data.venue_indoor);
  EXPECT_GT(data.gps_errors.size(), 30u);
}

TEST(Trainer, ModelsHaveAllFamilies) {
  using SF = schemes::SchemeFamily;
  for (SF f : {SF::kGps, SF::kWifiFingerprint, SF::kCellFingerprint,
               SF::kMotionPdr, SF::kFusion}) {
    EXPECT_NO_THROW(models().for_family(f));
  }
  EXPECT_THROW(models().for_family(SF::kOther), std::out_of_range);
}

TEST(Trainer, LearnedSignsMatchPaper) {
  // Table II qualitative structure: fingerprint density raises error,
  // RSSI-distance deviation lowers it, landmark distance raises it.
  const ErrorModel& wifi =
      models().for_family(schemes::SchemeFamily::kWifiFingerprint);
  EXPECT_GT(wifi.indoor_model().coefficients[1].estimate, 0.0);  // density
  EXPECT_LT(wifi.indoor_model().coefficients[2].estimate, 0.0);  // deviation
  const ErrorModel& motion =
      models().for_family(schemes::SchemeFamily::kMotionPdr);
  EXPECT_GT(motion.indoor_model().coefficients[1].estimate, 0.0);
  EXPECT_GT(motion.outdoor_model().coefficients[1].estimate, 0.0);
}

TEST(Trainer, GpsModelMatchesSimulatedReceiver) {
  const stats::Gaussian g =
      models().for_family(schemes::SchemeFamily::kGps).predict({}, false);
  EXPECT_NEAR(g.mean, 13.5, 3.5);  // paper: 13.5 m
  EXPECT_NEAR(g.sd, 9.4, 4.0);     // paper: 9.4 m
}

TEST(Trainer, FusionOutdoorAliasesMotionOutdoor) {
  const ErrorModel& fusion =
      models().for_family(schemes::SchemeFamily::kFusion);
  const ErrorModel& motion =
      models().for_family(schemes::SchemeFamily::kMotionPdr);
  const std::vector<double> x{20.0, 10.0, 3.0};
  EXPECT_DOUBLE_EQ(fusion.predict(x, false).mean,
                   motion.predict(x, false).mean);
}

TEST(UnilocIntegration, FiveSchemesRegistered) {
  Uniloc u = make_uniloc(campus(), models());
  EXPECT_EQ(u.num_schemes(), 5u);
  const auto names = u.scheme_names();
  EXPECT_EQ(names[0], "GPS");
  EXPECT_EQ(names[4], "Fusion");
}

TEST(UnilocIntegration, WalkProducesFiniteEstimates) {
  Uniloc u = make_uniloc(campus(), models());
  RunOptions opts;
  opts.walk.seed = 99;
  const RunResult run = run_walk(u, campus(), 0, opts);
  ASSERT_GT(run.epochs.size(), 300u);
  for (const EpochRecord& e : run.epochs) {
    EXPECT_TRUE(std::isfinite(e.uniloc1_err));
    EXPECT_TRUE(std::isfinite(e.uniloc2_err));
    EXPECT_LT(e.uniloc2_err, 500.0);
  }
}

TEST(UnilocIntegration, WeightsFormDistribution) {
  Uniloc u = make_uniloc(campus(), models());
  RunOptions opts;
  opts.walk.seed = 100;
  const RunResult run = run_walk(u, campus(), 0, opts);
  for (const EpochRecord& e : run.epochs) {
    double sum = 0.0;
    for (double w : e.weight) {
      EXPECT_GE(w, 0.0);
      sum += w;
    }
    EXPECT_TRUE(std::abs(sum - 1.0) < 1e-9 || sum == 0.0);
    for (double c : e.confidence) {
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 1.0);
    }
  }
}

TEST(UnilocIntegration, UnavailableSchemesGetZeroWeight) {
  Uniloc u = make_uniloc(campus(), models());
  RunOptions opts;
  opts.walk.seed = 101;
  const RunResult run = run_walk(u, campus(), 0, opts);
  for (const EpochRecord& e : run.epochs) {
    for (std::size_t i = 0; i < e.scheme_available.size(); ++i) {
      if (!e.scheme_available[i]) {
        EXPECT_DOUBLE_EQ(e.weight[i], 0.0);
        EXPECT_DOUBLE_EQ(e.confidence[i], 0.0);
      }
    }
  }
}

TEST(UnilocIntegration, BeatsWorstAndTracksBestScheme) {
  // Averaged over three walk seeds: a single seed's noise draw swings
  // the per-scheme means by tens of percent, so a one-seed bound
  // re-trips every time the (deliberately versioned, DESIGN.md section
  // 16) noise stream changes even though the aggregate claim holds.
  double u2_sum = 0.0, best_sum = 0.0, worst_sum = 0.0;
  for (const std::uint64_t seed : {102u, 202u, 302u}) {
    Uniloc u = make_uniloc(campus(), models());
    RunOptions opts;
    opts.walk.seed = seed;
    const RunResult run = run_walk(u, campus(), 0, opts);
    double best = 1e18, worst = -1.0;
    for (std::size_t i = 0; i < run.scheme_names.size(); ++i) {
      const auto errs = run.scheme_errors(i);
      if (errs.size() < run.epochs.size() / 2) continue;
      best = std::min(best, stats::mean(errs));
      worst = std::max(worst, stats::mean(errs));
    }
    u2_sum += stats::mean(run.uniloc2_errors());
    best_sum += best;
    worst_sum += worst;
  }
  EXPECT_LT(u2_sum, worst_sum);
  EXPECT_LT(u2_sum, best_sum * 1.6);  // at worst modestly above the best
}

TEST(UnilocIntegration, OracleLowerBoundsSelection) {
  Uniloc u = make_uniloc(campus(), models());
  RunOptions opts;
  opts.walk.seed = 103;
  const RunResult run = run_walk(u, campus(), 0, opts);
  for (const EpochRecord& e : run.epochs) {
    if (e.oracle_choice < 0 || e.uniloc1_choice < 0) continue;
    EXPECT_LE(e.oracle_err, e.uniloc1_err + 1e-9);
  }
}

TEST(UnilocIntegration, GpsDutyCycleKeepsGpsOffIndoors) {
  Uniloc u = make_uniloc(campus(), models());
  RunOptions opts;
  opts.walk.seed = 104;
  const RunResult run = run_walk(u, campus(), 0, opts);
  int indoor_on = 0, outdoor_on = 0;
  for (const EpochRecord& e : run.epochs) {
    // Skip the warm-up epoch (controller has no verdict yet).
    if (e.t < 1.0) continue;
    if (e.indoor_truth && e.gps_was_enabled) ++indoor_on;
    if (!e.indoor_truth && e.gps_was_enabled) ++outdoor_on;
  }
  EXPECT_LE(indoor_on, 8);   // a few misdetections allowed
  EXPECT_GT(outdoor_on, 5);  // GPS does get its turn outdoors
}

TEST(UnilocIntegration, DeterministicUnderSeed) {
  RunOptions opts;
  opts.walk.seed = 105;
  Uniloc u1 = make_uniloc(campus(), models(), {}, false, 7);
  Uniloc u2 = make_uniloc(campus(), models(), {}, false, 7);
  const RunResult a = run_walk(u1, campus(), 0, opts);
  const RunResult b = run_walk(u2, campus(), 0, opts);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.epochs[i].uniloc2_err, b.epochs[i].uniloc2_err);
  }
}

TEST(UnilocIntegration, IoDetectorMostlyCorrect) {
  Uniloc u = make_uniloc(campus(), models());
  RunOptions opts;
  opts.walk.seed = 106;
  const RunResult run = run_walk(u, campus(), 0, opts);
  int correct = 0;
  for (const EpochRecord& e : run.epochs) {
    if (e.indoor_detected == e.indoor_truth) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) /
                static_cast<double>(run.epochs.size()),
            0.9);
}

TEST(UnilocIntegration, RecordEverySubsamples) {
  Uniloc u = make_uniloc(campus(), models());
  RunOptions every;
  every.walk.seed = 107;
  RunOptions fifth = every;
  fifth.record_every = 5;
  const RunResult all = run_walk(u, campus(), 0, every);
  Uniloc u2 = make_uniloc(campus(), models());
  const RunResult sub = run_walk(u2, campus(), 0, fifth);
  EXPECT_NEAR(static_cast<double>(all.epochs.size()) / 5.0,
              static_cast<double>(sub.epochs.size()), 2.0);
}

TEST(UnilocIntegration, UsageFractionsSumToOne) {
  Uniloc u = make_uniloc(campus(), models());
  RunOptions opts;
  opts.walk.seed = 108;
  const RunResult run = run_walk(u, campus(), 0, opts);
  double sum = 0.0;
  for (double f : run.uniloc1_usage()) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  sum = 0.0;
  for (double f : run.oracle_usage()) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(UnilocIntegration, AppendMergesRuns) {
  Uniloc u = make_uniloc(campus(), models());
  RunOptions opts;
  opts.walk.seed = 109;
  RunResult a = run_walk(u, campus(), 0, opts);
  const std::size_t n = a.epochs.size();
  Uniloc u2 = make_uniloc(campus(), models());
  opts.walk.seed = 110;
  const RunResult b = run_walk(u2, campus(), 1, opts);
  a.append(b);
  EXPECT_EQ(a.epochs.size(), n + b.epochs.size());
}

TEST(UnilocIntegration, FixedTauChangesBehaviour) {
  UnilocConfig tight;
  tight.fixed_tau_m = 1.0;
  UnilocConfig loose;
  loose.fixed_tau_m = 100.0;
  RunOptions opts;
  opts.walk.seed = 111;
  Uniloc ut = make_uniloc(campus(), models(), tight);
  Uniloc ul = make_uniloc(campus(), models(), loose);
  const RunResult rt = run_walk(ut, campus(), 0, opts);
  const RunResult rl = run_walk(ul, campus(), 0, opts);
  // A huge tau saturates all confidences -> near-uniform weights; the two
  // configurations must differ measurably.
  EXPECT_NE(stats::mean(rt.uniloc2_errors()), stats::mean(rl.uniloc2_errors()));
}

TEST(UnilocIntegration, ModelsTransferToUnseenVenue) {
  // The paper's scalability claim: train in office+open space, deploy in
  // the mall. UniLoc2 must stay within sane error bounds there.
  Deployment mall = make_deployment(sim::mall_place(7),
                                    DeploymentOptions{.seed = 7});
  Uniloc u = make_uniloc(mall, models());
  RunOptions opts;
  opts.walk.seed = 112;
  const RunResult run = run_walk(u, mall, 0, opts);
  ASSERT_GT(run.epochs.size(), 100u);
  EXPECT_LT(stats::mean(run.uniloc2_errors()), 15.0);
}

}  // namespace
}  // namespace uniloc::core
