// Tests for the extension components: Horus, the A-Loc baseline, the
// grid-based posterior fusion, and the framework's defenses against
// misbehaving user-integrated schemes.
#include <gtest/gtest.h>

#include <limits>

#include "core/aloc_baseline.h"
#include "core/posterior_fusion.h"
#include "core/runner.h"
#include "core/trainer.h"
#include "schemes/horus_scheme.h"
#include "sim/walker.h"
#include "stats/descriptive.h"
#include "testing_util.h"

namespace uniloc {
namespace {

// ------------------------------------------------------------------ Horus

class HorusTest : public ::testing::Test {
 protected:
  const core::Deployment& deployment_ = testing_util::office_deployment();
};

TEST_F(HorusTest, LikelihoodHighestForMatchingFingerprint) {
  schemes::HorusScheme horus(deployment_.wifi_db.get(), {});
  const schemes::Fingerprint& fp = deployment_.wifi_db->fingerprints()[5];
  std::vector<sim::ApReading> scan;
  for (const auto& [id, rssi] : fp.rssi) scan.push_back({id, rssi});
  const double self = horus.log_likelihood(scan, fp);
  // Its own readings beat any other fingerprint.
  for (const schemes::Fingerprint& other :
       deployment_.wifi_db->fingerprints()) {
    EXPECT_LE(horus.log_likelihood(scan, other), self + 1e-9);
  }
  EXPECT_NEAR(self, 0.0, 1e-9);  // exact match: zero log-likelihood
}

TEST_F(HorusTest, LocalizesInOffice) {
  schemes::HorusScheme horus(deployment_.wifi_db.get(), {});
  sim::WalkConfig wc;
  wc.seed = 3;
  sim::Walker walker(deployment_.place.get(), deployment_.radio.get(), 0, wc);
  horus.reset({walker.start_position(), walker.start_heading()});
  std::vector<double> errs;
  while (!walker.done()) {
    const sim::SensorFrame f = walker.step(false);
    const schemes::SchemeOutput out = horus.update(f);
    if (out.available) errs.push_back(geo::distance(out.estimate, f.truth_pos));
  }
  ASSERT_GT(errs.size(), 100u);
  EXPECT_LT(stats::mean(errs), 8.0);
}

TEST_F(HorusTest, UnavailableOnSparseScan) {
  schemes::HorusScheme horus(deployment_.wifi_db.get(), {});
  horus.reset({{0.0, 0.0}, 0.0});
  sim::SensorFrame frame;
  frame.wifi = {{1, -60.0}};  // below min_transmitters = 2
  EXPECT_FALSE(horus.update(frame).available);
}

TEST_F(HorusTest, PosteriorNormalizedAndNearEstimate) {
  schemes::HorusScheme horus(deployment_.wifi_db.get(), {});
  sim::WalkConfig wc;
  wc.seed = 4;
  sim::Walker walker(deployment_.place.get(), deployment_.radio.get(), 0, wc);
  horus.reset({walker.start_position(), walker.start_heading()});
  walker.step();
  const sim::SensorFrame f = walker.step();
  const schemes::SchemeOutput out = horus.update(f);
  ASSERT_TRUE(out.available);
  double total = 0.0;
  for (const schemes::WeightedPoint& wp : out.posterior.support) {
    total += wp.weight;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(horus.family(), schemes::SchemeFamily::kWifiFingerprint);
}

// ------------------------------------------------------------------ A-Loc

schemes::SchemeOutput avail_at(geo::Vec2 p) {
  schemes::SchemeOutput o;
  o.available = true;
  o.estimate = p;
  return o;
}

TEST(ALoc, PicksCheapestMeetingRequirement) {
  // Costs: expensive accurate vs cheap adequate.
  core::ALocSelector aloc({{300.0}, {10.0}}, /*req=*/8.0);
  const std::vector<schemes::SchemeOutput> outs{avail_at({0, 0}),
                                                avail_at({0, 0})};
  const std::vector<stats::Gaussian> pred{{2.0, 1.0}, {6.0, 1.0}};
  EXPECT_EQ(aloc.select(outs, pred), 1);  // both qualify; cheaper wins
}

TEST(ALoc, FallsBackToMostAccurate) {
  core::ALocSelector aloc({{300.0}, {10.0}}, /*req=*/1.0);
  const std::vector<schemes::SchemeOutput> outs{avail_at({0, 0}),
                                                avail_at({0, 0})};
  const std::vector<stats::Gaussian> pred{{2.0, 1.0}, {6.0, 1.0}};
  EXPECT_EQ(aloc.select(outs, pred), 0);  // nothing qualifies: best mu
}

TEST(ALoc, SkipsUnavailable) {
  core::ALocSelector aloc({{10.0}, {300.0}}, 8.0);
  std::vector<schemes::SchemeOutput> outs{avail_at({0, 0}),
                                          avail_at({0, 0})};
  outs[0].available = false;
  const std::vector<stats::Gaussian> pred{{1.0, 1.0}, {2.0, 1.0}};
  EXPECT_EQ(aloc.select(outs, pred), 1);
}

TEST(ALoc, NothingAvailable) {
  core::ALocSelector aloc(core::standard_scheme_costs(), 8.0);
  std::vector<schemes::SchemeOutput> outs(5);
  const std::vector<stats::Gaussian> pred(5, stats::Gaussian{1.0, 1.0});
  EXPECT_EQ(aloc.select(outs, pred), -1);
}

TEST(ALoc, StandardCostsRankGpsMostExpensive) {
  const auto costs = core::standard_scheme_costs();
  ASSERT_EQ(costs.size(), 5u);
  for (std::size_t i = 1; i < costs.size(); ++i) {
    EXPECT_GT(costs[0].power_mw, costs[i].power_mw);
  }
}

// -------------------------------------------------------- posterior grid

TEST(PosteriorFusion, MassSumsToOne) {
  geo::Grid grid(geo::BBox{{0.0, 0.0}, {20.0, 20.0}}, 1.0);
  std::vector<schemes::SchemeOutput> outs{avail_at({5.0, 5.0}),
                                          avail_at({15.0, 15.0})};
  outs[0].posterior = schemes::Posterior::gaussian({5.0, 5.0}, 2.0);
  outs[1].posterior = schemes::Posterior::gaussian({15.0, 15.0}, 2.0);
  const core::FusedPosterior fused =
      core::fuse_posteriors(grid, outs, {0.5, 0.5});
  double total = 0.0;
  for (double m : fused.mass) total += m;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PosteriorFusion, ExpectationIsWeightedMean) {
  geo::Grid grid(geo::BBox{{0.0, 0.0}, {20.0, 20.0}}, 0.5);
  std::vector<schemes::SchemeOutput> outs{avail_at({5.0, 10.0}),
                                          avail_at({15.0, 10.0})};
  const core::FusedPosterior fused =
      core::fuse_posteriors(grid, outs, {0.75, 0.25});
  EXPECT_NEAR(fused.expectation().x, 7.5, 0.5);
  EXPECT_NEAR(fused.expectation().y, 10.0, 0.5);
}

TEST(PosteriorFusion, MapFollowsDominantScheme) {
  geo::Grid grid(geo::BBox{{0.0, 0.0}, {20.0, 20.0}}, 1.0);
  std::vector<schemes::SchemeOutput> outs{avail_at({5.0, 5.0}),
                                          avail_at({15.0, 15.0})};
  outs[0].posterior = schemes::Posterior::gaussian({5.0, 5.0}, 1.5);
  outs[1].posterior = schemes::Posterior::gaussian({15.0, 15.0}, 1.5);
  const core::FusedPosterior fused =
      core::fuse_posteriors(grid, outs, {0.9, 0.1});
  EXPECT_LT(geo::distance(fused.map_estimate(), {5.0, 5.0}), 2.0);
}

TEST(PosteriorFusion, ZeroWeightsGiveUniform) {
  geo::Grid grid(geo::BBox{{0.0, 0.0}, {10.0, 10.0}}, 1.0);
  const core::FusedPosterior fused = core::fuse_posteriors(grid, {}, {});
  const double u = 1.0 / static_cast<double>(grid.num_cells());
  for (double m : fused.mass) EXPECT_NEAR(m, u, 1e-12);
  // Uniform distribution has maximal entropy: log(N).
  EXPECT_NEAR(fused.entropy(),
              std::log(static_cast<double>(grid.num_cells())), 1e-9);
}

TEST(PosteriorFusion, EntropyLowerWhenConcentrated) {
  geo::Grid grid(geo::BBox{{0.0, 0.0}, {20.0, 20.0}}, 1.0);
  std::vector<schemes::SchemeOutput> sharp{avail_at({5.0, 5.0})};
  sharp[0].posterior = schemes::Posterior::gaussian({5.0, 5.0}, 1.0);
  std::vector<schemes::SchemeOutput> wide{avail_at({5.0, 5.0})};
  wide[0].posterior = schemes::Posterior::gaussian({5.0, 5.0}, 5.0);
  const double h_sharp =
      core::fuse_posteriors(grid, sharp, {1.0}).entropy();
  const double h_wide = core::fuse_posteriors(grid, wide, {1.0}).entropy();
  EXPECT_LT(h_sharp, h_wide);
}

TEST(PosteriorFusion, MassWithinRadius) {
  geo::Grid grid(geo::BBox{{0.0, 0.0}, {20.0, 20.0}}, 1.0);
  std::vector<schemes::SchemeOutput> outs{avail_at({10.0, 10.0})};
  outs[0].posterior = schemes::Posterior::gaussian({10.0, 10.0}, 1.5);
  const core::FusedPosterior fused = core::fuse_posteriors(grid, outs, {1.0});
  EXPECT_GT(fused.mass_within({10.0, 10.0}, 5.0), 0.9);
  EXPECT_LT(fused.mass_within({0.0, 0.0}, 2.0), 0.05);
}

// ----------------------------------------------------- garbage hardening

/// A hostile scheme that reports NaN positions.
class NanScheme final : public schemes::LocalizationScheme {
 public:
  std::string name() const override { return "NaN"; }
  schemes::SchemeFamily family() const override {
    return schemes::SchemeFamily::kOther;
  }
  void reset(const schemes::StartCondition&) override {}
  schemes::SchemeOutput update(const sim::SensorFrame&) override {
    schemes::SchemeOutput out;
    out.available = true;
    out.estimate = {std::numeric_limits<double>::quiet_NaN(), 0.0};
    out.posterior = schemes::Posterior::point(out.estimate);
    return out;
  }
};

TEST(Hardening, NanSchemeIsQuarantined) {
  const core::TrainedModels& models = testing_util::standard_models(100);
  const core::Deployment& office = testing_util::office_deployment();
  core::Uniloc uniloc = core::make_uniloc(office, models);
  uniloc.add_scheme(std::make_unique<NanScheme>(),
                    core::ErrorModel::constant(1.0, 1.0));

  core::RunOptions opts;
  opts.walk.seed = 9;
  const core::RunResult run = core::run_walk(uniloc, office, 0, opts);
  for (const core::EpochRecord& e : run.epochs) {
    EXPECT_TRUE(std::isfinite(e.uniloc1_err));
    EXPECT_TRUE(std::isfinite(e.uniloc2_err));
    // The hostile scheme must never be selected or weighted.
    EXPECT_FALSE(e.scheme_available.back());
    EXPECT_DOUBLE_EQ(e.weight.back(), 0.0);
  }
}

}  // namespace
}  // namespace uniloc
