#include "geo/grid.h"

#include <gtest/gtest.h>

#include "geo/latlon.h"

namespace uniloc::geo {
namespace {

TEST(Grid, Dimensions) {
  Grid g(BBox{{0.0, 0.0}, {10.0, 6.0}}, 2.0);
  EXPECT_EQ(g.nx(), 5);
  EXPECT_EQ(g.ny(), 3);
  EXPECT_EQ(g.num_cells(), 15u);
}

TEST(Grid, DimensionsRoundUp) {
  Grid g(BBox{{0.0, 0.0}, {10.1, 5.9}}, 2.0);
  EXPECT_EQ(g.nx(), 6);
  EXPECT_EQ(g.ny(), 3);
}

TEST(Grid, CellOfAndCenterRoundTrip) {
  Grid g(BBox{{0.0, 0.0}, {10.0, 10.0}}, 1.0);
  for (int iy = 0; iy < g.ny(); ++iy) {
    for (int ix = 0; ix < g.nx(); ++ix) {
      const CellIndex c{ix, iy};
      EXPECT_EQ(g.cell_of(g.center(c)), c);
    }
  }
}

TEST(Grid, CellOfClampsOutside) {
  Grid g(BBox{{0.0, 0.0}, {10.0, 10.0}}, 1.0);
  EXPECT_EQ(g.cell_of({-5.0, -5.0}), (CellIndex{0, 0}));
  EXPECT_EQ(g.cell_of({50.0, 50.0}), (CellIndex{9, 9}));
}

TEST(Grid, FlatUnflatRoundTrip) {
  Grid g(BBox{{0.0, 0.0}, {7.0, 5.0}}, 1.0);
  for (std::size_t i = 0; i < g.num_cells(); ++i) {
    EXPECT_EQ(g.flat(g.unflat(i)), i);
  }
}

TEST(Grid, AllCentersCount) {
  Grid g(BBox{{0.0, 0.0}, {4.0, 4.0}}, 2.0);
  EXPECT_EQ(g.all_centers().size(), g.num_cells());
  EXPECT_EQ(g.all_centers()[0], (Vec2{1.0, 1.0}));
}

TEST(Grid, ValidIndex) {
  Grid g(BBox{{0.0, 0.0}, {4.0, 4.0}}, 2.0);
  EXPECT_TRUE(g.valid({0, 0}));
  EXPECT_TRUE(g.valid({1, 1}));
  EXPECT_FALSE(g.valid({2, 0}));
  EXPECT_FALSE(g.valid({-1, 0}));
}

TEST(LocalFrame, RoundTrip) {
  const LocalFrame frame({1.3483, 103.6831});
  const Vec2 p{123.4, -56.7};
  const Vec2 back = frame.to_local(frame.to_geo(p));
  EXPECT_NEAR(back.x, p.x, 1e-6);
  EXPECT_NEAR(back.y, p.y, 1e-6);
}

TEST(LocalFrame, AnchorMapsToOrigin) {
  const LatLon anchor{1.35, 103.68};
  const LocalFrame frame(anchor);
  const Vec2 origin = frame.to_local(anchor);
  EXPECT_NEAR(origin.x, 0.0, 1e-9);
  EXPECT_NEAR(origin.y, 0.0, 1e-9);
}

TEST(LocalFrame, NorthIsPositiveY) {
  const LocalFrame frame({1.35, 103.68});
  const Vec2 north = frame.to_local({1.351, 103.68});
  EXPECT_GT(north.y, 100.0);  // ~110 m per millidegree
  EXPECT_NEAR(north.x, 0.0, 1e-9);
}

TEST(GeoDistance, MatchesLocalFrameDistance) {
  const LocalFrame frame({1.35, 103.68});
  const LatLon a = frame.to_geo({0.0, 0.0});
  const LatLon b = frame.to_geo({300.0, 400.0});
  EXPECT_NEAR(geo_distance_m(a, b), 500.0, 0.5);
}

}  // namespace
}  // namespace uniloc::geo
