#include "schemes/pdr_frontend.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geo/vec2.h"
#include "sim/imu_sim.h"

namespace uniloc::schemes {
namespace {

sim::GaitProfile steady_gait() {
  sim::GaitProfile g;
  g.trembling = 0.0;
  return g;
}

TEST(PdrFrontend, DetectsOneStepPerTrace) {
  sim::ImuSimulator imu(sim::ImuParams{}, 1);
  PdrFrontend fe;
  fe.reset(0.0);
  int total = 0;
  const int walks = 100;
  for (int i = 0; i < walks; ++i) {
    total += fe.process(imu.step_trace(steady_gait(), 0.0, 0.0, false)).steps;
  }
  // One true step per trace; small detection error tolerated.
  EXPECT_NEAR(total, walks, 12);
}

TEST(PdrFrontend, CompensationLimitsTremblingDamage) {
  // With heavy trembling, the raw peak detector would over/under-count;
  // the 0.4-0.7 s period gate keeps the count near truth (paper: "such a
  // mechanism can well mitigate the localization error caused by
  // trembling").
  sim::ImuSimulator imu(sim::ImuParams{}, 2);
  sim::GaitProfile g;
  g.trembling = 1.0;
  PdrFrontend fe;
  fe.reset(0.0);
  int total = 0;
  const int walks = 200;
  for (int i = 0; i < walks; ++i) {
    total += fe.process(imu.step_trace(g, 0.0, 0.0, false)).steps;
  }
  EXPECT_NEAR(total, walks, 50);  // within 25% despite heavy trembling
}

TEST(PdrFrontend, NoStepsWhenIdle) {
  sim::ImuSimulator imu(sim::ImuParams{}, 3);
  PdrFrontend fe;
  fe.reset(0.0);
  int total = 0;
  for (int i = 0; i < 20; ++i) {
    total += fe.process(imu.idle_trace(0.55, 0.0, false)).steps;
  }
  EXPECT_LE(total, 2);
}

TEST(PdrFrontend, StepLengthInHumanRange) {
  sim::ImuSimulator imu(sim::ImuParams{}, 4);
  PdrFrontend fe;
  fe.reset(0.0);
  for (int i = 0; i < 50; ++i) {
    const StepInference inf =
        fe.process(imu.step_trace(steady_gait(), 0.0, 0.0, false));
    if (inf.steps == 0) continue;
    EXPECT_GT(inf.step_length_m, 0.35);
    EXPECT_LT(inf.step_length_m, 1.1);
  }
}

TEST(PdrFrontend, HeadingTracksTruthOutdoors) {
  sim::ImuSimulator imu(sim::ImuParams{}, 5);
  PdrFrontend fe;
  fe.reset(0.5);
  double heading = 0.5;
  for (int i = 0; i < 120; ++i) {
    fe.process(imu.step_trace(steady_gait(), heading, 0.0, false));
  }
  EXPECT_NEAR(uniloc::geo::angle_diff(fe.heading(), heading), 0.0, 0.35);
}

TEST(PdrFrontend, HeadingFollowsTurn) {
  sim::ImuSimulator imu(sim::ImuParams{}, 6);
  PdrFrontend fe;
  fe.reset(0.0);
  // Turn 90 degrees over 10 steps.
  double truth = 0.0;
  double accumulated_dh = 0.0;
  const double per_step = std::numbers::pi / 2.0 / 10.0;
  for (int i = 0; i < 10; ++i) {
    truth += per_step;
    const StepInference inf =
        fe.process(imu.step_trace(steady_gait(), truth, per_step, false));
    accumulated_dh += inf.dheading_rad;
  }
  EXPECT_NEAR(accumulated_dh, std::numbers::pi / 2.0, 0.35);
}

TEST(PdrFrontend, EmptyTraceIsNoop) {
  PdrFrontend fe;
  fe.reset(1.0);
  const StepInference inf = fe.process({});
  EXPECT_EQ(inf.steps, 0);
  EXPECT_DOUBLE_EQ(inf.heading_rad, 1.0);
}

TEST(PdrFrontend, ResetReinitializesHeading) {
  sim::ImuSimulator imu(sim::ImuParams{}, 7);
  PdrFrontend fe;
  fe.reset(0.0);
  for (int i = 0; i < 30; ++i) {
    fe.process(imu.step_trace(steady_gait(), 1.2, 0.0, true));
  }
  fe.reset(-2.0);
  EXPECT_DOUBLE_EQ(fe.heading(), -2.0);
}

}  // namespace
}  // namespace uniloc::schemes
