#include "sim/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/cold_start.h"
#include "core/deployment.h"
#include "sim/builders.h"
#include "sim/walker.h"

namespace uniloc {
namespace {

sim::Trace record_walk(std::uint64_t seed, int max_frames = 80) {
  static core::Deployment office = core::make_deployment(
      sim::office_place(42), core::DeploymentOptions{.seed = 42});
  sim::WalkConfig wc;
  wc.seed = seed;
  sim::Walker walker(office.place.get(), office.radio.get(), 0, wc);
  sim::Trace t;
  t.venue = "office";
  t.step_period_s = wc.gait.step_period_s;
  t.start_pos = walker.start_position();
  t.start_heading = walker.start_heading();
  int n = 0;
  while (!walker.done() && n++ < max_frames) {
    t.frames.push_back(walker.step(true));
  }
  return t;
}

void expect_traces_equal(const sim::Trace& a, const sim::Trace& b) {
  EXPECT_EQ(a.venue, b.venue);
  EXPECT_DOUBLE_EQ(a.step_period_s, b.step_period_s);
  EXPECT_EQ(a.start_pos, b.start_pos);
  ASSERT_EQ(a.frames.size(), b.frames.size());
  for (std::size_t i = 0; i < a.frames.size(); ++i) {
    const sim::SensorFrame& fa = a.frames[i];
    const sim::SensorFrame& fb = b.frames[i];
    EXPECT_DOUBLE_EQ(fa.t, fb.t);
    EXPECT_EQ(fa.truth_pos, fb.truth_pos);
    EXPECT_EQ(fa.truth_env, fb.truth_env);
    EXPECT_EQ(fa.gps_enabled, fb.gps_enabled);
    ASSERT_EQ(fa.wifi.size(), fb.wifi.size());
    for (std::size_t j = 0; j < fa.wifi.size(); ++j) {
      EXPECT_EQ(fa.wifi[j].id, fb.wifi[j].id);
      EXPECT_DOUBLE_EQ(fa.wifi[j].rssi_dbm, fb.wifi[j].rssi_dbm);
    }
    ASSERT_EQ(fa.cell.size(), fb.cell.size());
    EXPECT_EQ(fa.gps.has_value(), fb.gps.has_value());
    if (fa.gps.has_value()) {
      EXPECT_DOUBLE_EQ(fa.gps->pos.lat_deg, fb.gps->pos.lat_deg);
      EXPECT_EQ(fa.gps->num_satellites, fb.gps->num_satellites);
    }
    ASSERT_EQ(fa.imu.size(), fb.imu.size());
    for (std::size_t j = 0; j < fa.imu.size(); ++j) {
      EXPECT_DOUBLE_EQ(fa.imu[j].accel_mag, fb.imu[j].accel_mag);
      EXPECT_DOUBLE_EQ(fa.imu[j].gyro_z, fb.imu[j].gyro_z);
    }
    EXPECT_DOUBLE_EQ(fa.ambient.light_lux, fb.ambient.light_lux);
    ASSERT_EQ(fa.landmarks.size(), fb.landmarks.size());
    for (std::size_t j = 0; j < fa.landmarks.size(); ++j) {
      EXPECT_EQ(fa.landmarks[j].map_pos, fb.landmarks[j].map_pos);
      EXPECT_EQ(fa.landmarks[j].kind, fb.landmarks[j].kind);
    }
  }
}

TEST(TraceIo, RoundTripThroughStream) {
  const sim::Trace original = record_walk(1);
  std::stringstream ss;
  sim::write_trace(original, ss);
  const sim::Trace loaded = sim::read_trace(ss);
  expect_traces_equal(original, loaded);
}

TEST(TraceIo, RoundTripThroughFile) {
  const std::string path = "/tmp/uniloc_trace_test.trace";
  const sim::Trace original = record_walk(2, 30);
  sim::write_trace(original, path);
  const sim::Trace loaded = sim::read_trace(path);
  expect_traces_equal(original, loaded);
  std::remove(path.c_str());
}

TEST(TraceIo, CommentsAndBlankLinesIgnored) {
  std::stringstream ss;
  ss << "# comment\n\nV test\nP 0.5\nS 1 2 0.3\n"
     << "F 0.5 1.7 2 0.3 0 0.7 1\nA 300 4\n";
  const sim::Trace t = sim::read_trace(ss);
  EXPECT_EQ(t.venue, "test");
  ASSERT_EQ(t.frames.size(), 1u);
  EXPECT_DOUBLE_EQ(t.frames[0].ambient.light_lux, 300.0);
}

TEST(TraceIo, MalformedInputThrows) {
  std::stringstream bad_tag("X 1 2 3\n");
  EXPECT_THROW(sim::read_trace(bad_tag), std::runtime_error);
  std::stringstream scan_without_frame("V t\nW 1 -60\n");
  EXPECT_THROW(sim::read_trace(scan_without_frame), std::runtime_error);
  std::stringstream truncated_frame("F 0.5 1.0\n");
  EXPECT_THROW(sim::read_trace(truncated_frame), std::runtime_error);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(sim::read_trace(std::string("/nonexistent/x.trace")),
               std::runtime_error);
}

// -------------------------------------------------------------- cold start

TEST(ColdStart, LocatesStartFromWifi) {
  core::Deployment office = core::make_deployment(
      sim::office_place(42), core::DeploymentOptions{.seed = 42});
  const sim::Trace trace = record_walk(3, 40);
  core::ColdStartLocator locator(office.wifi_db.get());
  std::optional<schemes::StartCondition> start;
  std::size_t used = 0;
  for (const sim::SensorFrame& f : trace.frames) {
    ++used;
    start = locator.observe(f);
    if (start.has_value()) break;
  }
  ASSERT_TRUE(start.has_value());
  EXPECT_LE(used, 12u);
  // The walker has moved `used` steps, so allow start error accordingly.
  EXPECT_LT(geo::distance(start->pos, trace.start_pos),
            8.0 + 0.7 * static_cast<double>(used));
}

TEST(ColdStart, NoVerdictWithoutWifi) {
  core::ColdStartLocator locator(nullptr);
  sim::SensorFrame f;
  f.wifi = {{1, -60.0}};
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(locator.observe(f).has_value());
  }
  EXPECT_FALSE(locator.current_guess().has_value());
}

TEST(ColdStart, HeadingFromMagnetometer) {
  core::Deployment office = core::make_deployment(
      sim::office_place(42), core::DeploymentOptions{.seed = 42});
  const sim::Trace trace = record_walk(4, 20);
  core::ColdStartLocator locator(office.wifi_db.get());
  std::optional<schemes::StartCondition> start;
  for (const sim::SensorFrame& f : trace.frames) {
    start = locator.observe(f);
    if (start.has_value()) break;
  }
  ASSERT_TRUE(start.has_value());
  // The office loop starts heading east (0 rad); magnetometer-derived
  // heading should be in the right quadrant despite indoor disturbance.
  EXPECT_LT(std::fabs(geo::angle_diff(start->heading, trace.start_heading)),
            0.8);
}

}  // namespace
}  // namespace uniloc
