// Performance contracts of the fast epoch pipeline.
//
// Two families of guarantees, enforced rather than documented:
//
//   1. Allocation contracts. The test binary replaces global operator
//      new/delete with a counting hook; after a warmup walk segment has
//      grown every scratch buffer to steady capacity, one call of
//      Uniloc::update_fast must perform ZERO heap allocations -- same for
//      a steady-state ParticleFilter predict/reweight/resample cycle. The
//      hook is compiled out under ASan/TSan/MSan (the sanitizer runtimes
//      own the allocator there); those configurations skip the counting
//      tests and keep the cache-semantics tests.
//
//   2. Likelihood-cache semantics. Cached k-nearest answers are bitwise
//      equal to the exact reference; blend_reading invalidates the cache
//      (stale tables must never serve); invalidated queries fall back to
//      the exact path and are counted as misses; a rebuilt cache serves
//      hits again.
#include <gtest/gtest.h>

#include <execinfo.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <thread>
#include <vector>

#include "core/epoch_scratch.h"
#include "core/runner.h"
#include "core/trainer.h"
#include "filter/particle_filter.h"
#include "schemes/fingerprint_db.h"
#include "sim/builders.h"
#include "sim/walker.h"
#include "stats/simd.h"
#include "svc/batcher.h"
#include "svc/session_manager.h"
#include "svc/thread_pool.h"
#include "testing_util.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define UNILOC_ALLOC_COUNTING 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define UNILOC_ALLOC_COUNTING 0
#else
#define UNILOC_ALLOC_COUNTING 1
#endif
#else
#define UNILOC_ALLOC_COUNTING 1
#endif

#if UNILOC_ALLOC_COUNTING

namespace {
std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};

// Debug aid: with UNILOC_ALLOC_TRAP=1 in the environment, the first
// steady-state allocation dumps a backtrace and aborts, turning an
// "N allocation(s) in epoch E" failure into an actionable stack
// (symbolize the offsets with addr2line -e <binary>).
std::atomic<bool> g_trap{false};

void* counted_alloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (g_trap.load(std::memory_order_relaxed)) {
      void* frames[64];
      const int n = backtrace(frames, 64);
      backtrace_symbols_fd(frames, n, 2);
      std::abort();
    }
  }
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return operator new(size, std::nothrow);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // UNILOC_ALLOC_COUNTING

namespace uniloc {
namespace {

#if UNILOC_ALLOC_COUNTING
std::uint64_t begin_counting() {
  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  return 0;
}

std::uint64_t end_counting() {
  g_counting.store(false, std::memory_order_relaxed);
  return g_allocs.load(std::memory_order_relaxed);
}
#endif

const core::TrainedModels& test_models() {
  return testing_util::standard_models(100);
}

#if UNILOC_ALLOC_COUNTING

TEST(PerfContracts, UpdateFastIsAllocationFreeAfterWarmup) {
  // The office venue is fully indoor: GPS stays duty-cycled off and the
  // scheme availability pattern stabilizes within a handful of epochs, so
  // every buffer hits steady capacity during the warmup prefix.
  core::Deployment d = core::make_deployment(
      sim::office_place(42), core::DeploymentOptions{.seed = 42});
  core::Uniloc uniloc = core::make_uniloc(d, test_models());
  core::EpochScratch scratch;

  sim::Walker walker(d.place.get(), d.radio.get(), 0, sim::WalkConfig{});
  uniloc.reset({walker.start_position(), walker.start_heading()});

  std::vector<std::uint64_t> allocs_per_epoch;
  allocs_per_epoch.reserve(1 << 14);
  constexpr std::size_t kWarmupEpochs = 25;
  while (!walker.done()) {
    const sim::SensorFrame frame = walker.step(uniloc.gps_enabled());
    if (std::getenv("UNILOC_ALLOC_TRAP") != nullptr &&
        allocs_per_epoch.size() >= kWarmupEpochs) {
      g_trap.store(true, std::memory_order_relaxed);
    }
    begin_counting();
    uniloc.update_fast(frame, scratch);
    allocs_per_epoch.push_back(end_counting());
  }

  ASSERT_GT(allocs_per_epoch.size(), 2 * kWarmupEpochs)
      << "walk too short to measure a steady state";
  for (std::size_t e = kWarmupEpochs; e < allocs_per_epoch.size(); ++e) {
    EXPECT_EQ(allocs_per_epoch[e], 0u)
        << allocs_per_epoch[e] << " allocation(s) in steady-state epoch "
        << e;
  }
  // The zero above must come from reuse, not from an empty arena.
  EXPECT_GT(scratch.bytes(), 0u);
}

TEST(PerfContracts, ReferenceUpdateAllocatesProvingTheHookWorks) {
  // Guard against a silently-disabled hook: the reference pipeline
  // allocates its decision vectors every epoch, and the counter must see
  // that.
  core::Deployment d = core::make_deployment(
      sim::office_place(42), core::DeploymentOptions{.seed = 42});
  core::Uniloc uniloc = core::make_uniloc(d, test_models());

  sim::Walker walker(d.place.get(), d.radio.get(), 0, sim::WalkConfig{});
  uniloc.reset({walker.start_position(), walker.start_heading()});

  std::uint64_t total = 0;
  for (int e = 0; e < 30 && !walker.done(); ++e) {
    const sim::SensorFrame frame = walker.step(uniloc.gps_enabled());
    begin_counting();
    const core::EpochDecision dec = uniloc.update(frame);
    total += end_counting();
    ASSERT_FALSE(dec.outputs.empty());
  }
  EXPECT_GT(total, 0u);
}

TEST(PerfContracts, ParticleFilterCycleIsAllocationFreeInSteadyState) {
  filter::ParticleFilter pf(300, /*seed=*/99);
  pf.init({5.0, 5.0}, 0.3, 0.8, 0.08, 0.07);

  const auto cycle = [&pf] {
    pf.predict(0.7, 0.01, 0.12, 0.035);
    pf.reweight([](const filter::Particle& p) {
      return p.pos.x > 0.0 ? 1.0 : 0.5;
    });
    pf.resample();
  };
  // Warmup: let the resampling pick/gather scratch reach capacity.
  for (int i = 0; i < 3; ++i) cycle();

  begin_counting();
  for (int i = 0; i < 50; ++i) cycle();
  const std::uint64_t allocs = end_counting();
  EXPECT_EQ(allocs, 0u);
  EXPECT_GT(pf.storage_bytes(), 0u);
}

#else  // !UNILOC_ALLOC_COUNTING

TEST(PerfContracts, AllocationCountingSkippedUnderSanitizers) {
  GTEST_SKIP() << "operator new hook disabled under sanitizers";
}

#endif  // UNILOC_ALLOC_COUNTING

// ------------------------------------------------- likelihood cache

std::vector<sim::ApReading> scan_from_fingerprint(
    const schemes::FingerprintDatabase& db, std::size_t index) {
  std::vector<sim::ApReading> scan;
  for (const auto& [id, rssi] : db.fingerprints()[index].rssi) {
    scan.push_back({id, rssi + 1.5});  // offset: not an exact hit
  }
  return scan;
}

TEST(PerfContracts, CachedMatchesAreBitwiseEqualToReference) {
  core::Deployment d = core::make_deployment(
      sim::office_place(42), core::DeploymentOptions{.seed = 42});
  schemes::FingerprintDatabase& db = *d.wifi_db;
  ASSERT_TRUE(db.likelihood_cache_ready())
      << "make_deployment must prebuild the likelihood cache";
  EXPECT_GT(db.likelihood_cache_bytes(), 0u);

  schemes::ScanScratch scratch;
  std::vector<schemes::Match> cached;
  for (std::size_t i = 0; i < db.size(); i += 7) {
    const std::vector<sim::ApReading> scan = scan_from_fingerprint(db, i);
    const std::vector<schemes::Match> ref = db.k_nearest(scan, 20);
    db.k_nearest_into(scan, 20, scratch, cached);
    ASSERT_EQ(ref.size(), cached.size()) << "query " << i;
    for (std::size_t m = 0; m < ref.size(); ++m) {
      EXPECT_EQ(ref[m].index, cached[m].index) << "query " << i;
      EXPECT_EQ(ref[m].distance, cached[m].distance) << "query " << i;
    }
  }
  EXPECT_GT(scratch.cache_hits, 0u);
  EXPECT_EQ(scratch.cache_misses, 0u);
}

TEST(PerfContracts, BlendReadingInvalidatesTheCache) {
  core::Deployment d = core::make_deployment(
      sim::office_place(42), core::DeploymentOptions{.seed = 42});
  schemes::FingerprintDatabase& db = *d.wifi_db;
  ASSERT_TRUE(db.likelihood_cache_ready());

  const std::vector<sim::ApReading> scan = scan_from_fingerprint(db, 0);
  schemes::ScanScratch scratch;
  std::vector<schemes::Match> got;

  db.k_nearest_into(scan, 5, scratch, got);
  EXPECT_EQ(scratch.cache_hits, 1u);

  // Crowdsourced maintenance touches a fingerprint: the precomputed
  // tables are stale now and must not serve.
  const int some_id = db.fingerprints()[0].rssi.begin()->first;
  db.blend_reading(0, some_id, -40.0, 0.5);
  EXPECT_FALSE(db.likelihood_cache_ready());

  // The fallback answers exactly like the post-blend reference and is
  // accounted as a miss.
  db.k_nearest_into(scan, 5, scratch, got);
  EXPECT_EQ(scratch.cache_misses, 1u);
  const std::vector<schemes::Match> ref = db.k_nearest(scan, 5);
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t m = 0; m < ref.size(); ++m) {
    EXPECT_EQ(ref[m].index, got[m].index);
    EXPECT_EQ(ref[m].distance, got[m].distance);
  }

  // Rebuilding restores cached service with the blended values baked in.
  db.prebuild_likelihood_cache();
  ASSERT_TRUE(db.likelihood_cache_ready());
  db.k_nearest_into(scan, 5, scratch, got);
  EXPECT_EQ(scratch.cache_hits, 2u);
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t m = 0; m < ref.size(); ++m) {
    EXPECT_EQ(ref[m].index, got[m].index);
    EXPECT_EQ(ref[m].distance, got[m].distance);
  }
}

TEST(PerfContracts, BlendReadingInvalidatesTheSharedBatchTables) {
  // The SIMD batch-scoring path reads the column-major mirrors that
  // prebuild_likelihood_cache derives from the fingerprints. A deployment
  // mutation (crowdsourced blend) must invalidate them along with the
  // row-major tables: the next vector query falls back to the exact
  // reference path and never serves a stale column.
  core::Deployment d = core::make_deployment(
      sim::office_place(42), core::DeploymentOptions{.seed = 42});
  schemes::FingerprintDatabase& db = *d.wifi_db;
  ASSERT_TRUE(db.likelihood_cache_ready());

  const stats::ScopedSimd on(true);
  const std::vector<sim::ApReading> scan = scan_from_fingerprint(db, 2);
  schemes::ScanScratch scratch;
  std::vector<double> got;
  db.all_distances_into(scan, scratch, got);
  EXPECT_EQ(scratch.cache_hits, 1u);

  const int some_id = db.fingerprints()[2].rssi.begin()->first;
  db.blend_reading(2, some_id, -35.0, 0.5);
  ASSERT_FALSE(db.likelihood_cache_ready());

  db.all_distances_into(scan, scratch, got);
  EXPECT_EQ(scratch.cache_misses, 1u);
  const std::vector<double> ref = db.all_distances(scan);
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i], got[i]) << "fingerprint " << i;
  }

  // A rebuilt cache serves the blended values from the vector path.
  db.prebuild_likelihood_cache();
  db.all_distances_into(scan, scratch, got);
  EXPECT_EQ(scratch.cache_hits, 2u);
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i], got[i]) << "fingerprint " << i;
  }
}

TEST(PerfContracts, AllDistancesIntoMatchesReference) {
  core::Deployment d = core::make_deployment(
      sim::office_place(42), core::DeploymentOptions{.seed = 42});
  const schemes::FingerprintDatabase& db = *d.wifi_db;

  const std::vector<sim::ApReading> scan = scan_from_fingerprint(db, 3);
  const std::vector<double> ref = db.all_distances(scan);
  schemes::ScanScratch scratch;
  std::vector<double> got;
  db.all_distances_into(scan, scratch, got);
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i], got[i]) << "fingerprint " << i;
  }
}

// ------------------------------------------------- epoch batching

// Sessions for driving the EpochBatcher in isolation: the Uniloc is never
// touched (tasks are plain closures), so a null ensemble is fine.
svc::SessionPtr bare_session(std::uint64_t id) {
  return std::make_shared<svc::Session>(id, nullptr);
}

#if UNILOC_ALLOC_COUNTING

TEST(PerfContracts, EpochBatcherSteadyStateIsAllocationFree) {
  // After one warmup burst has grown the FIFO to capacity, handing a
  // burst of drainable sessions to the batcher must not allocate: the
  // head-indexed vector is compacted in place and sessions travel by
  // shared_ptr. (The tasks themselves run too -- inline pool -- so the
  // count covers the whole batched drain path.)
  svc::ThreadPool pool({.workers = 0, .queue_capacity = 64});
  svc::EpochBatcher batcher(pool, /*max_batch=*/4, /*max_runners=*/1);
  std::vector<svc::SessionPtr> sessions;
  for (std::uint64_t id = 1; id <= 8; ++id) {
    sessions.push_back(bare_session(id));
  }
  std::uint64_t ran = 0;
  const auto one_burst = [&] {
    for (const svc::SessionPtr& s : sessions) {
      // Pointer-capture lambda: fits std::function's small-buffer slot.
      if (s->enqueue([&ran] { ++ran; }, /*capacity=*/8, /*now_us=*/0) ==
          svc::Session::Enqueue::kStartDrain) {
        batcher.submit(s);
      }
    }
  };
  for (int warmup = 0; warmup < 3; ++warmup) one_burst();
  const std::uint64_t before = ran;

  begin_counting();
  for (int i = 0; i < 20; ++i) one_burst();
  const std::uint64_t allocs = end_counting();
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(ran, before + 20u * sessions.size());
  EXPECT_EQ(batcher.pending(), 0u);
}

#endif  // UNILOC_ALLOC_COUNTING

TEST(PerfContracts, BatchAssemblyNeverReordersEpochsWithinASession) {
  // Concurrent runners (workers=2, max_batch=4) drain interleaved bursts
  // from several sessions; every session must observe its own epochs in
  // exact submission order -- the strand + kStartDrain handshake, not
  // timing, is what guarantees it.
  constexpr std::size_t kSessions = 3;
  constexpr int kEpochs = 200;
  svc::ThreadPool pool({.workers = 2, .queue_capacity = 1024});
  svc::EpochBatcher batcher(pool, /*max_batch=*/4, /*max_runners=*/2);
  std::vector<svc::SessionPtr> sessions;
  std::vector<std::vector<int>> seen(kSessions);
  for (std::uint64_t id = 0; id < kSessions; ++id) {
    sessions.push_back(bare_session(id + 1));
    seen[id].reserve(kEpochs);
  }
  for (int e = 0; e < kEpochs; ++e) {
    for (std::size_t s = 0; s < kSessions; ++s) {
      // The strand serializes a session's tasks, so its `seen` vector is
      // only ever appended from one worker at a time.
      std::vector<int>* log = &seen[s];
      for (;;) {
        const svc::Session::Enqueue rc = sessions[s]->enqueue(
            [log, e] { log->push_back(e); }, /*capacity=*/8, /*now_us=*/0);
        if (rc == svc::Session::Enqueue::kStartDrain) batcher.submit(sessions[s]);
        if (rc != svc::Session::Enqueue::kBackpressure) break;
        // Inbox full: wait for the runners to catch up, then retry so
        // every epoch is delivered (the ordering check needs all 200).
        std::this_thread::yield();
      }
    }
  }
  pool.shutdown();
  for (std::size_t s = 0; s < kSessions; ++s) {
    ASSERT_EQ(seen[s].size(), static_cast<std::size_t>(kEpochs))
        << "session " << s;
    for (int e = 0; e < kEpochs; ++e) {
      ASSERT_EQ(seen[s][e], e) << "session " << s << " position " << e;
    }
  }
}

// ------------------------------------- cross-session isolation audit

TEST(PerfContracts, InterleavedSessionsMatchSoloRunsBitwise) {
  // Cross-session leakage regression: sessions share a deployment's
  // read-only tables (likelihood cache + column-major SIMD mirrors, env
  // index, walkway graph) while all mutable matching state (ScanScratch,
  // ScanMemo, EpochContext) lives in the per-session scratch arena.
  // Interleaving two sessions epoch by epoch must therefore reproduce
  // each session's solo stream bit for bit -- if any shared table were
  // secretly mutable per query (or a memo keyed only on a reusable heap
  // address could cross sessions), this comparison would diverge.
  // Campus: the two walkers need distinct walkways (0 and 1) so their
  // streams genuinely differ.
  core::Deployment d = core::make_deployment(
      sim::campus(42), core::DeploymentOptions{.seed = 42});

  struct Lane {
    sim::Walker walker;
    core::Uniloc uniloc;
    core::EpochScratch scratch;
    bool gps{true};
    std::vector<geo::Vec2> fixes;
  };
  const auto make_lane = [&](int walker_id, std::uint64_t seed) {
    // Direct aggregate-init on the heap: Lane's members need not be
    // movable (guaranteed elision into the members).
    return std::unique_ptr<Lane>(
        new Lane{sim::Walker(d.place.get(), d.radio.get(), walker_id,
                             sim::WalkConfig{}),
                 core::make_uniloc(d, test_models(), {}, false, seed),
                 core::EpochScratch{}});
  };
  const auto step = [](Lane& lane) {
    if (lane.walker.done()) return false;
    const sim::SensorFrame f = lane.walker.step(lane.gps);
    const core::EpochDecision dec = lane.uniloc.update_fast(f, lane.scratch);
    lane.gps = lane.uniloc.gps_enabled();
    lane.fixes.push_back(dec.uniloc2);
    return true;
  };

  // Solo passes.
  auto solo_a = make_lane(0, 7);
  auto solo_b = make_lane(1, 8);
  solo_a->uniloc.reset(
      {solo_a->walker.start_position(), solo_a->walker.start_heading()});
  solo_b->uniloc.reset(
      {solo_b->walker.start_position(), solo_b->walker.start_heading()});
  while (step(*solo_a)) {
  }
  while (step(*solo_b)) {
  }

  // Interleaved pass: A, B, A, B, ... against the same live deployment.
  auto il_a = make_lane(0, 7);
  auto il_b = make_lane(1, 8);
  il_a->uniloc.reset(
      {il_a->walker.start_position(), il_a->walker.start_heading()});
  il_b->uniloc.reset(
      {il_b->walker.start_position(), il_b->walker.start_heading()});
  bool more = true;
  while (more) {
    more = false;
    more |= step(*il_a);
    more |= step(*il_b);
  }

  ASSERT_EQ(il_a->fixes.size(), solo_a->fixes.size());
  ASSERT_EQ(il_b->fixes.size(), solo_b->fixes.size());
  for (std::size_t e = 0; e < solo_a->fixes.size(); ++e) {
    EXPECT_EQ(il_a->fixes[e].x, solo_a->fixes[e].x) << "A epoch " << e;
    EXPECT_EQ(il_a->fixes[e].y, solo_a->fixes[e].y) << "A epoch " << e;
  }
  for (std::size_t e = 0; e < solo_b->fixes.size(); ++e) {
    EXPECT_EQ(il_b->fixes[e].x, solo_b->fixes[e].x) << "B epoch " << e;
    EXPECT_EQ(il_b->fixes[e].y, solo_b->fixes[e].y) << "B epoch " << e;
  }
}

}  // namespace
}  // namespace uniloc
