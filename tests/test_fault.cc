// Chaos suite for src/fault + the svc degradation state machine.
//
// Every test drives the real LocalizationServer through a FaultyLink with
// a *scripted* (or seeded) FaultPlan, so the exact retry counts, backoff
// values, fallback entry/exit epochs, and reconnect handshakes are known
// in advance and asserted epoch by epoch. Nothing here sleeps: link
// delays, timeouts, and the server-eviction clock are all virtual
// (sim::VirtualClock / LinkReply::delay_us), which is what makes a 30 s
// blackout assertable in milliseconds of test time.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/runner.h"
#include "core/trainer.h"
#include "fault/crash.h"
#include "fault/link.h"
#include "fault/plan.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/virtual_clock.h"
#include "svc/epoch_codec.h"
#include "svc/loadgen.h"
#include "svc/server.h"
#include "testing_util.h"

namespace uniloc {
namespace {

using fault::FaultDecision;
using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultRates;
using fault::FaultyLink;
using svc::EpochEvent;
using svc::LoadGenConfig;
using svc::LoadReport;
using svc::LocalizationServer;
using svc::RetryPolicy;
using svc::ServerConfig;
using svc::WalkerOutcome;

// ------------------------------------------------------------ retry policy

TEST(RetryPolicy, BackoffIsExponentialWithBoundedJitter) {
  RetryPolicy p;
  p.backoff_base_us = 50'000;
  p.backoff_multiplier = 2.0;
  p.jitter_frac = 0.1;
  // Jitter-free sequence doubles: 50 ms, 100 ms, 200 ms, 400 ms.
  EXPECT_EQ(p.backoff_us(0, 0.0), 50'000u);
  EXPECT_EQ(p.backoff_us(1, 0.0), 100'000u);
  EXPECT_EQ(p.backoff_us(2, 0.0), 200'000u);
  EXPECT_EQ(p.backoff_us(3, 0.0), 400'000u);
  // Full jitter adds exactly jitter_frac on top.
  EXPECT_EQ(p.backoff_us(0, 1.0), 55'000u);
  EXPECT_EQ(p.backoff_us(2, 1.0), 220'000u);
  // Jitter never reorders the exponential envelope.
  for (std::size_t r = 0; r + 1 < 6; ++r) {
    EXPECT_LT(p.backoff_us(r, 1.0), p.backoff_us(r + 1, 0.0) * 2);
    EXPECT_LT(p.backoff_us(r, 0.0), p.backoff_us(r + 1, 0.0));
  }
}

// -------------------------------------------------------------- fault plan

TEST(FaultPlan, DecisionsArePureFunctionsOfSeedStreamIndex) {
  FaultRates rates;
  rates.drop = 0.2;
  rates.corrupt = 0.1;
  rates.base_delay_us = 10'000;
  rates.jitter_delay_us = 5'000;
  const FaultPlan a(1234, rates);
  const FaultPlan b(1234, rates);
  const FaultPlan other(4321, rates);

  bool any_fault = false;
  bool streams_differ = false;
  for (std::uint64_t stream = 1; stream <= 4; ++stream) {
    for (std::size_t idx = 0; idx < 200; ++idx) {
      const FaultDecision da = a.decide(stream, idx);
      // Identical across instances and across repeated calls.
      EXPECT_EQ(static_cast<int>(da.kind),
                static_cast<int>(b.decide(stream, idx).kind));
      EXPECT_EQ(da.delay_us, b.decide(stream, idx).delay_us);
      EXPECT_EQ(da.delay_us, a.decide(stream, idx).delay_us);
      EXPECT_GE(da.delay_us, rates.base_delay_us);
      EXPECT_LT(da.delay_us, rates.base_delay_us + rates.jitter_delay_us);
      if (da.kind != FaultKind::kNone) any_fault = true;
      if (static_cast<int>(da.kind) !=
          static_cast<int>(a.decide(stream + 10, idx).kind)) {
        streams_differ = true;
      }
      if (static_cast<int>(da.kind) !=
          static_cast<int>(other.decide(stream, idx).kind)) {
        streams_differ = true;  // seed changes the schedule too
      }
    }
  }
  EXPECT_TRUE(any_fault);      // 30% fault mass over 800 draws
  EXPECT_TRUE(streams_differ); // streams are independent schedules
}

TEST(FaultPlan, ScriptedLayersOverrideRandomAndBlackout) {
  FaultRates rates;
  rates.drop = 1.0;  // random layer would drop everything
  FaultPlan plan(7, rates);
  plan.add_blackout(10, 20);
  plan.script_all_streams(10, {FaultKind::kCorrupt, 0});
  plan.script(3, 10, {FaultKind::kNone, 123});

  // Random layer (outside every scripted window): all drops.
  EXPECT_EQ(static_cast<int>(plan.decide(1, 5).kind),
            static_cast<int>(FaultKind::kDrop));
  // Blackout window maps to kDown.
  EXPECT_EQ(static_cast<int>(plan.decide(1, 15).kind),
            static_cast<int>(FaultKind::kDown));
  EXPECT_EQ(static_cast<int>(plan.decide(1, 19).kind),
            static_cast<int>(FaultKind::kDown));
  EXPECT_EQ(static_cast<int>(plan.decide(1, 20).kind),
            static_cast<int>(FaultKind::kDrop));  // window is half-open
  // All-stream script beats the blackout...
  EXPECT_EQ(static_cast<int>(plan.decide(1, 10).kind),
            static_cast<int>(FaultKind::kCorrupt));
  // ...and the per-stream script beats everything.
  EXPECT_EQ(static_cast<int>(plan.decide(3, 10).kind),
            static_cast<int>(FaultKind::kNone));
  EXPECT_EQ(plan.decide(3, 10).delay_us, 123u);
}

TEST(FaultPlan, KindNamesAreStable) {
  EXPECT_STREQ(fault_kind_name(FaultKind::kNone), "none");
  EXPECT_STREQ(fault_kind_name(FaultKind::kDrop), "drop");
  EXPECT_STREQ(fault_kind_name(FaultKind::kDuplicate), "duplicate");
  EXPECT_STREQ(fault_kind_name(FaultKind::kReorder), "reorder");
  EXPECT_STREQ(fault_kind_name(FaultKind::kCorrupt), "corrupt");
  EXPECT_STREQ(fault_kind_name(FaultKind::kDown), "down");
}

// ------------------------------------------------------------ chaos fixture

const core::TrainedModels& test_models() {
  return testing_util::standard_models(100);
}

struct ChaosFixture {
  const core::Deployment& office = testing_util::office_deployment();

  svc::UnilocFactory factory() {
    return [this](std::uint64_t sid) {
      return std::make_unique<core::Uniloc>(core::make_uniloc(
          office, test_models(), {}, false, /*seed=*/7 + sid));
    };
  }
};

svc::LinkFactory faulty_links(const FaultPlan* plan,
                              obs::MetricsRegistry* reg = nullptr) {
  return [plan, reg](svc::Endpoint& server, std::uint64_t sid) {
    return std::make_unique<FaultyLink>(
        std::make_unique<svc::DirectLink>(&server), plan, sid, reg);
  };
}

// ------------------------------------------------------------- drop bursts

TEST(Chaos, DropBurstConsumesExactRetryBudget) {
  ChaosFixture fx;
  obs::MetricsRegistry reg;
  LocalizationServer server({}, fx.factory(), &reg);

  // One walker, one send per epoch while healthy: epoch i rides send i
  // until the first fault shifts the mapping. Drop sends 5 and 6: epoch 5
  // burns attempt 1 (send 5) and retry 1 (send 6), then lands with retry
  // 2 (send 7). Budget is 1 + 3 attempts, so the phone never degrades.
  FaultPlan plan(0);
  plan.script(1, 5, {FaultKind::kDrop, 0});
  plan.script(1, 6, {FaultKind::kDrop, 0});

  LoadGenConfig lg;
  lg.walkers = 1;
  lg.max_epochs_per_walker = 12;
  lg.resilience.retry.max_retries = 3;
  lg.resilience.record_timeline = true;
  lg.make_link = faulty_links(&plan, &reg);
  const LoadReport report = run_load(server, fx.office, lg, &reg);

  ASSERT_EQ(report.walkers.size(), 1u);
  const WalkerOutcome& w = report.walkers[0];
  EXPECT_EQ(w.epochs_accepted, 12u);
  EXPECT_EQ(w.retries, 2u);
  EXPECT_EQ(w.timeouts, 2u);
  EXPECT_EQ(w.fallback_entries, 0u);
  EXPECT_EQ(w.local_epochs, 0u);
  ASSERT_EQ(w.timeline.size(), 12u);
  for (std::size_t e = 0; e < 12; ++e) {
    EXPECT_EQ(static_cast<int>(w.timeline[e].source),
              static_cast<int>(EpochEvent::Source::kServer))
        << "epoch " << e;
    EXPECT_EQ(w.timeline[e].attempts, e == 5 ? 3u : 1u) << "epoch " << e;
  }
  EXPECT_EQ(report.traffic.retransmits, 2u);
  EXPECT_GT(report.traffic.retransmitted_bytes, 0u);
  EXPECT_EQ(reg.counter("fault.injected.drop").value(), 2u);
  EXPECT_EQ(reg.counter("fault.retries").value(), 2u);
  EXPECT_EQ(reg.counter("fault.timeouts").value(), 2u);
  EXPECT_EQ(reg.counter("svc.degraded.enter").value(), 0u);
}

// -------------------------------------------------------------- corruption

TEST(Chaos, CorruptedFramesAreRejectedAndRetransmitted) {
  ChaosFixture fx;
  obs::MetricsRegistry reg;
  LocalizationServer server({}, fx.factory(), &reg);

  // Corrupt two sends. A corrupt frame still reaches the server, fails
  // the wire boundary (flipped magic byte), and comes back kMalformed;
  // the client treats that as detected corruption and retransmits.
  // Mapping: epoch 3 = sends 3+4, epochs 4..7 = sends 5..8,
  // epoch 8 = sends 9+10.
  FaultPlan plan(0);
  plan.script(1, 3, {FaultKind::kCorrupt, 0});
  plan.script(1, 9, {FaultKind::kCorrupt, 0});

  LoadGenConfig lg;
  lg.walkers = 1;
  lg.max_epochs_per_walker = 10;
  lg.resilience.record_timeline = true;
  lg.make_link = faulty_links(&plan, &reg);
  const LoadReport report = run_load(server, fx.office, lg, &reg);

  const WalkerOutcome& w = report.walkers[0];
  EXPECT_EQ(w.epochs_accepted, 10u);
  EXPECT_EQ(w.retries, 2u);
  EXPECT_EQ(w.errors, 2u);    // the two kMalformed rejections
  EXPECT_EQ(w.timeouts, 0u);  // corruption is detected, not timed out
  EXPECT_EQ(w.timeline[3].attempts, 2u);
  EXPECT_EQ(w.timeline[8].attempts, 2u);
  EXPECT_EQ(reg.counter("fault.injected.corrupt").value(), 2u);
  EXPECT_EQ(reg.counter("svc.malformed").value(), 2u);
  EXPECT_EQ(report.traffic.retransmits, 2u);
}

// ------------------------------------------------- blackout -> local PDR

TEST(Chaos, BlackoutFallsBackToLocalPdrWithinOneEpoch) {
  ChaosFixture fx;
  obs::MetricsRegistry reg;
  LocalizationServer server({}, fx.factory(), &reg);

  // Server blackout over sends [5, 12). With max_retries = 1 and
  // probe_period = 2 the exact schedule is:
  //   epochs 0..4   clean, sends 0..4
  //   epoch  5      sends 5+6 fail fast (kDown) -> enter fallback, local
  //   epoch  6      local (counting down to the next probe)
  //   epochs 7,9,11,13,15  probes on sends 7..11, all kDown -> local
  //   epochs 8,10,12,14,16 local between probes
  //   epoch 17      probe on send 12: the blackout is over -> server fix,
  //                 exit fallback
  //   epochs 18,19  clean, sends 13,14
  FaultPlan plan(0);
  plan.add_blackout(5, 12);

  LoadGenConfig lg;
  lg.walkers = 1;
  lg.max_epochs_per_walker = 20;
  lg.resilience.retry.max_retries = 1;
  lg.resilience.probe_period = 2;
  lg.resilience.record_timeline = true;
  lg.make_link = faulty_links(&plan, &reg);
  const LoadReport report = run_load(server, fx.office, lg, &reg);

  const WalkerOutcome& w = report.walkers[0];
  ASSERT_EQ(w.timeline.size(), 20u);

  // Epoch-by-epoch: where each estimate came from.
  for (std::size_t e = 0; e < 20; ++e) {
    const bool expect_local = e >= 5 && e <= 16;
    EXPECT_EQ(static_cast<int>(w.timeline[e].source),
              static_cast<int>(expect_local ? EpochEvent::Source::kLocal
                                            : EpochEvent::Source::kServer))
        << "epoch " << e;
    EXPECT_EQ(w.timeline[e].degraded_after, e >= 5 && e < 17)
        << "epoch " << e;
  }
  // Fallback entered on the epoch of the first failure -- within one
  // (virtual) timeout, not after a grace period of blind epochs.
  EXPECT_TRUE(w.timeline[5].entered_fallback);
  EXPECT_EQ(w.timeline[5].attempts, 2u);  // 1 + max_retries, both kDown
  EXPECT_TRUE(w.timeline[17].exited_fallback);
  EXPECT_EQ(w.timeline[17].attempts, 1u);  // first probe after recovery
  EXPECT_EQ(w.fallback_entries, 1u);
  EXPECT_EQ(w.fallback_exits, 1u);
  EXPECT_EQ(w.local_epochs, 12u);
  EXPECT_EQ(w.epochs_accepted, 8u);
  EXPECT_EQ(w.rehellos, 0u);  // session survived (no eviction here)
  // Attempts: epoch 5 used 2, probes at 7/9/11/13/15 used 1 each = 7
  // sends into the blackout; all of them timed out.
  EXPECT_EQ(w.timeouts, 7u);
  EXPECT_EQ(w.retries, 1u);  // only epoch 5 had retry budget to burn
  EXPECT_EQ(reg.counter("fault.injected.down").value(), 7u);
  EXPECT_EQ(reg.counter("svc.degraded.enter").value(), 1u);
  EXPECT_EQ(reg.counter("svc.degraded.exit").value(), 1u);
  EXPECT_EQ(reg.counter("svc.degraded.epochs").value(), 12u);

  // Dead-reckoning keeps the error bounded through the whole outage: the
  // drift budget over a ~12-epoch office walk is a few meters.
  for (std::size_t e = 5; e <= 16; ++e) {
    EXPECT_LT(w.timeline[e].error_m, 15.0) << "epoch " << e;
  }
  // And the fallback track is continuous (one step per epoch, < 4 m).
  for (std::size_t e = 6; e <= 16; ++e) {
    EXPECT_LT(geo::distance(w.timeline[e].estimate,
                            w.timeline[e - 1].estimate),
              offload::StepPayload::kMaxDistance)
        << "epoch " << e;
  }
}

// ------------------------------------- eviction, re-hello, reconciliation

TEST(Chaos, EvictedSessionRehellosSeededAtLocalEstimate) {
  ChaosFixture fx;
  obs::MetricsRegistry reg;
  sim::VirtualClock clock;

  ServerConfig scfg;
  scfg.idle_ttl_s = 3.0;
  scfg.evict_scan_period = 1;  // TTL-scan on every accepted frame
  scfg.now_us = clock.now_fn();
  LocalizationServer server(scfg, fx.factory(), &reg);

  // Phone 1 loses the server for sends 5..15 (kDown, scripted per-stream
  // so phone 2 stays clean). Probing every 2nd epoch, its probes ride
  // sends 7, 8, 9, ... and the first one past the outage is send 16 at
  // epoch 25. By then the virtual clock (0.5 s per round) has run ~10 s
  // past the phone's last accepted frame, phone 2's traffic has kept the
  // TTL scanner running, and session 1 is long evicted -- so the probe
  // answers kUnknownSession and the phone re-hellos, seeded at its local
  // dead-reckoned estimate.
  FaultPlan plan(0);
  for (std::size_t idx = 5; idx <= 15; ++idx) {
    plan.script(1, idx, {FaultKind::kDown, 0});
  }

  LoadGenConfig lg;
  lg.walkers = 2;
  lg.max_epochs_per_walker = 30;
  lg.resilience.retry.max_retries = 1;
  lg.resilience.probe_period = 2;
  lg.resilience.record_timeline = true;
  lg.make_link = faulty_links(&plan, &reg);
  lg.clock = &clock;
  lg.epoch_period_s = 0.5;
  const LoadReport report = run_load(server, fx.office, lg, &reg);

  ASSERT_EQ(report.walkers.size(), 2u);
  const WalkerOutcome& w1 = report.walkers[0];
  const WalkerOutcome& w2 = report.walkers[1];

  // Phone 2 never notices anything.
  EXPECT_EQ(w2.epochs_accepted, 30u);
  EXPECT_EQ(w2.retries, 0u);
  EXPECT_EQ(w2.fallback_entries, 0u);
  EXPECT_EQ(w2.rehellos, 0u);

  // Phone 1: outage epochs 5..24 served locally, reconnect at epoch 25
  // requires a re-hello because the server evicted the session mid-way.
  EXPECT_GE(reg.counter("svc.evicted").value(), 1u);
  EXPECT_EQ(w1.rehellos, 1u);
  EXPECT_EQ(w1.fallback_entries, 1u);
  EXPECT_EQ(w1.fallback_exits, 1u);
  EXPECT_EQ(w1.local_epochs, 20u);
  EXPECT_EQ(w1.epochs_accepted, 10u);  // epochs 0..4 and 25..29
  ASSERT_EQ(w1.timeline.size(), 30u);
  EXPECT_TRUE(w1.timeline[25].rehello);
  EXPECT_TRUE(w1.timeline[25].exited_fallback);
  EXPECT_EQ(static_cast<int>(w1.timeline[25].source),
            static_cast<int>(EpochEvent::Source::kServer));
  EXPECT_EQ(reg.counter("svc.degraded.rehello").value(), 1u);

  // Reconciliation: the re-opened session was seeded at the phone's
  // dead-reckoned estimate, so the first server fix lands next to the
  // local track instead of snapping somewhere stale.
  EXPECT_LT(geo::distance(w1.timeline[25].estimate,
                          w1.timeline[24].estimate),
            10.0);
}

// ---------------------------------------------- determinism under chaos

LoadReport chaos_fleet(ChaosFixture& fx, const FaultPlan* plan,
                       int workers) {
  ServerConfig scfg;
  scfg.workers = workers;
  LocalizationServer server(scfg, fx.factory(), nullptr);
  LoadGenConfig lg;
  lg.walkers = 4;
  lg.max_epochs_per_walker = 16;
  lg.resilience.record_timeline = true;
  lg.make_link = faulty_links(plan);
  LoadReport report = run_load(server, fx.office, lg, nullptr);
  server.shutdown();
  return report;
}

void expect_same_outcomes(const LoadReport& a, const LoadReport& b) {
  ASSERT_EQ(a.walkers.size(), b.walkers.size());
  EXPECT_EQ(a.traffic.uplink_bytes, b.traffic.uplink_bytes);
  EXPECT_EQ(a.traffic.retransmitted_bytes, b.traffic.retransmitted_bytes);
  for (std::size_t i = 0; i < a.walkers.size(); ++i) {
    const WalkerOutcome& x = a.walkers[i];
    const WalkerOutcome& y = b.walkers[i];
    EXPECT_EQ(x.epochs_accepted, y.epochs_accepted) << "session " << i;
    EXPECT_EQ(x.retries, y.retries) << "session " << i;
    EXPECT_EQ(x.timeouts, y.timeouts) << "session " << i;
    EXPECT_EQ(x.local_epochs, y.local_epochs) << "session " << i;
    EXPECT_EQ(x.rehellos, y.rehellos) << "session " << i;
    EXPECT_DOUBLE_EQ(x.mean_error_m, y.mean_error_m) << "session " << i;
    EXPECT_DOUBLE_EQ(x.final_estimate.x, y.final_estimate.x);
    EXPECT_DOUBLE_EQ(x.final_estimate.y, y.final_estimate.y);
    ASSERT_EQ(x.timeline.size(), y.timeline.size());
    for (std::size_t e = 0; e < x.timeline.size(); ++e) {
      EXPECT_EQ(static_cast<int>(x.timeline[e].source),
                static_cast<int>(y.timeline[e].source))
          << "session " << i << " epoch " << e;
      EXPECT_EQ(x.timeline[e].attempts, y.timeline[e].attempts);
      EXPECT_DOUBLE_EQ(x.timeline[e].estimate.x, y.timeline[e].estimate.x);
      EXPECT_DOUBLE_EQ(x.timeline[e].estimate.y, y.timeline[e].estimate.y);
    }
  }
}

TEST(Chaos, SeededChaosIsBitReproducible) {
  ChaosFixture fx;
  FaultRates rates;
  rates.drop = 0.05;
  rates.duplicate = 0.02;
  rates.reorder = 0.02;
  rates.corrupt = 0.02;
  rates.base_delay_us = 10'000;
  rates.jitter_delay_us = 5'000;
  const FaultPlan plan(99, rates);
  const LoadReport a = chaos_fleet(fx, &plan, /*workers=*/0);
  const LoadReport b = chaos_fleet(fx, &plan, /*workers=*/0);
  EXPECT_GT(a.retries_total + a.timeouts_total, 0u);  // chaos actually hit
  expect_same_outcomes(a, b);
}

TEST(Chaos, WorkerThreadsDoNotChangeTheFaultSequence) {
  // Fault decisions hash (seed, session, send_index), so per-session
  // outcomes must be identical whether the server runs inline or on a
  // racing worker pool.
  ChaosFixture fx;
  FaultRates rates;
  rates.drop = 0.05;
  rates.corrupt = 0.02;
  rates.base_delay_us = 10'000;
  const FaultPlan plan(7, rates);
  const LoadReport inline_run = chaos_fleet(fx, &plan, /*workers=*/0);
  const LoadReport threaded = chaos_fleet(fx, &plan, /*workers=*/2);
  expect_same_outcomes(inline_run, threaded);
}

// -------------------------------------------------- traffic accounting

TEST(Chaos, RetransmitsAreChargedOnTopOfCleanTraffic) {
  ChaosFixture fx;

  auto run_once = [&fx](const FaultPlan* plan) {
    LocalizationServer server({}, fx.factory(), nullptr);
    LoadGenConfig lg;
    lg.walkers = 1;
    lg.max_epochs_per_walker = 15;
    if (plan != nullptr) lg.make_link = faulty_links(plan);
    return run_load(server, fx.office, lg, nullptr);
  };

  // Two isolated single-drops: each is retried once and recovered, so
  // the server sees the same epoch stream as the clean run and the only
  // wire difference is the two retransmitted frames.
  FaultPlan plan(0);
  plan.script(1, 2, {FaultKind::kDrop, 0});
  plan.script(1, 7, {FaultKind::kDrop, 0});

  const LoadReport clean = run_once(nullptr);
  const LoadReport chaos = run_once(&plan);

  EXPECT_EQ(clean.traffic.retransmits, 0u);
  EXPECT_EQ(clean.traffic.retransmitted_bytes, 0u);
  EXPECT_EQ(chaos.traffic.retransmits, 2u);
  EXPECT_EQ(chaos.total_epochs, clean.total_epochs);
  EXPECT_EQ(chaos.traffic.downlink_bytes, clean.traffic.downlink_bytes);
  // The radio pays for every attempt: chaos uplink = clean uplink plus
  // exactly the retransmitted bytes.
  EXPECT_EQ(chaos.traffic.uplink_bytes,
            clean.traffic.uplink_bytes + chaos.traffic.retransmitted_bytes);
}

TEST(Chaos, DuplicateAndReorderKeepTheSessionAlive) {
  // Duplicates double-update the server filter and reorders deliver a
  // stale fix -- both are degradations, not failures: no retries, no
  // fallback, every epoch still answered.
  ChaosFixture fx;
  obs::MetricsRegistry reg;
  LocalizationServer server({}, fx.factory(), &reg);

  FaultPlan plan(0);
  plan.script(1, 4, {FaultKind::kDuplicate, 0});
  plan.script(1, 8, {FaultKind::kReorder, 0});
  plan.script(1, 9, {FaultKind::kReorder, 0});

  LoadGenConfig lg;
  lg.walkers = 1;
  lg.max_epochs_per_walker = 14;
  lg.resilience.record_timeline = true;
  lg.make_link = faulty_links(&plan, &reg);
  const LoadReport report = run_load(server, fx.office, lg, &reg);

  const WalkerOutcome& w = report.walkers[0];
  EXPECT_EQ(w.epochs_accepted, 14u);
  EXPECT_EQ(w.retries, 0u);
  EXPECT_EQ(w.fallback_entries, 0u);
  EXPECT_EQ(reg.counter("fault.injected.duplicate").value(), 1u);
  EXPECT_EQ(reg.counter("fault.injected.reorder").value(), 2u);
  // The duplicate was processed server-side as an extra accepted epoch.
  EXPECT_EQ(reg.counter("svc.accepted").value(),
            1u /*hello*/ + 14u + 1u /*dup*/ + 1u /*bye*/);
  // Consecutive reorders deliver stale fixes; the estimates still land
  // (kReply frames parse), so accuracy degrades but the session lives.
  for (const EpochEvent& ev : w.timeline) {
    EXPECT_EQ(static_cast<int>(ev.source),
              static_cast<int>(EpochEvent::Source::kServer));
  }
}

// -------------------------------------------------- chaos with tracing
//
// The trace_* tests are the tier-2 chaos-with-tracing gate
// (scripts/check.sh reruns them by name under ASan): scripted disasters
// with the span tracer attached must close every span they open.

/// Link factory that wires the tracer into every FaultyLink, so link.send
/// spans nest under the client's ambient attempt span.
svc::LinkFactory traced_faulty_links(const FaultPlan* plan,
                                     obs::SpanTracer* tracer) {
  return [plan, tracer](svc::Endpoint& server, std::uint64_t sid) {
    return std::make_unique<FaultyLink>(
        std::make_unique<svc::DirectLink>(&server), plan, sid, nullptr,
        tracer);
  };
}

TEST(Chaos, trace_zero_span_leak_under_seeded_chaos) {
  // Background fault soup plus a blackout window: every epoch abandoned
  // to a drop, timeout, fallback entry, or backpressure must still end
  // its client.epoch root and every child span. The counters make a
  // leak mechanical to detect, at workers 0 and 4 alike.
  ChaosFixture fx;
  FaultRates rates;
  rates.drop = 0.08;
  rates.duplicate = 0.04;
  rates.reorder = 0.04;
  rates.corrupt = 0.04;
  FaultPlan plan(77, rates);
  plan.add_blackout(40, 52);

  for (const int workers : {0, 4}) {
    obs::NullSpanSink sink;
    obs::SpanTracer tracer(&sink);
    svc::ServerConfig cfg;
    cfg.workers = workers;
    cfg.tracer = &tracer;
    LocalizationServer server(cfg, fx.factory(), nullptr);

    LoadGenConfig lg;
    lg.walkers = 3;
    lg.max_epochs_per_walker = 25;
    lg.tracer = &tracer;
    lg.make_link = traced_faulty_links(&plan, &tracer);
    const LoadReport report = run_load(server, fx.office, lg, nullptr);
    // A walker that timed out can leave its server epoch still in
    // flight when run_load returns; the graceful shutdown drains
    // exactly those tasks, closing their spans, before we count.
    server.shutdown();

    EXPECT_GT(report.total_epochs, 0u) << "workers=" << workers;
    EXPECT_GT(tracer.spans_opened(), 0u) << "workers=" << workers;
    EXPECT_EQ(tracer.spans_opened(), tracer.spans_closed())
        << "workers=" << workers;
  }
}

TEST(Chaos, trace_spans_annotate_fault_outcomes) {
  // A scripted drop shows up as causal annotations: the injected
  // link.send span carries note "drop", the retry rides a second
  // client.attempt under the same epoch root, and every epoch root still
  // closes as "accepted".
  ChaosFixture fx;
  obs::VectorSpanSink sink;
  obs::SpanTracer tracer(&sink);
  svc::ServerConfig cfg;
  cfg.tracer = &tracer;
  LocalizationServer server(cfg, fx.factory(), nullptr);

  FaultPlan plan(0);
  plan.script(1, 5, {FaultKind::kDrop, 0});

  LoadGenConfig lg;
  lg.walkers = 1;
  lg.max_epochs_per_walker = 12;
  lg.tracer = &tracer;
  lg.make_link = traced_faulty_links(&plan, &tracer);
  const LoadReport report = run_load(server, fx.office, lg, nullptr);
  EXPECT_EQ(report.walkers[0].epochs_accepted, 12u);
  EXPECT_EQ(tracer.spans_opened(), tracer.spans_closed());

  std::size_t dropped_sends = 0, ok_sends = 0, roots = 0, attempts = 0;
  std::uint64_t drop_trace = 0;
  for (const obs::SpanEvent& ev : sink.events()) {
    if (ev.name == "link.send" && ev.note == "drop") {
      ++dropped_sends;
      drop_trace = ev.trace_id;
    }
    if (ev.name == "link.send" && ev.note == "ok") ++ok_sends;
    if (ev.name == "client.epoch") {
      ++roots;
      EXPECT_EQ(ev.parent_id, 0u);
      EXPECT_EQ(ev.note, "accepted");
    }
    if (ev.name == "client.attempt") ++attempts;
  }
  EXPECT_EQ(dropped_sends, 1u);
  EXPECT_EQ(roots, 12u);
  // Epoch 5 burned one extra attempt on the dropped send.
  EXPECT_EQ(attempts, 13u);
  // The drop and its retry share one trace: two attempts under the
  // dropped epoch's root.
  std::size_t attempts_in_drop_trace = 0;
  for (const obs::SpanEvent& ev : sink.events()) {
    if (ev.trace_id == drop_trace && ev.name == "client.attempt") {
      ++attempts_in_drop_trace;
    }
  }
  EXPECT_EQ(attempts_in_drop_trace, 2u);
  EXPECT_GT(ok_sends, 0u);
}

TEST(Chaos, trace_crash_flight_dump_is_deterministic) {
  // A scripted mid-run crash dumps the flight recorder before the in-RAM
  // state dies. The dump reconstructs every session's recent epochs and,
  // because flight events carry no wall-clock fields, a same-seed rerun
  // produces byte-identical files.
  ChaosFixture fx;
  const std::string base = testing::TempDir() + "flight_crash_test/";
  std::filesystem::remove_all(base);

  const auto run_once = [&fx](const std::string& dir) {
    std::filesystem::create_directories(dir);
    obs::FlightRecorder flight(32);
    svc::ServerConfig cfg;
    cfg.flight = &flight;
    LocalizationServer server(cfg, fx.factory(), nullptr);

    FaultPlan plan(2024);
    plan.script_crash(5);
    plan.script_crash(9);
    fault::CrashInjector injector(&server, &plan);
    injector.attach_flight(&flight, dir);

    LoadGenConfig lg;
    lg.walkers = 2;
    lg.max_epochs_per_walker = 12;
    lg.seed = 2024;
    lg.flight = &flight;  // client + server share the black box
    lg.on_round = [&injector](std::size_t round) {
      injector.on_round(round);
    };
    const LoadReport report = run_load(server, fx.office, lg, nullptr);
    EXPECT_EQ(report.total_epochs, 24u);
    EXPECT_EQ(injector.crashes(), 2u);
    EXPECT_EQ(injector.restore_failures(), 0u);
    return injector.flight_dumps();
  };

  const std::vector<std::string> first = run_once(base + "run1/");
  const std::vector<std::string> second = run_once(base + "run2/");
  ASSERT_EQ(first.size(), 2u);
  ASSERT_EQ(second.size(), 2u);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_NE(first[i], second[i]);  // distinct files...
    const std::string a = slurp(first[i]);
    const std::string b = slurp(second[i]);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b) << first[i];  // ...identical bytes
    // The black box holds the crash marker and both walker sessions'
    // recent epochs (client submit/accept + the server's decisions).
    EXPECT_NE(a.find("\"kind\":\"crash\""), std::string::npos);
    EXPECT_NE(a.find("\"kind\":\"epoch_submit\""), std::string::npos);
    EXPECT_NE(a.find("\"kind\":\"server_epoch\""), std::string::npos);
    EXPECT_NE(a.find("\"events_seen\""), std::string::npos);
  }
  // The second crash happened later, so its dump holds more history.
  EXPECT_NE(slurp(first[0]), slurp(first[1]));
  std::filesystem::remove_all(base);
}

}  // namespace
}  // namespace uniloc
