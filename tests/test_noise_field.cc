#include "stats/noise_field.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.h"

namespace uniloc::stats {
namespace {

TEST(NoiseField, DeterministicAcrossInstances) {
  const NoiseField a(42, 10.0, 4.0);
  const NoiseField b(42, 10.0, 4.0);
  for (double x = -50.0; x <= 50.0; x += 7.3) {
    EXPECT_DOUBLE_EQ(a.at({x, 2.0 * x}), b.at({x, 2.0 * x}));
  }
}

TEST(NoiseField, DifferentStreamsDiffer) {
  const NoiseField a(1, 10.0, 4.0);
  const NoiseField b(2, 10.0, 4.0);
  int same = 0;
  for (double x = 0.0; x < 100.0; x += 3.1) {
    if (std::fabs(a.at({x, 0.0}) - b.at({x, 0.0})) < 1e-9) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(NoiseField, SpatiallySmooth) {
  const NoiseField f(7, 10.0, 4.0);
  // Values 10 cm apart must be close relative to the amplitude.
  for (double x = 0.0; x < 50.0; x += 1.7) {
    const double d = std::fabs(f.at({x, 5.0}) - f.at({x + 0.1, 5.0}));
    EXPECT_LT(d, 0.5);
  }
}

TEST(NoiseField, DecorrelatesBeyondCorrelationLength) {
  const NoiseField f(9, 5.0, 1.0);
  // Correlation between points 10x the correlation length apart ~ 0:
  // estimate empirically over many probe pairs.
  std::vector<double> a, b;
  for (int i = 0; i < 300; ++i) {
    const double x = i * 13.7;
    a.push_back(f.at({x, 0.0}));
    b.push_back(f.at({x + 50.0, 1000.0}));
  }
  double cov = 0.0;
  const double ma = mean(a), mb = mean(b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
  }
  cov /= static_cast<double>(a.size() - 1);
  const double corr = cov / (stddev(a) * stddev(b));
  EXPECT_LT(std::fabs(corr), 0.15);
}

TEST(NoiseField, ApproximatelyZeroMeanUnitScale) {
  const NoiseField f(3, 8.0, 4.0);
  std::vector<double> vals;
  for (int i = 0; i < 2000; ++i) {
    vals.push_back(f.at({i * 17.3, i * 11.1}));
  }
  EXPECT_NEAR(mean(vals), 0.0, 0.3);
  EXPECT_NEAR(stddev(vals), 4.0, 1.2);  // amplitude ~ point-wise sd
}

TEST(NoiseField, AccessorssReturnParameters) {
  const NoiseField f(3, 8.0, 4.0);
  EXPECT_DOUBLE_EQ(f.amplitude(), 4.0);
  EXPECT_DOUBLE_EQ(f.correlation(), 8.0);
}

TEST(NoiseField, NegativeCoordinates) {
  const NoiseField f(5, 10.0, 2.0);
  // Must be continuous across the origin (floor vs trunc bug guard).
  const double eps = 1e-6;
  EXPECT_NEAR(f.at({-eps, 0.0}), f.at({eps, 0.0}), 0.01);
  EXPECT_NEAR(f.at({0.0, -eps}), f.at({0.0, eps}), 0.01);
}

}  // namespace
}  // namespace uniloc::stats
