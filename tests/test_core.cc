#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/confidence.h"
#include "core/error_model.h"
#include "core/features.h"
#include "core/iodetector.h"

namespace uniloc::core {
namespace {

// ------------------------------------------------------------- confidence

TEST(Confidence, HalfAtThreshold) {
  EXPECT_NEAR(confidence({5.0, 2.0}, 5.0), 0.5, 1e-12);
}

TEST(Confidence, HighWhenPredictedErrorSmall) {
  EXPECT_GT(confidence({1.0, 1.0}, 10.0), 0.99);
  EXPECT_LT(confidence({20.0, 1.0}, 10.0), 0.01);
}

TEST(Confidence, MonotoneInThreshold) {
  double prev = 0.0;
  for (double tau = 0.0; tau <= 20.0; tau += 0.5) {
    const double c = confidence({8.0, 3.0}, tau);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(Confidence, UncertaintyFlattensTheCurve) {
  // Far below the threshold a tighter prediction is MORE confident...
  EXPECT_GT(confidence({2.0, 0.5}, 8.0), confidence({2.0, 5.0}, 8.0));
  // ...and far above the threshold it is LESS confident.
  EXPECT_LT(confidence({20.0, 0.5}, 8.0), confidence({20.0, 5.0}, 8.0));
}

TEST(AdaptiveTau, MeanOfPredictions) {
  EXPECT_DOUBLE_EQ(adaptive_tau({{2.0, 1.0}, {4.0, 1.0}, {6.0, 1.0}}), 4.0);
  EXPECT_DOUBLE_EQ(adaptive_tau({}), 0.0);
}

TEST(BmaWeights, NormalizedAndProportional) {
  const std::vector<double> w = bma_weights({1.0, 3.0});
  EXPECT_NEAR(w[0], 0.25, 1e-12);
  EXPECT_NEAR(w[1], 0.75, 1e-12);
}

TEST(BmaWeights, ZeroConfidenceIsExcluded) {
  const std::vector<double> w = bma_weights({0.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(w[0], 0.0);
  EXPECT_NEAR(w[1], 0.5, 1e-12);
}

TEST(BmaWeights, AllZeroStaysZero) {
  const std::vector<double> w = bma_weights({0.0, 0.0});
  EXPECT_DOUBLE_EQ(w[0], 0.0);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
}

// ------------------------------------------------------------ error model

TEST(ErrorModel, ConstantIgnoresFeatures) {
  const ErrorModel m = ErrorModel::constant(13.5, 9.4);
  EXPECT_TRUE(m.is_constant());
  const stats::Gaussian g1 = m.predict({}, true);
  const std::vector<double> x{100.0};
  const stats::Gaussian g2 = m.predict(x, false);
  EXPECT_DOUBLE_EQ(g1.mean, 13.5);
  EXPECT_DOUBLE_EQ(g2.mean, 13.5);
  EXPECT_DOUBLE_EQ(g1.sd, 9.4);
}

stats::LinearModel fake_model(double b0, std::vector<double> betas,
                              double sd) {
  stats::LinearModel m;
  m.has_intercept = true;
  m.coefficients.push_back({"(intercept)", b0, 0.0, 0.0, 0.0});
  for (std::size_t i = 0; i < betas.size(); ++i) {
    m.coefficients.push_back({"x" + std::to_string(i), betas[i], 0.0, 0.0,
                              0.0});
  }
  m.residual_sd = sd;
  return m;
}

TEST(ErrorModel, FittedSelectsEnvironment) {
  const ErrorModel m = ErrorModel::fitted(fake_model(1.0, {1.0}, 0.5),
                                          fake_model(10.0, {2.0}, 3.0));
  const std::vector<double> x{2.0};
  EXPECT_DOUBLE_EQ(m.predict(x, true).mean, 3.0);    // 1 + 1*2
  EXPECT_DOUBLE_EQ(m.predict(x, false).mean, 14.0);  // 10 + 2*2
  EXPECT_DOUBLE_EQ(m.predict(x, true).sd, 0.5);
}

TEST(ErrorModel, PredictionClampedNonNegative) {
  const ErrorModel m =
      ErrorModel::fitted_single(fake_model(-5.0, {0.1}, 1.0));
  const std::vector<double> x{1.0};
  EXPECT_GE(m.predict(x, true).mean, 0.1);
}

TEST(ErrorModel, ExtraFeaturesIgnored) {
  // Fusion passes 3 features; the aliased motion-outdoor model uses 2.
  const ErrorModel m =
      ErrorModel::fitted_single(fake_model(1.0, {1.0, 1.0}, 1.0));
  const std::vector<double> x{2.0, 3.0, 99.0};
  EXPECT_DOUBLE_EQ(m.predict(x, false).mean, 6.0);  // third ignored
}

TEST(ErrorModel, SetOutdoorModelAliases) {
  ErrorModel m = ErrorModel::fitted(fake_model(1.0, {1.0}, 1.0),
                                    fake_model(2.0, {1.0}, 1.0));
  m.set_outdoor_model(fake_model(50.0, {0.0}, 1.0));
  const std::vector<double> x{0.0};
  EXPECT_DOUBLE_EQ(m.predict(x, false).mean, 50.0);
  EXPECT_DOUBLE_EQ(m.predict(x, true).mean, 1.0);
}

// -------------------------------------------------------------- features

TEST(Features, NamesMatchExtractionArity) {
  using SF = schemes::SchemeFamily;
  for (SF f : {SF::kGps, SF::kWifiFingerprint, SF::kCellFingerprint,
               SF::kMotionPdr, SF::kFusion, SF::kOther}) {
    sim::SensorFrame frame;
    schemes::SchemeOutput out;
    FeatureContext ctx;
    EXPECT_EQ(extract_features(f, frame, out, ctx).size(),
              feature_names(f).size());
    EXPECT_EQ(extract_candidate_features(f, frame, out, ctx).size(),
              candidate_feature_names(f).size());
  }
}

TEST(Features, GpsHasNoFeatures) {
  EXPECT_TRUE(feature_names(schemes::SchemeFamily::kGps).empty());
}

TEST(Features, CandidateSupersetOfModelFeatures) {
  using SF = schemes::SchemeFamily;
  for (SF f : {SF::kWifiFingerprint, SF::kMotionPdr, SF::kFusion}) {
    const auto base = feature_names(f);
    const auto cand = candidate_feature_names(f);
    ASSERT_GE(cand.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(cand[i], base[i]);
    }
  }
}

TEST(Features, MotionReadsObservables) {
  sim::SensorFrame frame;
  schemes::SchemeOutput out;
  out.observables["dist_since_landmark"] = 42.0;
  FeatureContext ctx;
  const auto x =
      extract_features(schemes::SchemeFamily::kMotionPdr, frame, out, ctx);
  EXPECT_DOUBLE_EQ(x[0], 42.0);
}

TEST(Features, MissingDatabaseGivesConservativeDensity) {
  sim::SensorFrame frame;
  schemes::SchemeOutput out;
  FeatureContext ctx;  // null dbs
  const auto x = extract_features(schemes::SchemeFamily::kWifiFingerprint,
                                  frame, out, ctx);
  EXPECT_DOUBLE_EQ(x[0], 50.0);  // "very sparse"
}

// ------------------------------------------------------------- iodetector

sim::SensorFrame ambient_frame(double lux, double mag_sd, double cell_rssi) {
  sim::SensorFrame f;
  f.ambient.light_lux = lux;
  f.ambient.mag_field_sd_ut = mag_sd;
  f.cell = {{1, cell_rssi}};
  return f;
}

TEST(IoDetector, ClassifiesClearCases) {
  const IoDetector d;
  EXPECT_TRUE(d.is_indoor(ambient_frame(300.0, 5.0, -95.0)));
  EXPECT_FALSE(d.is_indoor(ambient_frame(12000.0, 0.7, -60.0)));
}

TEST(IoDetector, MajorityVoteOnMixedSignals) {
  const IoDetector d;
  // Bright but magnetically noisy with weak cellular: 2 of 3 indoor votes.
  EXPECT_TRUE(d.is_indoor(ambient_frame(12000.0, 5.0, -95.0)));
}

TEST(IoDetector, WorksWithoutCellular) {
  const IoDetector d;
  sim::SensorFrame f;
  f.ambient.light_lux = 100.0;
  f.ambient.mag_field_sd_ut = 6.0;
  EXPECT_TRUE(d.is_indoor(f));
}

TEST(IoDetector, ScoreSignConsistentWithClassification) {
  const IoDetector d;
  const sim::SensorFrame f = ambient_frame(200.0, 4.0, -90.0);
  EXPECT_EQ(d.is_indoor(f), d.indoor_score(f) > 0.0);
}

// -------------------------------------------------------------- baselines

schemes::SchemeOutput output_at(geo::Vec2 p, bool available = true) {
  schemes::SchemeOutput o;
  o.available = available;
  o.estimate = p;
  o.posterior = schemes::Posterior::point(p);
  return o;
}

TEST(Oracle, PicksMinimumError) {
  const std::vector<schemes::SchemeOutput> outs{
      output_at({0.0, 10.0}), output_at({0.0, 1.0}), output_at({5.0, 0.0})};
  EXPECT_EQ(oracle_choice(outs, {0.0, 0.0}), 1);
}

TEST(Oracle, SkipsUnavailable) {
  const std::vector<schemes::SchemeOutput> outs{
      output_at({0.0, 0.1}, false), output_at({0.0, 5.0})};
  EXPECT_EQ(oracle_choice(outs, {0.0, 0.0}), 1);
}

TEST(Oracle, NoneAvailable) {
  const std::vector<schemes::SchemeOutput> outs{output_at({0.0, 0.0}, false)};
  EXPECT_EQ(oracle_choice(outs, {0.0, 0.0}), -1);
}

TEST(GlobalBma, WeightsInverseToTrainingError) {
  const GlobalWeightBma bma({2.0, 4.0});
  EXPECT_NEAR(bma.weights()[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(bma.weights()[1], 1.0 / 3.0, 1e-12);
}

TEST(GlobalBma, CombineUsesFixedWeights) {
  const GlobalWeightBma bma({1.0, 1.0});
  const std::vector<schemes::SchemeOutput> outs{output_at({0.0, 0.0}),
                                                output_at({4.0, 0.0})};
  EXPECT_NEAR(bma.combine(outs).x, 2.0, 1e-12);
}

TEST(GlobalBma, RenormalizesOverAvailable) {
  const GlobalWeightBma bma({1.0, 1.0});
  const std::vector<schemes::SchemeOutput> outs{
      output_at({0.0, 0.0}, false), output_at({4.0, 0.0})};
  EXPECT_NEAR(bma.combine(outs).x, 4.0, 1e-12);
}

TEST(GlobalBma, RejectsNonPositiveErrors) {
  EXPECT_THROW(GlobalWeightBma({1.0, 0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace uniloc::core
