#include "stats/regression.h"

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace uniloc::stats {
namespace {

/// Synthetic dataset y = b0 + b1 x1 + b2 x2 + noise.
struct Synthetic {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
};

Synthetic make_data(double b0, double b1, double b2, double noise_sd,
                    std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Synthetic d;
  for (std::size_t i = 0; i < n; ++i) {
    const double x1 = rng.uniform(0.0, 50.0);
    const double x2 = rng.uniform(0.0, 10.0);
    d.x.push_back({x1, x2});
    d.y.push_back(b0 + b1 * x1 + b2 * x2 + rng.normal(0.0, noise_sd));
  }
  return d;
}

TEST(Ols, RecoversCoefficientsExactlyWithoutNoise) {
  const Synthetic d = make_data(2.0, 0.5, -1.5, 0.0, 100, 1);
  const LinearModel m = fit_ols(d.x, d.y);
  ASSERT_EQ(m.coefficients.size(), 3u);
  // Tolerances account for the intentional tiny ridge in fit_ols.
  EXPECT_NEAR(m.coefficients[0].estimate, 2.0, 1e-4);
  EXPECT_NEAR(m.coefficients[1].estimate, 0.5, 1e-5);
  EXPECT_NEAR(m.coefficients[2].estimate, -1.5, 1e-5);
  EXPECT_NEAR(m.r_squared, 1.0, 1e-9);
  EXPECT_NEAR(m.residual_sd, 0.0, 1e-4);
}

class OlsRecovery : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OlsRecovery, RecoversCoefficientsWithNoise) {
  const Synthetic d = make_data(1.0, 0.3, -0.8, 1.0, 500, GetParam());
  const LinearModel m = fit_ols(d.x, d.y);
  EXPECT_NEAR(m.coefficients[0].estimate, 1.0, 0.5);
  EXPECT_NEAR(m.coefficients[1].estimate, 0.3, 0.05);
  EXPECT_NEAR(m.coefficients[2].estimate, -0.8, 0.15);
  EXPECT_NEAR(m.residual_sd, 1.0, 0.2);
  // Both features explain most variance here.
  EXPECT_GT(m.r_squared, 0.8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OlsRecovery,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Ols, SignificantFeatureHasSmallPValue) {
  const Synthetic d = make_data(0.0, 1.0, 0.0, 0.5, 300, 9);
  const LinearModel m = fit_ols(d.x, d.y, {"real", "junk"});
  EXPECT_LT(m.coefficients[1].p_value, 0.001);  // x1 truly matters
  EXPECT_GT(m.coefficients[2].p_value, 0.01);   // x2 is noise
  EXPECT_EQ(m.coefficients[1].name, "real");
  EXPECT_EQ(m.coefficients[2].name, "junk");
}

TEST(Ols, ResidualMeanNearZeroWithIntercept) {
  const Synthetic d = make_data(5.0, 0.2, 0.1, 2.0, 400, 10);
  const LinearModel m = fit_ols(d.x, d.y);
  EXPECT_NEAR(m.residual_mean, 0.0, 1e-5);
}

TEST(Ols, PredictMatchesManualComputation) {
  const Synthetic d = make_data(1.0, 2.0, 3.0, 0.0, 50, 11);
  const LinearModel m = fit_ols(d.x, d.y);
  const std::vector<double> x{4.0, 5.0};
  EXPECT_NEAR(m.predict(x), 1.0 + 2.0 * 4.0 + 3.0 * 5.0, 1e-6);
}

TEST(Ols, PredictRejectsWrongArity) {
  const Synthetic d = make_data(1.0, 2.0, 3.0, 0.1, 50, 12);
  const LinearModel m = fit_ols(d.x, d.y);
  EXPECT_THROW(m.predict(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Ols, WithoutIntercept) {
  std::vector<std::vector<double>> x{{1.0}, {2.0}, {3.0}, {4.0}};
  std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  const LinearModel m = fit_ols(x, y, {}, /*with_intercept=*/false);
  ASSERT_EQ(m.coefficients.size(), 1u);
  EXPECT_NEAR(m.coefficients[0].estimate, 2.0, 1e-9);
  EXPECT_FALSE(m.has_intercept);
}

TEST(Ols, AdjustedR2BelowR2) {
  const Synthetic d = make_data(1.0, 0.3, -0.8, 2.0, 100, 13);
  const LinearModel m = fit_ols(d.x, d.y);
  EXPECT_LE(m.adjusted_r_squared, m.r_squared);
}

TEST(Ols, RejectsMalformedInput) {
  EXPECT_THROW(fit_ols({}, {}), std::invalid_argument);
  EXPECT_THROW(fit_ols({{1.0}}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(fit_ols({{1.0}, {1.0, 2.0}}, {1.0, 2.0}),
               std::invalid_argument);
  // Too few samples for the parameter count.
  EXPECT_THROW(fit_ols({{1.0, 2.0}, {2.0, 1.0}}, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(Ols, NearConstantFeatureSurvivesViaRidge) {
  // One feature barely varies -- the exact situation of a homogeneous
  // training venue; the tiny ridge keeps the fit finite.
  Rng rng(14);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    const double x1 = rng.uniform(0.0, 10.0);
    x.push_back({x1, 3.0});  // constant second feature
    y.push_back(2.0 * x1 + rng.normal(0.0, 0.5));
  }
  const LinearModel m = fit_ols(x, y);
  EXPECT_NEAR(m.coefficients[1].estimate, 2.0, 0.1);
  EXPECT_TRUE(std::isfinite(m.coefficients[2].estimate));
}

TEST(Ols, BetasOrder) {
  const Synthetic d = make_data(1.0, 2.0, 3.0, 0.0, 50, 15);
  const LinearModel m = fit_ols(d.x, d.y);
  const std::vector<double> b = m.betas();
  ASSERT_EQ(b.size(), 3u);
  EXPECT_NEAR(b[0], 1.0, 1e-6);
  EXPECT_NEAR(b[1], 2.0, 1e-7);
}

}  // namespace
}  // namespace uniloc::stats
