#include <gtest/gtest.h>

#include "core/deployment.h"
#include "geo/segment.h"
#include "schemes/pdr_scheme.h"
#include "sim/builders.h"
#include "sim/floorplan.h"
#include "sim/walker.h"

namespace uniloc {
namespace {

// --------------------------------------------------------------- segments

TEST(Segment, BasicProperties) {
  const geo::Segment s{{0.0, 0.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(s.length(), 5.0);
  EXPECT_EQ(s.midpoint(), (geo::Vec2{1.5, 2.0}));
}

TEST(SegmentIntersect, CrossingSegments) {
  EXPECT_TRUE(geo::segments_intersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
  const auto p = geo::segment_intersection({0, 0}, {2, 2}, {0, 2}, {2, 0});
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 1.0, 1e-12);
  EXPECT_NEAR(p->y, 1.0, 1e-12);
}

TEST(SegmentIntersect, NonCrossing) {
  EXPECT_FALSE(geo::segments_intersect({0, 0}, {1, 0}, {0, 1}, {1, 1}));
  EXPECT_FALSE(
      geo::segment_intersection({0, 0}, {1, 0}, {0, 1}, {1, 1}).has_value());
}

TEST(SegmentIntersect, ParallelDisjoint) {
  EXPECT_FALSE(geo::segments_intersect({0, 0}, {5, 0}, {0, 1}, {5, 1}));
}

TEST(SegmentIntersect, TouchingAtEndpoint) {
  EXPECT_TRUE(geo::segments_intersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
}

TEST(SegmentIntersect, CollinearOverlap) {
  EXPECT_TRUE(geo::segments_intersect({0, 0}, {4, 0}, {2, 0}, {6, 0}));
  EXPECT_TRUE(geo::segment_intersection({0, 0}, {4, 0}, {2, 0}, {6, 0})
                  .has_value());
}

TEST(SegmentIntersect, CollinearDisjoint) {
  EXPECT_FALSE(geo::segments_intersect({0, 0}, {1, 0}, {2, 0}, {3, 0}));
}

TEST(PointSegmentDistance, Cases) {
  EXPECT_DOUBLE_EQ(geo::point_segment_distance({1, 1}, {0, 0}, {2, 0}), 1.0);
  EXPECT_DOUBLE_EQ(geo::point_segment_distance({-3, 4}, {0, 0}, {2, 0}), 5.0);
  EXPECT_DOUBLE_EQ(geo::point_segment_distance({1, 0}, {0, 0}, {2, 0}), 0.0);
  EXPECT_DOUBLE_EQ(geo::point_segment_distance({5, 0}, {1, 0}, {1, 0}), 4.0);
}

// -------------------------------------------------------------- floorplan

TEST(Floorplan, WallsFlankIndoorStretches) {
  const sim::Place campus = sim::campus(42);
  const sim::Walkway& path1 = campus.walkways()[0];
  const std::vector<geo::Segment> walls = sim::generate_walls(path1);
  ASSERT_GT(walls.size(), 10u);
  // Every wall sits roughly half a corridor width off the path.
  for (const geo::Segment& w : walls) {
    const geo::Projection proj = path1.line.project(w.midpoint());
    const sim::PathSegment& seg = path1.segment_at(proj.arclen);
    EXPECT_NEAR(proj.distance, seg.corridor_width_m / 2.0, 1.2);
  }
}

TEST(Floorplan, NoWallsOutdoors) {
  const sim::Place campus = sim::campus(42);
  const sim::Walkway& path1 = campus.walkways()[0];
  for (const geo::Segment& w : sim::generate_walls(path1)) {
    const geo::Projection proj = path1.line.project(w.midpoint());
    EXPECT_TRUE(sim::is_indoor(path1.segment_at(proj.arclen).type));
  }
}

TEST(Floorplan, DoorGapsExist) {
  // Count gaps: total wall length per side must be clearly below the
  // indoor length (doors + junction gaps removed).
  const sim::Place campus = sim::campus(42);
  const sim::Walkway& path1 = campus.walkways()[0];
  double wall_len = 0.0;
  for (const geo::Segment& w : sim::generate_walls(path1)) {
    wall_len += w.length();
  }
  const double indoor_len = path1.length_where(sim::is_indoor);
  EXPECT_LT(wall_len, 2.0 * indoor_len * 0.98);
  EXPECT_GT(wall_len, indoor_len);  // but most of the corridor is walled
}

TEST(Floorplan, DeployAttachesToPlace) {
  sim::Place campus = sim::campus(42);
  EXPECT_TRUE(campus.walls().empty());
  sim::deploy_walls(campus, sim::hub_aware_wall_options(campus));
  EXPECT_GT(campus.walls().size(), 50u);
}

TEST(Floorplan, CrossesWallDetection) {
  sim::Place p("t", {1.35, 103.68});
  p.add_walkway(sim::make_walkway("w", {0.0, 0.0}, 0.0,
                                  {{sim::SegmentType::kOffice, 30.0, 0.0}}));
  p.add_wall({{5.0, -2.0}, {5.0, 2.0}});
  EXPECT_TRUE(p.crosses_wall({4.0, 0.0}, {6.0, 0.0}));
  EXPECT_FALSE(p.crosses_wall({4.0, 0.0}, {4.9, 0.0}));
  EXPECT_FALSE(p.crosses_wall({4.0, 5.0}, {6.0, 5.0}));  // above the wall
}

TEST(Floorplan, WalkerNeverCrossesWalls) {
  // The walker's lateral wander is bounded by the corridor width, so the
  // truth trajectory must never step through a wall.
  sim::Place campus = sim::campus(42);
  sim::deploy_walls(campus, sim::hub_aware_wall_options(campus));
  const sim::RadioEnvironment radio(&campus, sim::RadioParams{},
                                    sim::CellRadioParams{}, 42);
  sim::WalkConfig wc;
  wc.seed = 3;
  sim::Walker walker(&campus, &radio, 0, wc);
  geo::Vec2 prev = walker.start_position();
  while (!walker.done()) {
    const sim::SensorFrame f = walker.step(false);
    EXPECT_FALSE(campus.crosses_wall(prev, f.truth_pos))
        << "at arclen " << f.truth_arclen;
    prev = f.truth_pos;
  }
}

TEST(Floorplan, WallConstraintKeepsPdrInCorridor) {
  sim::Place campus_plain = sim::campus(42);
  core::DeploymentOptions dopts;
  core::Deployment d = core::make_deployment(std::move(campus_plain), dopts);
  sim::deploy_walls(*d.place, sim::hub_aware_wall_options(*d.place));

  schemes::PdrOptions opts;
  opts.use_walls = true;
  schemes::PdrScheme pdr(d.place.get(), opts);
  sim::WalkConfig wc;
  wc.seed = 4;
  sim::Walker walker(d.place.get(), d.radio.get(), 0, wc);
  pdr.reset({walker.start_position(), walker.start_heading()});
  double err_sum = 0.0;
  int n = 0;
  while (!walker.done()) {
    const sim::SensorFrame f = walker.step(false);
    const schemes::SchemeOutput out = pdr.update(f);
    if (out.available && sim::is_indoor(f.truth_env)) {
      err_sum += geo::distance(out.estimate, f.truth_pos);
      ++n;
    }
  }
  ASSERT_GT(n, 100);
  EXPECT_LT(err_sum / n, 12.0);  // stays usable under the wall constraint
}

}  // namespace
}  // namespace uniloc
