#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.h"
#include "stats/ecdf.h"
#include "stats/gaussian.h"
#include "stats/rng.h"
#include "stats/special.h"

namespace uniloc::stats {
namespace {

TEST(Gaussian, PdfSymmetricAndPeaked) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_DOUBLE_EQ(normal_pdf(1.5), normal_pdf(-1.5));
  EXPECT_GT(normal_pdf(0.0), normal_pdf(0.1));
}

TEST(Gaussian, PdfScalesWithSd) {
  EXPECT_NEAR(normal_pdf(0.0, 0.0, 2.0), normal_pdf(0.0) / 2.0, 1e-12);
}

TEST(Gaussian, CdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.959963985), 0.025, 1e-6);
}

TEST(Gaussian, CdfMonotone) {
  double prev = 0.0;
  for (double x = -5.0; x <= 5.0; x += 0.1) {
    const double c = normal_cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(Gaussian, QuantileInvertsCdf) {
  for (double p = 0.01; p < 1.0; p += 0.01) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-7);
  }
}

TEST(Gaussian, ParameterizedCdf) {
  EXPECT_NEAR(normal_cdf(10.0, 10.0, 3.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(13.0, 10.0, 3.0), normal_cdf(1.0), 1e-12);
}

TEST(Gaussian, ValueObject) {
  const Gaussian g{5.0, 2.0};
  EXPECT_NEAR(g.cdf(5.0), 0.5, 1e-12);
  EXPECT_GT(g.pdf(5.0), g.pdf(8.0));
}

TEST(Descriptive, MeanAndVariance) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(variance(v), 4.571428571428571, 1e-12);  // n-1 denominator
  EXPECT_NEAR(stddev(v), std::sqrt(variance(v)), 1e-12);
}

TEST(Descriptive, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{3.0}), 0.0);
}

TEST(Descriptive, Rmse) {
  const std::vector<double> pred{1.0, 2.0, 3.0};
  const std::vector<double> truth{1.0, 2.0, 5.0};
  EXPECT_NEAR(rmse(pred, truth), std::sqrt(4.0 / 3.0), 1e-12);
  const std::vector<double> one{1.0};
  EXPECT_THROW(rmse(pred, one), std::invalid_argument);
}

TEST(Descriptive, NormalizedRmse) {
  const std::vector<double> pred{2.0, 2.0};
  const std::vector<double> truth{1.0, 3.0};
  // rmse = 1, mean(truth) = 2.
  EXPECT_NEAR(normalized_rmse(pred, truth), 0.5, 1e-12);
}

TEST(Descriptive, Percentile) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.0);
  EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Descriptive, PercentileInterpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 90.0), 9.0);
}

TEST(Descriptive, MinMax) {
  const std::vector<double> v{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_of(v), -1.0);
  EXPECT_DOUBLE_EQ(max_of(v), 7.0);
}

TEST(Ecdf, FractionBelow) {
  const Ecdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
}

TEST(Ecdf, QuantileOrderStatistics) {
  const Ecdf cdf({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
}

TEST(Ecdf, CurveIsMonotone) {
  const Ecdf cdf({5.0, 1.0, 3.0, 2.0, 4.0, 2.5});
  const auto curve = cdf.curve(20);
  ASSERT_FALSE(curve.empty());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
    EXPECT_GE(curve[i].first, curve[i - 1].first);
  }
}

TEST(Special, IncompleteBetaBoundaries) {
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(Special, IncompleteBetaSymmetry) {
  // I_x(a,b) = 1 - I_{1-x}(b,a)
  EXPECT_NEAR(incomplete_beta(2.0, 5.0, 0.3),
              1.0 - incomplete_beta(5.0, 2.0, 0.7), 1e-10);
}

TEST(Special, StudentTCdfKnownValues) {
  // t(inf dof) -> normal; t=0 -> 0.5 always.
  EXPECT_NEAR(student_t_cdf(0.0, 5.0), 0.5, 1e-12);
  EXPECT_NEAR(student_t_cdf(2.015, 5.0), 0.95, 1e-3);   // t table
  EXPECT_NEAR(student_t_cdf(-2.015, 5.0), 0.05, 1e-3);
  EXPECT_NEAR(student_t_cdf(1.96, 1e6), normal_cdf(1.96), 1e-4);
}

TEST(Special, TwoSidedPValue) {
  EXPECT_NEAR(t_test_p_value(0.0, 10.0), 1.0, 1e-12);
  EXPECT_NEAR(t_test_p_value(2.228, 10.0), 0.05, 1e-3);  // t table, dof=10
  EXPECT_NEAR(t_test_p_value(2.228, 10.0), t_test_p_value(-2.228, 10.0),
              1e-12);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(r.normal(3.0, 2.0));
  EXPECT_NEAR(mean(xs), 3.0, 0.1);
  EXPECT_NEAR(stddev(xs), 2.0, 0.1);
}

TEST(Rng, ForkIndependence) {
  Rng base(1);
  Rng a = base.fork(1);
  Rng b = base.fork(2);
  // Different streams should diverge immediately.
  EXPECT_NE(a.uniform(), b.uniform());
}

TEST(Rng, HashToUnitInRange) {
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const double u = hash_to_unit(splitmix64(i));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, SplitmixAvalanche) {
  // Adjacent inputs produce very different outputs.
  EXPECT_NE(splitmix64(1) >> 32, splitmix64(2) >> 32);
  EXPECT_NE(splitmix64(0), 0u);
}

}  // namespace
}  // namespace uniloc::stats
