// Vectorization-aware differential tier, kernel level (DESIGN.md §16).
//
// The SIMD kernels promise BIT-IDENTITY with their scalar reference
// paths, not epsilon-closeness. Every suite here compares the vector
// path (stats::ScopedSimd on) against either the scalar fallback
// (ScopedSimd off) or a naive re-derivation of the math, element by
// element with EXPECT bitwise equality -- including the awkward shapes a
// lane-based kernel gets wrong first: N = 1, SIMD_WIDTH +/- 1 tails,
// denormal inputs, +/-inf readings, and all-zero weight vectors.
//
// The deterministic transcendentals (stats/vecmath.h) get their own
// accuracy suite against libm: they are NOT required to match libm bit
// for bit (that is the whole point -- libm is not reproducible across
// builds), only to be accurate to a few ulp and to honor IEEE limits.
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "filter/particle_filter.h"
#include "schemes/fingerprint_db.h"
#include "sim/builders.h"
#include "stats/gaussian.h"
#include "stats/simd.h"
#include "stats/vecmath.h"

namespace uniloc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kDenormMin = std::numeric_limits<double>::denorm_min();

// The awkward particle/fingerprint counts: scalar, below/at/above one
// 4-lane AVX2 vector, below/at/above two vectors.
const std::size_t kTailSizes[] = {1, 3, 4, 5, 7, 8, 9};

double rel_err(double got, double want) {
  if (got == want) return 0.0;
  return std::abs(got - want) / std::max(std::abs(want), kDenormMin);
}

// ---------------------------------------------------------------- det math

TEST(DetExp, MatchesLibmToAFewUlp) {
  // Sweep the argument ranges the pipeline produces: normal_pdf feeds
  // -0.5*z^2 (always <= 0), the fusion RSSI weight feeds -(d - best)/scale
  // (<= 0), the map constraint -0.5*z^2. Positive args for completeness.
  for (double x = -700.0; x <= 700.0; x += 0.37) {
    EXPECT_LT(rel_err(stats::det_exp(x), std::exp(x)), 1e-13)
        << "x = " << x;
  }
  for (double x = -40.0; x <= 40.0; x += 0.0113) {
    EXPECT_LT(rel_err(stats::det_exp(x), std::exp(x)), 1e-14)
        << "x = " << x;
  }
}

TEST(DetExp, HonorsIeeeLimits) {
  EXPECT_EQ(stats::det_exp(0.0), 1.0);
  EXPECT_EQ(stats::det_exp(-0.0), 1.0);
  EXPECT_EQ(stats::det_exp(kInf), kInf);
  EXPECT_EQ(stats::det_exp(-kInf), 0.0);
  EXPECT_TRUE(std::isnan(stats::det_exp(kNaN)));
  // Overflow pins to +inf exactly where libm overflows.
  EXPECT_EQ(stats::det_exp(710.0), kInf);
  EXPECT_EQ(stats::det_exp(1e308), kInf);
  // Deep underflow is exactly zero...
  EXPECT_EQ(stats::det_exp(-746.0), 0.0);
  EXPECT_EQ(stats::det_exp(-1e308), 0.0);
  // ...and the gradual-underflow band produces real subnormals.
  const double sub = stats::det_exp(-744.0);
  EXPECT_GT(sub, 0.0);
  EXPECT_LT(sub, std::numeric_limits<double>::min());
  EXPECT_LT(rel_err(sub, std::exp(-744.0)), 1e-10);
}

TEST(DetExp, DenormalArgumentsAreExact) {
  // exp(x) rounds to 1.0 for |x| below 2^-53; a denormal argument is far
  // below that.
  EXPECT_EQ(stats::det_exp(kDenormMin), 1.0);
  EXPECT_EQ(stats::det_exp(-kDenormMin), 1.0);
}

TEST(DetSincos, MatchesLibmToAFewUlp) {
  // Particle headings are wrap_angle()d into (-pi, pi]; give the suite
  // margin beyond that.
  for (double x = -10.0; x <= 10.0; x += 0.0071) {
    double s, c;
    stats::det_sincos(x, s, c);
    EXPECT_LT(std::abs(s - std::sin(x)), 1e-15) << "x = " << x;
    EXPECT_LT(std::abs(c - std::cos(x)), 1e-15) << "x = " << x;
  }
}

TEST(DetLog, MatchesLibmToAFewUlp) {
  // The Box-Muller uniforms live in [2^-53, 1]; sweep that range densely
  // plus general positives for completeness.
  for (double x = 1e-300; x < 1.0; x *= 1.07) {
    EXPECT_LT(rel_err(stats::det_log(x), std::log(x)), 1e-13) << "x = " << x;
  }
  for (double x = 0.001; x <= 1000.0; x *= 1.0037) {
    EXPECT_LT(std::abs(stats::det_log(x) - std::log(x)),
              1e-14 * std::max(1.0, std::abs(std::log(x))))
        << "x = " << x;
  }
  EXPECT_EQ(stats::det_log(1.0), 0.0);
}

TEST(DetNormalPair, IsAPureFunctionOfTheWordsWithSaneMoments) {
  // det_normal_pair(a, b) must be deterministic (the scalar and vector
  // predict paths call it independently on the same staged words) and
  // must actually synthesize a standard normal: mean ~ 0, var ~ 1 over a
  // large fixed-seed sample.
  std::mt19937_64 eng(12345);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kPairs = 50000;
  for (int i = 0; i < kPairs; ++i) {
    const std::uint64_t a = eng();
    const std::uint64_t b = eng();
    double z0, z1, w0, w1;
    stats::det_normal_pair(a, b, z0, z1);
    stats::det_normal_pair(a, b, w0, w1);
    ASSERT_EQ(z0, w0);
    ASSERT_EQ(z1, w1);
    sum += z0 + z1;
    sum2 += z0 * z0 + z1 * z1;
  }
  const double n = 2.0 * kPairs;
  EXPECT_LT(std::abs(sum / n), 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(DetNormalPair, ExtremeWordsStayFinite) {
  // a = 0 maps u1 to 2^-53 (the log argument must never hit zero); the
  // all-ones word maps u1 to exactly 1.0 (log = 0, both outputs 0 times
  // the angle factors).
  double z0, z1;
  stats::det_normal_pair(0, 0, z0, z1);
  EXPECT_TRUE(std::isfinite(z0));
  EXPECT_TRUE(std::isfinite(z1));
  EXPECT_LT(std::hypot(z0, z1), 9.0);  // sqrt(2 * 53 * ln 2) ~ 8.57
  stats::det_normal_pair(~0ULL, ~0ULL, z0, z1);
  EXPECT_TRUE(std::isfinite(z0));
  EXPECT_TRUE(std::isfinite(z1));
  EXPECT_EQ(std::hypot(z0, z1), 0.0);  // u1 == 1.0 -> r == 0 exactly.
}

TEST(DetSincos, EdgeCases) {
  double s, c;
  stats::det_sincos(0.0, s, c);
  EXPECT_EQ(s, 0.0);
  EXPECT_EQ(c, 1.0);
  stats::det_sincos(kNaN, s, c);
  EXPECT_TRUE(std::isnan(s));
  EXPECT_TRUE(std::isnan(c));
  stats::det_sincos(kDenormMin, s, c);
  EXPECT_EQ(s, kDenormMin);  // sin(x) ~= x to 1 ulp at denormal x.
  EXPECT_EQ(c, 1.0);
}

// ----------------------------------------------------- particle predict

// Two filters, same seed, same call sequence -- one vectorized, one on
// the scalar fallback. The predict contract says the SoA state stays bit
// identical (same RNG stream, same det_sincos, same expression order).
TEST(PredictKernel, VectorEqualsScalarAtEveryTailSize) {
  for (const std::size_t n : kTailSizes) {
    filter::ParticleFilter vec(n, /*seed=*/77);
    filter::ParticleFilter ref(n, /*seed=*/77);
    {
      const stats::ScopedSimd on(true);
      vec.init({3.0, 4.0}, 0.7, 1.0, 0.3, 0.05);
      for (int step = 0; step < 20; ++step) {
        vec.predict(0.7, 0.1 * step, 0.07, 0.12);
      }
    }
    {
      const stats::ScopedSimd off(false);
      ref.init({3.0, 4.0}, 0.7, 1.0, 0.3, 0.05);
      for (int step = 0; step < 20; ++step) {
        ref.predict(0.7, 0.1 * step, 0.07, 0.12);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(vec.pos(i).x, ref.pos(i).x) << "n=" << n << " i=" << i;
      EXPECT_EQ(vec.pos(i).y, ref.pos(i).y) << "n=" << n << " i=" << i;
      EXPECT_EQ(vec.heading(i), ref.heading(i)) << "n=" << n << " i=" << i;
    }
  }
}

TEST(PredictKernel, ZeroStepAndZeroNoiseIsStationaryInX) {
  // Degenerate parameters: zero step length and zero noise must leave
  // positions exactly in place in both modes (std::max(0.0, 0.0) path).
  for (const bool simd : {true, false}) {
    const stats::ScopedSimd mode(simd);
    filter::ParticleFilter f(5, /*seed=*/3);
    f.init({1.0, 2.0}, 0.0, 0.0, 0.0, 0.0);
    f.predict(0.0, 0.0, 0.0, 0.0);
    for (std::size_t i = 0; i < f.size(); ++i) {
      EXPECT_EQ(f.pos(i).x, 1.0);
      EXPECT_EQ(f.pos(i).y, 2.0);
    }
  }
}

// ----------------------------------------------------- reweight commit

TEST(ReweightArray, MatchesLambdaReweightBitwise) {
  for (const std::size_t n : kTailSizes) {
    filter::ParticleFilter a(n, /*seed=*/11);
    filter::ParticleFilter b(n, /*seed=*/11);
    a.init({0.0, 0.0}, 0.0, 2.0, 0.5, 0.1);
    b.init({0.0, 0.0}, 0.0, 2.0, 0.5, 0.1);
    std::vector<double> like(n);
    for (std::size_t i = 0; i < n; ++i) {
      like[i] = 0.25 + 0.13 * static_cast<double>(i * i % 7);
    }
    a.reweight_array(like.data());
    std::size_t idx = 0;
    b.reweight([&](const filter::Particle&) { return like[idx++]; });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(a.weight(i), b.weight(i)) << "n=" << n << " i=" << i;
    }
  }
}

TEST(ReweightArray, AllZeroLikelihoodsResetToUniform) {
  filter::ParticleFilter f(7, /*seed=*/5);
  f.init({0.0, 0.0}, 0.0, 1.0, 0.2, 0.1);
  const std::vector<double> zeros(7, 0.0);
  f.reweight_array(zeros.data());
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_EQ(f.weight(i), 1.0 / 7.0);
  }
  // The degenerate cloud resamples without collapsing or crashing.
  f.resample(1.0);
  EXPECT_NEAR(f.effective_sample_size(), 7.0, 1e-9);
}

TEST(ReweightArray, DenormalLikelihoodsSurviveNormalization) {
  // Weights can underflow toward denormals in long low-likelihood
  // stretches; the commit step must renormalize, not zero them out.
  filter::ParticleFilter f(4, /*seed=*/9);
  f.init({0.0, 0.0}, 0.0, 1.0, 0.2, 0.1);
  const std::vector<double> tiny(4, kDenormMin);
  f.reweight_array(tiny.data());
  double sum = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) sum += f.weight(i);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_EQ(f.weight(0), f.weight(1));
}

// ------------------------------------------------ systematic resampling

// Fixed-seed statistical check: systematic resampling guarantees the
// copy count of particle i is within 1 of N * w_i (the N probes are
// spaced exactly 1/N apart, so an interval of mass w_i contains either
// floor(N*w_i) or ceil(N*w_i) probes). 10k particles, weights ramping
// linearly, positions used as identity tags.
TEST(Resample, SystematicCopyCountsTrackWeightsWithinOne) {
  const std::size_t n = 10000;
  // Ancestors are tagged by their x coordinate: a wide continuous init
  // spread makes ties measure-zero (and the fixed seed makes the check
  // reproducible). Weight particle i proportional to (i + 1).
  filter::ParticleFilter f(n, /*seed=*/99);
  f.init({0.0, 0.0}, 0.0, 1000.0, 0.0, 0.0);
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) xs[i] = f.pos(i).x;
  const double total = static_cast<double>(n) * (n + 1) / 2.0;
  std::vector<double> like(n);
  for (std::size_t i = 0; i < n; ++i) like[i] = static_cast<double>(i + 1);
  f.reweight_array(like.data());
  f.resample(1.0);

  // Map each survivor back to its ancestor and count the copies.
  std::unordered_map<double, std::size_t> index_of;
  index_of.reserve(n);
  for (std::size_t i = 0; i < n; ++i) index_of.emplace(xs[i], i);
  std::vector<std::size_t> copies(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    const auto it = index_of.find(f.pos(k).x);
    ASSERT_NE(it, index_of.end());
    copies[it->second]++;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double expected = static_cast<double>(n) * like[i] / total;
    EXPECT_LE(std::abs(static_cast<double>(copies[i]) - expected), 1.0)
        << "ancestor " << i;
  }
}

// ------------------------------------------------- fingerprint scoring

class ScoreBatchTest : public ::testing::Test {
 protected:
  ScoreBatchTest()
      : place_(sim::office_place(42)),
        radio_(&place_, sim::RadioParams{}, sim::CellRadioParams{}, 42),
        db_(schemes::FingerprintDatabase::build(
            place_, radio_, schemes::FingerprintDatabase::Source::kWifi, 3.0,
            12.0, 7)) {}

  /// Naive oracle: rssi_distance per fingerprint, no cache, no lanes.
  std::vector<double> naive(const schemes::FingerprintDatabase& db,
                            const std::vector<sim::ApReading>& scan) {
    std::vector<double> out(db.size());
    for (std::size_t i = 0; i < db.size(); ++i) {
      out[i] = schemes::rssi_distance(scan, db.fingerprints()[i],
                                      db.floor_dbm());
    }
    return out;
  }

  /// The cached vector path (SIMD on) against the naive oracle and the
  /// scalar cached path (SIMD off), bitwise, NaN-aware.
  void expect_all_equal(schemes::FingerprintDatabase& db,
                        const std::vector<sim::ApReading>& scan) {
    db.prebuild_likelihood_cache();
    const std::vector<double> want = naive(db, scan);
    schemes::ScanScratch scratch;
    std::vector<double> vec, scal;
    {
      const stats::ScopedSimd on(true);
      db.all_distances_into(scan, scratch, vec);
    }
    {
      const stats::ScopedSimd off(false);
      db.all_distances_into(scan, scratch, scal);
    }
    ASSERT_EQ(vec.size(), want.size());
    ASSERT_EQ(scal.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      if (std::isnan(want[i])) {
        EXPECT_TRUE(std::isnan(vec[i])) << "fp " << i;
        EXPECT_TRUE(std::isnan(scal[i])) << "fp " << i;
      } else {
        EXPECT_EQ(vec[i], want[i]) << "fp " << i;
        EXPECT_EQ(scal[i], want[i]) << "fp " << i;
      }
    }
  }

  sim::Place place_;
  sim::RadioEnvironment radio_;
  schemes::FingerprintDatabase db_;
};

TEST_F(ScoreBatchTest, MatchesNaiveOracleOnRealScans) {
  stats::Rng rng(17);
  for (int q = 0; q < 16; ++q) {
    const geo::Vec2 pos = place_.walkways()[0].line.point_at(2.0 + 9.0 * q);
    expect_all_equal(db_, radio_.wifi_scan(pos, rng));
  }
}

TEST_F(ScoreBatchTest, MatchesNaiveOracleAtLaneTailSizes) {
  // Downsample the database to every awkward lane count: the epilogue
  // and the masked fingerprint-only pass must handle 1..9 fingerprints
  // exactly like 69.
  stats::Rng rng(23);
  const auto scan = radio_.wifi_scan({20.0, 5.0}, rng);
  for (const std::size_t want : kTailSizes) {
    const std::size_t keep = db_.size() / want;
    ASSERT_GT(keep, 0u);
    schemes::FingerprintDatabase small = db_.downsampled(keep, 5);
    if (small.empty()) continue;
    expect_all_equal(small, scan);
  }
}

TEST_F(ScoreBatchTest, InfiniteScanReadingsStayBitIdentical) {
  // A hostile scan with +/-inf RSSI: the masked kernel may only multiply
  // *fingerprint-side* terms (which the cache asserts finite); scan-side
  // infinities flow through both paths to +inf distances identically.
  stats::Rng rng(29);
  std::vector<sim::ApReading> scan = radio_.wifi_scan({25.0, 5.0}, rng);
  ASSERT_GE(scan.size(), 2u);
  scan[0].rssi_dbm = kInf;
  scan[1].rssi_dbm = -kInf;
  expect_all_equal(db_, scan);
}

TEST_F(ScoreBatchTest, DenormalScanReadingsStayBitIdentical) {
  stats::Rng rng(31);
  std::vector<sim::ApReading> scan = radio_.wifi_scan({15.0, 5.0}, rng);
  ASSERT_GE(scan.size(), 1u);
  scan[0].rssi_dbm = kDenormMin;
  expect_all_equal(db_, scan);
}

TEST_F(ScoreBatchTest, UnknownTransmittersBroadcastIdentically) {
  // Readings from AP ids the database never heard take the col < 0
  // broadcast path in the kernel.
  std::vector<sim::ApReading> scan = {{999999, -60.0}, {999998, -70.0}};
  expect_all_equal(db_, scan);
}

TEST_F(ScoreBatchTest, EmptyScanIsTheSharedNothingSentinel) {
  db_.prebuild_likelihood_cache();
  schemes::ScanScratch scratch;
  std::vector<double> out;
  const stats::ScopedSimd on(true);
  db_.all_distances_into({}, scratch, out);
  for (const double d : out) {
    EXPECT_EQ(d, std::numeric_limits<double>::max());
  }
}

// normal_pdf sits in the middle of both fusion reweight paths; pin that
// it is det_exp-based (bit-equal to the composition, not merely close).
TEST(NormalPdf, IsDetExpComposition) {
  for (double z = -12.0; z <= 12.0; z += 0.0317) {
    const double want = 0.3989422804014327 * stats::det_exp(-0.5 * z * z);
    EXPECT_EQ(stats::normal_pdf(z), want) << "z = " << z;
  }
}

}  // namespace
}  // namespace uniloc
