#include "schemes/fingerprint_db.h"

#include <gtest/gtest.h>

#include "sim/builders.h"

namespace uniloc::schemes {
namespace {

class FingerprintDbTest : public ::testing::Test {
 protected:
  FingerprintDbTest()
      : place_(sim::office_place(42)),
        radio_(&place_, sim::RadioParams{}, sim::CellRadioParams{}, 42),
        db_(FingerprintDatabase::build(place_, radio_,
                                       FingerprintDatabase::Source::kWifi,
                                       3.0, 12.0, 7)) {}

  sim::Place place_;
  sim::RadioEnvironment radio_;
  FingerprintDatabase db_;
};

TEST_F(FingerprintDbTest, BuildsAlongWalkways) {
  // ~172 m of office walkway at 3 m spacing.
  EXPECT_GT(db_.size(), 40u);
  EXPECT_LT(db_.size(), 90u);
  for (const Fingerprint& fp : db_.fingerprints()) {
    EXPECT_FALSE(fp.rssi.empty());
    EXPECT_TRUE(fp.indoor);
  }
}

TEST_F(FingerprintDbTest, FingerprintsLieOnWalkway) {
  const geo::Polyline& line = place_.walkways()[0].line;
  for (const Fingerprint& fp : db_.fingerprints()) {
    EXPECT_LT(line.project(fp.pos).distance, 0.01);
  }
}

TEST_F(FingerprintDbTest, NearestMatchIsSpatiallyClose) {
  // A noiseless scan at a known position must match a nearby fingerprint.
  const geo::Vec2 pos = place_.walkways()[0].line.point_at(31.0);
  const auto scan = radio_.wifi_scan_noiseless(pos);
  const std::vector<Match> nn = db_.k_nearest(scan, 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_LT(geo::distance(db_.fingerprints()[nn[0].index].pos, pos), 7.0);
}

TEST_F(FingerprintDbTest, KNearestSortedAscending) {
  stats::Rng rng(1);
  const auto scan = radio_.wifi_scan({20.0, 5.0}, rng);
  const std::vector<Match> nn = db_.k_nearest(scan, 5);
  ASSERT_GE(nn.size(), 2u);
  for (std::size_t i = 1; i < nn.size(); ++i) {
    EXPECT_GE(nn[i].distance, nn[i - 1].distance);
  }
}

TEST_F(FingerprintDbTest, KNearestEmptyCases) {
  EXPECT_TRUE(db_.k_nearest({}, 3).empty());
  stats::Rng rng(2);
  const auto scan = radio_.wifi_scan({20.0, 5.0}, rng);
  EXPECT_TRUE(db_.k_nearest(scan, 0).empty());
  const FingerprintDatabase empty;
  EXPECT_TRUE(empty.k_nearest(scan, 3).empty());
}

TEST_F(FingerprintDbTest, AllDistancesAligned) {
  stats::Rng rng(3);
  const auto scan = radio_.wifi_scan({25.0, 5.0}, rng);
  const std::vector<double> d = db_.all_distances(scan);
  EXPECT_EQ(d.size(), db_.size());
  const std::vector<Match> nn = db_.k_nearest(scan, 1);
  ASSERT_FALSE(nn.empty());
  EXPECT_DOUBLE_EQ(d[nn[0].index], nn[0].distance);
}

TEST_F(FingerprintDbTest, LocalDensityTracksSpacing) {
  const geo::Vec2 pos = place_.walkways()[0].line.point_at(30.0);
  const double dense = db_.local_density(pos);
  const double sparse = db_.downsampled(3, 1).local_density(pos);
  EXPECT_GT(dense, 1.0);
  EXPECT_LT(dense, 8.0);    // ~3 m spacing
  EXPECT_GT(sparse, dense); // downsampling reduces density
}

TEST_F(FingerprintDbTest, NearestSpatial) {
  const Fingerprint& fp = db_.fingerprints()[10];
  EXPECT_EQ(db_.nearest_spatial(fp.pos), 10u);
}

TEST_F(FingerprintDbTest, DownsampledKeepsEveryKth) {
  const FingerprintDatabase half = db_.downsampled(2, 0);
  EXPECT_NEAR(static_cast<double>(half.size()),
              static_cast<double>(db_.size()) / 2.0, 1.5);
  EXPECT_EQ(db_.downsampled(1, 0).size(), db_.size());
}

TEST_F(FingerprintDbTest, FloorDbmPerSource) {
  EXPECT_DOUBLE_EQ(db_.floor_dbm(), -95.0);
  FingerprintDatabase cell = FingerprintDatabase::build(
      place_, radio_, FingerprintDatabase::Source::kCellular, 9.0, 24.0, 7);
  EXPECT_DOUBLE_EQ(cell.floor_dbm(), -115.0);
}

TEST(RssiDistance, ZeroForIdenticalVectors) {
  Fingerprint fp;
  fp.rssi = {{1, -60.0}, {2, -70.0}};
  const std::vector<sim::ApReading> scan{{1, -60.0}, {2, -70.0}};
  EXPECT_DOUBLE_EQ(rssi_distance(scan, fp), 0.0);
}

TEST(RssiDistance, EuclideanOverSharedAps) {
  Fingerprint fp;
  fp.rssi = {{1, -60.0}, {2, -70.0}};
  const std::vector<sim::ApReading> scan{{1, -63.0}, {2, -66.0}};
  EXPECT_DOUBLE_EQ(rssi_distance(scan, fp), 5.0);  // sqrt(9 + 16)
}

TEST(RssiDistance, ImputesMissingAtFloor) {
  Fingerprint fp;
  fp.rssi = {{1, -60.0}};
  const std::vector<sim::ApReading> scan{{1, -60.0}, {2, -85.0}};
  // AP 2 missing offline -> imputed at -95: contributes (85-95)^2.
  EXPECT_DOUBLE_EQ(rssi_distance(scan, fp, -95.0), 10.0);
}

TEST(RssiDistance, NoSharedApIsInfinite) {
  Fingerprint fp;
  fp.rssi = {{1, -60.0}};
  const std::vector<sim::ApReading> scan{{2, -60.0}};
  EXPECT_EQ(rssi_distance(scan, fp),
            std::numeric_limits<double>::max());
}

TEST(RssiDistance, PenalizesExtraOfflineAps) {
  Fingerprint near_fp, far_fp;
  near_fp.rssi = {{1, -60.0}};
  far_fp.rssi = {{1, -60.0}, {2, -65.0}};  // strong AP 2 not heard online
  const std::vector<sim::ApReading> scan{{1, -60.0}};
  EXPECT_LT(rssi_distance(scan, near_fp), rssi_distance(scan, far_fp));
}

}  // namespace
}  // namespace uniloc::schemes
