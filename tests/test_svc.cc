// Tests for the src/svc service layer: thread pool, session strands,
// wire framing, and the LocalizationServer end to end.
//
// Concurrency tests here are written to be meaningful under TSan (see
// scripts/check.sh): real worker threads, real contention, assertions on
// invariants (serialization, counts, no lost tasks) rather than timing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/runner.h"
#include "core/trainer.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/span.h"
#include "sim/virtual_clock.h"
#include "svc/checkpoint.h"
#include "svc/epoch_codec.h"
#include "svc/loadgen.h"
#include "svc/server.h"
#include "svc/session_manager.h"
#include "svc/thread_pool.h"
#include "svc/wire.h"
#include "testing_util.h"

namespace uniloc::svc {
namespace {

// ------------------------------------------------------------- thread pool

TEST(ThreadPool, RunsEveryPostedTask) {
  ThreadPool pool({.workers = 4, .queue_capacity = 16});
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    ASSERT_TRUE(pool.post([&sum, i] { sum += i; }));
  }
  pool.shutdown();
  EXPECT_EQ(sum.load(), 5050);
  EXPECT_EQ(pool.tasks_run(), 100u);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPool, ShutdownDrainsQueuedWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool({.workers = 2, .queue_capacity = 64});
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(pool.post([&ran] { ++ran; }));
    }
    // Destructor calls shutdown(): every accepted task must still run.
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, PostAfterShutdownIsRejected) {
  ThreadPool pool({.workers = 1, .queue_capacity = 4});
  pool.shutdown();
  EXPECT_FALSE(pool.post([] {}));
  pool.shutdown();  // idempotent
}

TEST(ThreadPool, ThrowingTaskDoesNotKillWorker) {
  ThreadPool pool({.workers = 1, .queue_capacity = 8});
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.post([] { throw std::runtime_error("boom"); }));
  ASSERT_TRUE(pool.post([&ran] { ++ran; }));  // same worker must survive
  pool.shutdown();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(pool.task_exceptions(), 1u);
  EXPECT_EQ(pool.tasks_run(), 2u);
}

TEST(ThreadPool, InlineModeRunsSynchronously) {
  ThreadPool pool({.workers = 0, .queue_capacity = 4});
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(pool.post([&order, i] { order.push_back(i); }));
    // Inline mode: the task already ran, in submission order.
    ASSERT_EQ(order.size(), static_cast<std::size_t>(i + 1));
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(pool.tasks_run(), 5u);
}

// ---------------------------------------------------------------- session

TEST(Session, StrandRunsTasksInOrder) {
  Session s(7, nullptr);
  std::vector<int> order;
  EXPECT_EQ(s.enqueue([&order] { order.push_back(0); }, 8, 100),
            Session::Enqueue::kStartDrain);
  // Not draining yet; further tasks just queue behind the first.
  EXPECT_EQ(s.enqueue([&order] { order.push_back(1); }, 8, 101),
            Session::Enqueue::kQueued);
  EXPECT_EQ(s.enqueue([&order] { order.push_back(2); }, 8, 102),
            Session::Enqueue::kQueued);
  EXPECT_FALSE(s.idle());
  s.drain();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(s.epochs_served(), 3u);
  EXPECT_EQ(s.last_active_us(), 102u);
}

TEST(Session, BackpressureWhenInboxFull) {
  Session s(7, nullptr);
  int dropped = 0;
  EXPECT_EQ(s.enqueue([] {}, 2, 1), Session::Enqueue::kStartDrain);
  EXPECT_EQ(s.enqueue([] {}, 2, 2), Session::Enqueue::kQueued);
  EXPECT_EQ(s.enqueue([&dropped] { ++dropped; }, 2, 3),
            Session::Enqueue::kBackpressure);
  s.drain();
  EXPECT_EQ(dropped, 0);  // rejected task must never run
  EXPECT_EQ(s.epochs_served(), 2u);
  // After the drain the inbox has space again.
  EXPECT_EQ(s.enqueue([] {}, 2, 4), Session::Enqueue::kStartDrain);
  s.drain();
}

TEST(Session, TaskEnqueuedDuringDrainIsPickedUp) {
  Session s(1, nullptr);
  std::vector<int> order;
  ASSERT_EQ(s.enqueue(
                [&] {
                  order.push_back(0);
                  // Mid-drain enqueue: the running drain must absorb it
                  // without a second kStartDrain handshake.
                  EXPECT_EQ(s.enqueue([&] { order.push_back(1); }, 8, 11),
                            Session::Enqueue::kQueued);
                },
                8, 10),
            Session::Enqueue::kStartDrain);
  s.drain();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_TRUE(s.idle());
}

// --------------------------------------------------------- session manager

TEST(SessionManager, CreateFindErase) {
  SessionManager mgr(4);
  for (std::uint64_t id = 1; id <= 40; ++id) {
    ASSERT_NE(mgr.create(id, nullptr, 0), nullptr);
  }
  EXPECT_EQ(mgr.size(), 40u);
  EXPECT_EQ(mgr.create(17, nullptr, 0), nullptr);  // duplicate id
  EXPECT_EQ(mgr.size(), 40u);
  ASSERT_NE(mgr.find(17), nullptr);
  EXPECT_EQ(mgr.find(17)->id(), 17u);
  EXPECT_EQ(mgr.find(999), nullptr);
  EXPECT_TRUE(mgr.erase(17));
  EXPECT_FALSE(mgr.erase(17));
  EXPECT_EQ(mgr.find(17), nullptr);
  EXPECT_EQ(mgr.size(), 39u);
}

TEST(SessionManager, SequentialIdsSpreadAcrossStripes) {
  SessionManager mgr(8);
  std::set<std::size_t> used;
  for (std::uint64_t id = 0; id < 64; ++id) {
    const std::size_t s = mgr.stripe_of(id);
    EXPECT_LT(s, mgr.stripes());
    used.insert(s);
  }
  // Fibonacci hashing: 64 sequential ids must touch every one of the 8
  // stripes (a modulo-only scheme would too, but a shifted or byte-based
  // one can collapse sequential ids onto one stripe).
  EXPECT_EQ(used.size(), 8u);
}

TEST(SessionManager, EvictsOnlyIdleExpiredSessions) {
  SessionManager mgr(4);
  mgr.create(1, nullptr, 1000);  // will expire
  mgr.create(2, nullptr, 5000);  // recent
  SessionPtr busy = mgr.create(3, nullptr, 1000);
  ASSERT_NE(busy, nullptr);
  // Queue work without draining: session 3 is expired but busy.
  ASSERT_EQ(busy->enqueue([] {}, 8, 1000), Session::Enqueue::kStartDrain);

  EXPECT_EQ(mgr.evict_idle(/*now_us=*/6000, /*idle_ttl_us=*/3000), 1u);
  EXPECT_EQ(mgr.find(1), nullptr);
  EXPECT_NE(mgr.find(2), nullptr);
  EXPECT_NE(mgr.find(3), nullptr);  // busy: spared despite expiry

  busy->drain();
  // Drain stamps nothing new (enqueue did, at 1000): now evictable.
  EXPECT_EQ(mgr.evict_idle(6000, 3000), 1u);
  EXPECT_EQ(mgr.find(3), nullptr);
  EXPECT_EQ(mgr.size(), 1u);
}

TEST(SessionManager, EvictsExactlyAtTtlBoundary) {
  SessionManager mgr(4);
  mgr.create(1, nullptr, 1000);
  // One tick short of the TTL: spared.
  EXPECT_EQ(mgr.evict_idle(/*now_us=*/3999, /*idle_ttl_us=*/3000), 0u);
  ASSERT_NE(mgr.find(1), nullptr);
  // now == last_activity + idle_ttl: the TTL has fully elapsed -- evict.
  EXPECT_EQ(mgr.evict_idle(/*now_us=*/4000, /*idle_ttl_us=*/3000), 1u);
  EXPECT_EQ(mgr.find(1), nullptr);
}

TEST(SessionManager, ClockBehindLastActivityNeverEvicts) {
  // A session touched "in the future" (clock skew between submit and
  // scan) must not be evicted by the u64 subtraction wrapping around.
  SessionManager mgr(4);
  mgr.create(1, nullptr, 10'000);
  EXPECT_EQ(mgr.evict_idle(/*now_us=*/5000, /*idle_ttl_us=*/1), 0u);
  EXPECT_NE(mgr.find(1), nullptr);
}

TEST(SessionManager, SessionBecomingBusyBetweenScansIsSpared) {
  SessionManager mgr(4);
  SessionPtr s = mgr.create(1, nullptr, 1000);
  ASSERT_NE(s, nullptr);
  // First scan: not yet expired.
  EXPECT_EQ(mgr.evict_idle(2000, 3000), 0u);
  // The session turns busy before the next scan; even though its
  // last-active stamp (4000) plus TTL has elapsed by scan time, a
  // pending task must always spare it.
  ASSERT_EQ(s->enqueue([] {}, 8, 4000), Session::Enqueue::kStartDrain);
  EXPECT_EQ(mgr.evict_idle(8000, 3000), 0u);
  ASSERT_NE(mgr.find(1), nullptr);
  // Once drained (stamp still 4000), the same scan time evicts.
  s->drain();
  EXPECT_EQ(mgr.evict_idle(8000, 3000), 1u);
  EXPECT_EQ(mgr.find(1), nullptr);
}

// ------------------------------------------------------------------- wire

TEST(Wire, FrameRoundTrip) {
  Frame f;
  f.type = FrameType::kEpoch;
  f.session_id = 0xDEADBEEFCAFE1234ull;
  f.payload = {1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> bytes = encode_frame(f);
  EXPECT_EQ(bytes.size(), kHeaderBytes + f.payload.size());
  const DecodeResult r = decode_frame(bytes);
  ASSERT_TRUE(r.frame.has_value());
  EXPECT_EQ(r.error, WireError::kNone);
  EXPECT_EQ(r.consumed, bytes.size());
  EXPECT_EQ(r.frame->type, FrameType::kEpoch);
  EXPECT_EQ(r.frame->session_id, f.session_id);
  EXPECT_EQ(r.frame->payload, f.payload);
}

TEST(Wire, RejectsBadMagic) {
  Frame f;
  f.type = FrameType::kHello;
  std::vector<std::uint8_t> bytes = encode_frame(f);
  bytes[4] ^= 0xFF;  // first magic byte, after the length prefix
  const DecodeResult r = decode_frame(bytes);
  EXPECT_FALSE(r.frame.has_value());
  EXPECT_EQ(r.error, WireError::kBadMagic);
}

TEST(Wire, RejectsBadVersion) {
  Frame f;
  f.type = FrameType::kHello;
  std::vector<std::uint8_t> bytes = encode_frame(f);
  bytes[8] = kVersion + 1;
  const DecodeResult r = decode_frame(bytes);
  EXPECT_FALSE(r.frame.has_value());
  EXPECT_EQ(r.error, WireError::kBadVersion);
}

TEST(Wire, RejectsUnknownType) {
  Frame f;
  f.type = FrameType::kHello;
  std::vector<std::uint8_t> bytes = encode_frame(f);
  bytes[9] = 0x42;  // not a FrameType
  const DecodeResult r = decode_frame(bytes);
  EXPECT_FALSE(r.frame.has_value());
  EXPECT_EQ(r.error, WireError::kBadType);
}

TEST(Wire, RejectsEveryTruncation) {
  Frame f;
  f.type = FrameType::kEpoch;
  f.session_id = 9;
  f.payload = {10, 20, 30};
  const std::vector<std::uint8_t> bytes = encode_frame(f);
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    const DecodeResult r = decode_frame(bytes.data(), n);
    EXPECT_FALSE(r.frame.has_value()) << "prefix length " << n;
    EXPECT_EQ(r.error, WireError::kTruncated) << "prefix length " << n;
  }
}

TEST(Wire, RejectsOversizedLength) {
  Frame f;
  f.type = FrameType::kHello;
  std::vector<std::uint8_t> bytes = encode_frame(f);
  bytes[0] = 0xFF;  // length low byte
  bytes[1] = 0xFF;
  bytes[2] = 0xFF;
  bytes[3] = 0x7F;  // far beyond kMaxPayloadBytes
  const DecodeResult r = decode_frame(bytes);
  EXPECT_FALSE(r.frame.has_value());
  EXPECT_EQ(r.error, WireError::kBadLength);
}

TEST(Wire, RejectsLengthBelowHeaderMinimum) {
  Frame f;
  f.type = FrameType::kHello;
  std::vector<std::uint8_t> bytes = encode_frame(f);
  bytes[0] = 3;  // fewer bytes than magic+version+type+session alone
  bytes[1] = bytes[2] = bytes[3] = 0;
  const DecodeResult r = decode_frame(bytes);
  EXPECT_FALSE(r.frame.has_value());
  EXPECT_EQ(r.error, WireError::kBadLength);
}

TEST(Wire, HelloPayloadRoundTrip) {
  const HelloPayload h{{12.345, -6.789}, 1.25};
  const std::vector<std::uint8_t> bytes = encode_hello(h);
  EXPECT_EQ(bytes.size(), HelloPayload::kBytes);
  const std::optional<HelloPayload> back = parse_hello(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_NEAR(back->start.x, h.start.x, 0.01);   // cm quantization
  EXPECT_NEAR(back->start.y, h.start.y, 0.01);
  EXPECT_NEAR(back->heading, h.heading, 1e-5);   // urad quantization
  EXPECT_FALSE(parse_hello({1, 2, 3}).has_value());
}

TEST(Wire, ErrorFrameCarriesCode) {
  const Frame e = make_error_frame(42, ErrorCode::kBackpressure);
  EXPECT_EQ(e.type, FrameType::kError);
  EXPECT_EQ(e.session_id, 42u);
  ASSERT_TRUE(error_code(e).has_value());
  EXPECT_EQ(*error_code(e), ErrorCode::kBackpressure);
  Frame not_error;
  not_error.type = FrameType::kReply;
  EXPECT_FALSE(error_code(not_error).has_value());
}

TEST(EpochCodec, ReplyRoundTrip) {
  EpochReply reply;
  reply.downlink = offload::DownlinkFrame::encode({3.25, -8.5});
  reply.gps_enable_next = false;
  const std::vector<std::uint8_t> bytes = encode_epoch_reply(reply);
  EXPECT_EQ(bytes.size(), EpochReply::kBytes);
  const std::optional<EpochReply> back = parse_epoch_reply(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_DOUBLE_EQ(back->downlink.decoded().x, 3.25);
  EXPECT_DOUBLE_EQ(back->downlink.decoded().y, -8.5);
  EXPECT_FALSE(back->gps_enable_next);
  EXPECT_FALSE(parse_epoch_reply({1, 2}).has_value());
}

// ----------------------------------------------------------------- server

// One trained model set for every server test (training is the slow part).
const core::TrainedModels& test_models() {
  return testing_util::standard_models(100);
}

struct ServerFixture {
  const core::Deployment& office = testing_util::office_deployment();

  UnilocFactory factory() {
    return [this](std::uint64_t sid) {
      return std::make_unique<core::Uniloc>(core::make_uniloc(
          office, test_models(), {}, false, /*seed=*/7 + sid));
    };
  }
};

std::vector<std::uint8_t> hello_frame(std::uint64_t sid, geo::Vec2 start,
                                      double heading) {
  Frame f;
  f.type = FrameType::kHello;
  f.session_id = sid;
  f.payload = encode_hello({start, heading});
  return encode_frame(f);
}

Frame get_reply(LocalizationServer& server, std::vector<std::uint8_t> req) {
  const DecodeResult r = decode_frame(server.submit(std::move(req)).get());
  EXPECT_EQ(r.error, WireError::kNone);
  return r.frame.value();
}

TEST(Server, HelloEpochByeFlow) {
  ServerFixture fx;
  obs::MetricsRegistry reg;
  LocalizationServer server({}, fx.factory(), &reg);

  sim::WalkConfig wc;
  wc.seed = 11;
  sim::Walker walker(fx.office.place.get(), fx.office.radio.get(), 0, wc);
  offload::PhoneAgent phone;
  phone.reset(walker.start_heading());

  const Frame ack = get_reply(
      server,
      hello_frame(1, walker.start_position(), walker.start_heading()));
  EXPECT_EQ(ack.type, FrameType::kReply);
  EXPECT_EQ(server.live_sessions(), 1u);

  bool gps = true;
  std::size_t epochs = 0;
  for (; !walker.done() && epochs < 40; ++epochs) {
    const sim::SensorFrame f = walker.step(gps);
    Frame req;
    req.type = FrameType::kEpoch;
    req.session_id = 1;
    req.payload = encode_epoch(phone.reduce(f), f);
    const Frame reply = get_reply(server, encode_frame(req));
    ASSERT_EQ(reply.type, FrameType::kReply);
    const std::optional<EpochReply> er = parse_epoch_reply(reply.payload);
    ASSERT_TRUE(er.has_value());
    gps = er->gps_enable_next;
    // Office walk: the fused estimate stays on the premises.
    EXPECT_LT(geo::distance(er->downlink.decoded(), f.truth_pos), 50.0);
  }

  Frame bye;
  bye.type = FrameType::kBye;
  bye.session_id = 1;
  EXPECT_EQ(get_reply(server, encode_frame(bye)).type, FrameType::kReply);
  EXPECT_EQ(server.live_sessions(), 0u);

  EXPECT_EQ(reg.counter("svc.accepted").value(), 2u + epochs);
  EXPECT_EQ(reg.counter("svc.malformed").value(), 0u);
  EXPECT_EQ(reg.histogram("svc.request_us").count(), epochs);
  EXPECT_EQ(reg.histogram("svc.locate_us").count(), epochs);
}

TEST(Server, RejectsMalformedInput) {
  ServerFixture fx;
  obs::MetricsRegistry reg;
  LocalizationServer server({}, fx.factory(), &reg);

  // Garbage bytes, a truncated frame, and a valid frame with a corrupt
  // epoch payload must all answer kError kMalformed.
  std::vector<std::vector<std::uint8_t>> bad;
  bad.push_back({0xDE, 0xAD, 0xBE, 0xEF});
  Frame hello;
  hello.type = FrameType::kHello;
  hello.session_id = 5;
  hello.payload = encode_hello({{0, 0}, 0});
  std::vector<std::uint8_t> truncated = encode_frame(hello);
  truncated.resize(truncated.size() - 3);
  bad.push_back(truncated);
  Frame short_hello;
  short_hello.type = FrameType::kHello;
  short_hello.session_id = 6;
  short_hello.payload = {1, 2};  // not a HelloPayload
  bad.push_back(encode_frame(short_hello));

  for (std::vector<std::uint8_t>& req : bad) {
    const DecodeResult r = decode_frame(server.submit(std::move(req)).get());
    ASSERT_TRUE(r.frame.has_value());
    EXPECT_EQ(r.frame->type, FrameType::kError);
    EXPECT_EQ(error_code(*r.frame), ErrorCode::kMalformed);
  }
  EXPECT_EQ(reg.counter("svc.malformed").value(), 3u);
  EXPECT_EQ(server.live_sessions(), 0u);

  // Valid session, corrupt epoch payload.
  get_reply(server, hello_frame(7, {1.0, 1.0}, 0.0));
  Frame bad_epoch;
  bad_epoch.type = FrameType::kEpoch;
  bad_epoch.session_id = 7;
  bad_epoch.payload = {9, 9, 9};
  const Frame reply = get_reply(server, encode_frame(bad_epoch));
  EXPECT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(error_code(reply), ErrorCode::kMalformed);
  EXPECT_EQ(reg.counter("svc.malformed").value(), 4u);
  EXPECT_EQ(server.live_sessions(), 1u);  // session survives bad input
}

TEST(Server, SessionLifecycleErrors) {
  ServerFixture fx;
  LocalizationServer server({}, fx.factory(), nullptr);

  Frame epoch;
  epoch.type = FrameType::kEpoch;
  epoch.session_id = 3;
  epoch.payload = encode_epoch({}, sim::SensorFrame{});
  EXPECT_EQ(error_code(get_reply(server, encode_frame(epoch))),
            ErrorCode::kUnknownSession);

  get_reply(server, hello_frame(3, {0, 0}, 0.0));
  EXPECT_EQ(error_code(get_reply(server, hello_frame(3, {0, 0}, 0.0))),
            ErrorCode::kSessionExists);

  Frame bye;
  bye.type = FrameType::kBye;
  bye.session_id = 99;
  EXPECT_EQ(error_code(get_reply(server, encode_frame(bye))),
            ErrorCode::kUnknownSession);

  server.shutdown();
  EXPECT_EQ(error_code(get_reply(server, hello_frame(8, {0, 0}, 0.0))),
            ErrorCode::kShuttingDown);
}

TEST(Server, InboxFullAnswersBackpressure) {
  ServerFixture fx;
  obs::MetricsRegistry reg;
  ServerConfig cfg;
  cfg.inbox_capacity = 0;  // inline mode + zero inbox: reject every epoch
  LocalizationServer server(cfg, fx.factory(), &reg);
  get_reply(server, hello_frame(1, {0, 0}, 0.0));
  Frame epoch;
  epoch.type = FrameType::kEpoch;
  epoch.session_id = 1;
  epoch.payload = encode_epoch({}, sim::SensorFrame{});
  EXPECT_EQ(error_code(get_reply(server, encode_frame(epoch))),
            ErrorCode::kBackpressure);
  EXPECT_EQ(reg.counter("svc.rejected").value(), 1u);
}

TEST(Server, IdleSessionsAreEvicted) {
  ServerFixture fx;
  obs::MetricsRegistry reg;
  sim::VirtualClock clock;  // TTLs advance explicitly, never by wall time
  ServerConfig cfg;
  cfg.idle_ttl_s = 1.0;
  cfg.now_us = clock.now_fn();
  LocalizationServer server(cfg, fx.factory(), &reg);

  get_reply(server, hello_frame(1, {0, 0}, 0.0));
  clock.advance_us(500'000);
  get_reply(server, hello_frame(2, {0, 0}, 0.0));
  EXPECT_EQ(server.live_sessions(), 2u);

  clock.advance_us(700'000);  // session 1 idle 1.2 s, session 2 idle 0.7 s
  EXPECT_EQ(server.evict_idle(), 1u);
  EXPECT_EQ(server.live_sessions(), 1u);
  EXPECT_EQ(reg.counter("svc.evicted").value(), 1u);
  // Session 2 still serves epochs after the sweep.
  Frame epoch;
  epoch.type = FrameType::kEpoch;
  epoch.session_id = 2;
  epoch.payload = encode_epoch({}, sim::SensorFrame{});
  EXPECT_EQ(get_reply(server, encode_frame(epoch)).type, FrameType::kReply);
}

TEST(Server, TtlSurvivesVirtualClockJumps) {
  // A VirtualClock can jump by arbitrary amounts between scans (blackout
  // drills advance it hours at a time); the TTL math must hold at the
  // exact boundary and across a jump far past it.
  ServerFixture fx;
  sim::VirtualClock clock;
  ServerConfig cfg;
  cfg.idle_ttl_s = 1.0;
  cfg.now_us = clock.now_fn();
  LocalizationServer server(cfg, fx.factory());

  get_reply(server, hello_frame(1, {0, 0}, 0.0));
  clock.advance_us(999'999);  // one tick short of the 1 s TTL
  EXPECT_EQ(server.evict_idle(), 0u);
  clock.advance_us(1);  // exactly at the boundary
  EXPECT_EQ(server.evict_idle(), 1u);

  get_reply(server, hello_frame(2, {0, 0}, 0.0));
  clock.advance_us(3'600'000'000ull);  // hour-long jump: still exactly one
  EXPECT_EQ(server.evict_idle(), 1u);
  EXPECT_EQ(server.live_sessions(), 0u);
}

// ------------------------------------------------- session migration (wire)

std::vector<std::uint8_t> migrate_frame(std::uint64_t sid,
                                        std::vector<std::uint8_t> payload) {
  Frame f;
  f.type = FrameType::kMigrate;
  f.session_id = sid;
  f.payload = std::move(payload);
  return encode_frame(f);
}

TEST(Migrate, ExtractAdoptServesIdenticalEpochs) {
  // Walk a session to mid-walk on A, extract/adopt onto B over the
  // kMigrate wire path, and finish the walk there: every post-move reply
  // must be byte-identical to a control server that never migrated.
  ServerFixture fx;
  LocalizationServer a({}, fx.factory());
  LocalizationServer b({}, fx.factory());
  LocalizationServer control({}, fx.factory());

  sim::WalkConfig wc;
  wc.seed = 33;
  sim::Walker walker(fx.office.place.get(), fx.office.radio.get(), 0, wc);
  offload::PhoneAgent phone;
  phone.reset(walker.start_heading());
  const std::vector<std::uint8_t> hello =
      hello_frame(9, walker.start_position(), walker.start_heading());
  ASSERT_EQ(get_reply(a, hello).type, FrameType::kReply);
  ASSERT_EQ(get_reply(control, hello).type, FrameType::kReply);

  auto epoch_bytes = [&](const sim::SensorFrame& f) {
    Frame req;
    req.type = FrameType::kEpoch;
    req.session_id = 9;
    req.payload = encode_epoch(phone.reduce(f), f);
    return encode_frame(req);
  };
  for (std::size_t i = 0; i < 10 && !walker.done(); ++i) {
    const std::vector<std::uint8_t> req = epoch_bytes(walker.step(true));
    const std::vector<std::uint8_t> ra = a.submit(req).get();
    const std::vector<std::uint8_t> rc = control.submit(req).get();
    ASSERT_EQ(ra, rc);
  }

  const std::optional<std::vector<std::uint8_t>> moved = a.extract_session(9);
  ASSERT_TRUE(moved.has_value());
  EXPECT_EQ(a.live_sessions(), 0u);
  ASSERT_EQ(get_reply(b, migrate_frame(9, *moved)).type, FrameType::kReply);
  EXPECT_EQ(b.live_sessions(), 1u);

  for (std::size_t i = 0; i < 10 && !walker.done(); ++i) {
    const std::vector<std::uint8_t> req = epoch_bytes(walker.step(true));
    const std::vector<std::uint8_t> rb = b.submit(req).get();
    const std::vector<std::uint8_t> rc = control.submit(req).get();
    ASSERT_EQ(rb, rc) << "post-migration epoch " << i << " diverged";
  }

  // The source no longer knows the session; its bookkeeping moved along.
  Frame epoch;
  epoch.type = FrameType::kEpoch;
  epoch.session_id = 9;
  epoch.payload = encode_epoch({}, sim::SensorFrame{});
  EXPECT_EQ(error_code(get_reply(a, encode_frame(epoch))),
            ErrorCode::kUnknownSession);
  EXPECT_EQ(b.status().sessions.at(0).epochs_served,
            control.status().sessions.at(0).epochs_served);
}

TEST(Migrate, ExtractUnknownSessionIsNull) {
  ServerFixture fx;
  LocalizationServer a({}, fx.factory());
  EXPECT_FALSE(a.extract_session(404).has_value());
}

TEST(Migrate, AdoptRejectsWrongAndDuplicateIds) {
  ServerFixture fx;
  LocalizationServer a({}, fx.factory());
  LocalizationServer b({}, fx.factory());
  obs::MetricsRegistry reg;
  LocalizationServer c({}, fx.factory(), &reg);

  get_reply(a, hello_frame(5, {0, 0}, 0.0));
  const std::vector<std::uint8_t> payload = *a.extract_session(5);

  // Frame routed under a different id than the record carries: hostile.
  EXPECT_EQ(error_code(get_reply(b, migrate_frame(6, payload))),
            ErrorCode::kMalformed);
  EXPECT_EQ(b.live_sessions(), 0u);

  // First adopt lands; a replayed kMigrate for the same id must refuse
  // without clobbering the live session.
  ASSERT_EQ(get_reply(c, migrate_frame(5, payload)).type, FrameType::kReply);
  EXPECT_EQ(error_code(get_reply(c, migrate_frame(5, payload))),
            ErrorCode::kSessionExists);
  EXPECT_EQ(c.live_sessions(), 1u);
  EXPECT_EQ(reg.counter("svc.malformed").value(), 0u);
}

TEST(Migrate, EveryTruncationIsRejectedCleanly) {
  ServerFixture fx;
  LocalizationServer a({}, fx.factory());
  get_reply(a, hello_frame(5, {0, 0}, 0.0));
  const std::vector<std::uint8_t> payload = *a.extract_session(5);

  LocalizationServer b({}, fx.factory());
  // Exhaustive over the framing-dense prefix, strided across the bulk
  // (particle arrays), exhaustive again near the end -- same coverage
  // pattern the full-snapshot fuzz uses.
  std::vector<std::size_t> lengths;
  for (std::size_t n = 0; n < std::min<std::size_t>(payload.size(), 96); ++n) {
    lengths.push_back(n);
  }
  for (std::size_t n = 96; n + 48 < payload.size(); n += 61) {
    lengths.push_back(n);
  }
  for (std::size_t n =
           payload.size() - std::min<std::size_t>(payload.size(), 48);
       n < payload.size(); ++n) {
    lengths.push_back(n);
  }
  for (const std::size_t n : lengths) {
    const std::vector<std::uint8_t> cut(payload.begin(), payload.begin() + n);
    EXPECT_EQ(error_code(get_reply(b, migrate_frame(5, cut))),
              ErrorCode::kMalformed)
        << "truncated to " << n << " bytes";
    EXPECT_EQ(b.live_sessions(), 0u);
  }
  // Trailing garbage violates the exact-length contract just as hard.
  std::vector<std::uint8_t> padded = payload;
  padded.push_back(0);
  EXPECT_EQ(error_code(get_reply(b, migrate_frame(5, padded))),
            ErrorCode::kMalformed);
  // The intact payload still adopts after the whole fuzz barrage.
  EXPECT_EQ(get_reply(b, migrate_frame(5, payload)).type, FrameType::kReply);
}

TEST(Migrate, BitFlipsNeverCrashTheAdopter) {
  ServerFixture fx;
  LocalizationServer a({}, fx.factory());
  get_reply(a, hello_frame(5, {0, 0}, 0.0));
  const std::vector<std::uint8_t> payload = *a.extract_session(5);

  LocalizationServer b({}, fx.factory());
  // A flip may land in a particle coordinate (adopt succeeds with a
  // different cloud -- benign) or in framing (must reject); either way
  // no crash, no UB, and the server keeps serving. Sessions that do
  // adopt are extracted again so every trial starts empty.
  std::mt19937_64 rng(13);
  for (std::size_t trial = 0; trial < 400; ++trial) {
    std::vector<std::uint8_t> mutated = payload;
    const std::size_t byte = rng() % mutated.size();
    mutated[byte] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    const Frame reply = get_reply(b, migrate_frame(5, mutated));
    if (reply.type == FrameType::kReply) b.extract_session(5);
  }
  EXPECT_EQ(get_reply(b, migrate_frame(5, payload)).type, FrameType::kReply);
}

TEST(Migrate, BadSnapshotMagicAndVersionAreRejected) {
  ServerFixture fx;
  LocalizationServer a({}, fx.factory());
  get_reply(a, hello_frame(5, {0, 0}, 0.0));
  const std::vector<std::uint8_t> payload = *a.extract_session(5);

  LocalizationServer b({}, fx.factory());
  std::vector<std::uint8_t> bad_magic = payload;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(error_code(get_reply(b, migrate_frame(5, bad_magic))),
            ErrorCode::kMalformed);
  std::vector<std::uint8_t> bad_version = payload;
  bad_version[4] = 99;  // unknown to both codec versions (v1 f64, v2 quantized)
  EXPECT_EQ(error_code(get_reply(b, migrate_frame(5, bad_version))),
            ErrorCode::kMalformed);
  EXPECT_EQ(error_code(get_reply(b, migrate_frame(5, {}))),
            ErrorCode::kMalformed);
  EXPECT_EQ(b.live_sessions(), 0u);
}

TEST(Migrate, PinnedSessionSurvivesTtlScan) {
  // The eviction-vs-migration race surface: extract_session pins before
  // it quiesces, and a TTL sweep arriving in the pin window must skip
  // the session -- otherwise the sweep could evict it mid-serialization,
  // the client would re-hello a fresh twin on the source, and the fleet
  // would end up with two divergent copies of one session id.
  SessionManager mgr(4);
  const SessionPtr pinned = mgr.create(1, nullptr, 0);
  const SessionPtr idle_twin = mgr.create(2, nullptr, 0);
  ASSERT_NE(pinned, nullptr);
  ASSERT_NE(idle_twin, nullptr);
  pinned->set_pinned(true);

  // Both sessions are idle and eons past the TTL; only the twin goes.
  EXPECT_EQ(mgr.evict_idle(/*now_us=*/5'000'000, /*ttl_us=*/1'000'000), 1u);
  EXPECT_NE(mgr.find(1), nullptr);
  EXPECT_EQ(mgr.find(2), nullptr);

  // Unpinning re-arms normal eviction (a rolled-back migration).
  pinned->set_pinned(false);
  EXPECT_EQ(mgr.evict_idle(5'000'000, 1'000'000), 1u);
  EXPECT_EQ(mgr.size(), 0u);
}

TEST(Migrate, ExtractedSessionEpochGetsUnknownSessionThenRehello) {
  // A client whose session was just extracted (mid-migration) and whose
  // frame reaches the *source server* directly sees kUnknownSession --
  // the standard re-hello reconcile signal, identical to eviction.
  ServerFixture fx;
  LocalizationServer a({}, fx.factory());
  get_reply(a, hello_frame(4, {0, 0}, 0.0));
  ASSERT_TRUE(a.extract_session(4).has_value());

  Frame epoch;
  epoch.type = FrameType::kEpoch;
  epoch.session_id = 4;
  epoch.payload = encode_epoch({}, sim::SensorFrame{});
  EXPECT_EQ(error_code(get_reply(a, encode_frame(epoch))),
            ErrorCode::kUnknownSession);
  // The re-hello opens a fresh session under the same id.
  EXPECT_EQ(get_reply(a, hello_frame(4, {0, 0}, 0.0)).type,
            FrameType::kReply);
  EXPECT_EQ(a.live_sessions(), 1u);
}

// ----------------------------------------------------- loadgen + determinism

// ----------------------------------------------------- loadgen + determinism

LoadReport run_fleet(ServerFixture& fx, int workers, std::size_t walkers,
                     obs::MetricsRegistry* reg = nullptr) {
  ServerConfig cfg;
  cfg.workers = workers;
  LocalizationServer server(cfg, fx.factory(), reg);
  LoadGenConfig lg;
  lg.walkers = walkers;
  lg.max_epochs_per_walker = 30;
  lg.burst = 1;  // lockstep rounds: no backpressure, identical inputs
  LoadReport report = run_load(server, fx.office, lg, reg);
  server.shutdown();
  return report;
}

TEST(Server, InlineModeIsDeterministic) {
  ServerFixture fx;
  const LoadReport a = run_fleet(fx, /*workers=*/0, /*walkers=*/4);
  const LoadReport b = run_fleet(fx, /*workers=*/0, /*walkers=*/4);
  ASSERT_EQ(a.walkers.size(), b.walkers.size());
  EXPECT_GT(a.total_epochs, 0u);
  for (std::size_t i = 0; i < a.walkers.size(); ++i) {
    EXPECT_EQ(a.walkers[i].epochs_accepted, b.walkers[i].epochs_accepted);
    // Bit-reproducible: same seeds, same inline execution order.
    EXPECT_DOUBLE_EQ(a.walkers[i].mean_error_m, b.walkers[i].mean_error_m);
    EXPECT_DOUBLE_EQ(a.walkers[i].final_estimate.x,
                     b.walkers[i].final_estimate.x);
    EXPECT_DOUBLE_EQ(a.walkers[i].final_estimate.y,
                     b.walkers[i].final_estimate.y);
  }
}

TEST(Server, ThreadedResultsMatchInlineRun) {
  // The stress test of the strand design: with 4 workers racing over 6
  // sessions, every per-session outcome must be exactly the workers=0
  // result -- concurrency may reorder sessions, never corrupt one.
  ServerFixture fx;
  obs::MetricsRegistry reg;  // exercised concurrently under TSan
  const LoadReport inline_run = run_fleet(fx, /*workers=*/0, /*walkers=*/6);
  const LoadReport threaded = run_fleet(fx, /*workers=*/4, /*walkers=*/6, &reg);

  ASSERT_EQ(threaded.walkers.size(), inline_run.walkers.size());
  EXPECT_EQ(threaded.total_epochs, inline_run.total_epochs);
  EXPECT_EQ(threaded.backpressure_total, 0u);
  EXPECT_EQ(threaded.error_total, 0u);
  for (std::size_t i = 0; i < threaded.walkers.size(); ++i) {
    const WalkerOutcome& t = threaded.walkers[i];
    const WalkerOutcome& s = inline_run.walkers[i];
    EXPECT_EQ(t.session_id, s.session_id);
    EXPECT_EQ(t.epochs_accepted, s.epochs_accepted);
    EXPECT_DOUBLE_EQ(t.mean_error_m, s.mean_error_m) << "session " << i;
    EXPECT_DOUBLE_EQ(t.final_estimate.x, s.final_estimate.x);
    EXPECT_DOUBLE_EQ(t.final_estimate.y, s.final_estimate.y);
  }
  EXPECT_EQ(reg.counter("svc.rejected").value(), 0u);
  EXPECT_EQ(reg.histogram("svc.request_us").count(),
            threaded.total_epochs);
}

TEST(LoadGen, ChargesWireBytesIntoOffloadCounters) {
  ServerFixture fx;
  obs::MetricsRegistry reg;
  LocalizationServer server({}, fx.factory(), &reg);
  LoadGenConfig lg;
  lg.walkers = 2;
  lg.max_epochs_per_walker = 10;
  const LoadReport report = run_load(server, fx.office, lg, &reg);

  EXPECT_EQ(report.total_epochs, 20u);
  EXPECT_EQ(report.traffic.epochs, 20u);
  EXPECT_EQ(reg.counter("offload.uplink_bytes").value(),
            report.traffic.uplink_bytes);
  EXPECT_EQ(reg.counter("offload.downlink_bytes").value(),
            report.traffic.downlink_bytes);
  // Every reply is a fixed-size frame; uplink must include svc framing
  // (header + prefix) on top of the offload payload.
  EXPECT_EQ(report.traffic.downlink_bytes, 20u * reply_wire_bytes());
  EXPECT_DOUBLE_EQ(report.traffic.downlink_bytes_per_epoch(),
                   static_cast<double>(reply_wire_bytes()));
  EXPECT_GT(report.traffic.uplink_bytes_per_epoch(),
            static_cast<double>(kHeaderBytes + kEpochUplinkPrefixBytes));
}

// ---------------------------------------------------- live introspection

Frame status_request(StatusFormat format) {
  Frame f;
  f.type = FrameType::kStatus;
  f.payload = encode_status_request(format);
  return f;
}

/// Serve `epochs` frames on session 1 (and open an idle session 2).
void serve_some_epochs(LocalizationServer& server, ServerFixture& fx,
                       std::size_t epochs) {
  sim::WalkConfig wc;
  wc.seed = 21;
  sim::Walker walker(fx.office.place.get(), fx.office.radio.get(), 0, wc);
  offload::PhoneAgent phone;
  phone.reset(walker.start_heading());
  get_reply(server, hello_frame(1, walker.start_position(),
                                walker.start_heading()));
  get_reply(server, hello_frame(2, walker.start_position(),
                                walker.start_heading()));
  for (std::size_t i = 0; i < epochs && !walker.done(); ++i) {
    const sim::SensorFrame f = walker.step(true);
    Frame req;
    req.type = FrameType::kEpoch;
    req.session_id = 1;
    req.payload = encode_epoch(phone.reduce(f), f);
    ASSERT_EQ(get_reply(server, encode_frame(req)).type, FrameType::kReply);
  }
}

TEST(Server, StatusFrameServesJsonSnapshot) {
  ServerFixture fx;
  obs::MetricsRegistry reg;
  obs::SloMonitor slo({}, &reg);
  ServerConfig cfg;
  cfg.slo = &slo;
  LocalizationServer server(cfg, fx.factory(), &reg);
  serve_some_epochs(server, fx, 5);

  const Frame reply =
      get_reply(server, encode_frame(status_request(StatusFormat::kJson)));
  ASSERT_EQ(reply.type, FrameType::kReply);
  const std::string text(reply.payload.begin(), reply.payload.end());
  const std::optional<obs::JsonValue> doc = obs::parse_json(text);
  ASSERT_TRUE(doc.has_value() && doc->is_object()) << text;

  // The statusz schema (DESIGN.md section 13): server, sessions, slo,
  // metrics -- all present and structurally sound.
  const obs::JsonValue* srv = doc->find("server");
  ASSERT_NE(srv, nullptr);
  EXPECT_EQ(srv->find("live_sessions")->as_u64(), 2u);
  EXPECT_FALSE(srv->find("stopping")->boolean);
  const obs::JsonValue* pool = srv->find("pool");
  ASSERT_NE(pool, nullptr);
  EXPECT_NE(pool->find("workers"), nullptr);
  EXPECT_NE(pool->find("active_workers"), nullptr);
  EXPECT_NE(pool->find("queue_depth"), nullptr);

  const obs::JsonValue* sessions = doc->find("sessions");
  ASSERT_NE(sessions, nullptr);
  ASSERT_EQ(sessions->items.size(), 2u);  // ascending id
  EXPECT_EQ(sessions->items[0].find("id")->as_u64(), 1u);
  EXPECT_EQ(sessions->items[0].find("epochs_served")->as_u64(), 5u);
  EXPECT_EQ(sessions->items[1].find("id")->as_u64(), 2u);
  EXPECT_EQ(sessions->items[1].find("epochs_served")->as_u64(), 0u);
  EXPECT_NE(sessions->items[0].find("queue_depth"), nullptr);
  EXPECT_NE(sessions->items[0].find("age_us"), nullptr);

  const obs::JsonValue* slo_obj = doc->find("slo");
  ASSERT_NE(slo_obj, nullptr);
  ASSERT_TRUE(slo_obj->is_object());  // attached -> object, not null
  EXPECT_EQ(slo_obj->find("samples")->as_u64(), 5u);
  EXPECT_FALSE(slo_obj->find("breached")->boolean);

  const obs::JsonValue* metrics = doc->find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_NE(metrics->find("counters"), nullptr);
  EXPECT_NE(metrics->find("counters")->find("svc.accepted"), nullptr);
  EXPECT_EQ(reg.counter("svc.status_requests").value(), 1u);
}

TEST(Server, StatusFrameServesPrometheusText) {
  ServerFixture fx;
  obs::MetricsRegistry reg;
  obs::SloMonitor slo({}, &reg);
  ServerConfig cfg;
  cfg.slo = &slo;
  LocalizationServer server(cfg, fx.factory(), &reg);
  serve_some_epochs(server, fx, 3);

  const Frame reply = get_reply(
      server, encode_frame(status_request(StatusFormat::kPrometheus)));
  ASSERT_EQ(reply.type, FrameType::kReply);
  const std::string text(reply.payload.begin(), reply.payload.end());

  // Registry instruments render through obs::prometheus_text...
  EXPECT_NE(text.find("# TYPE uniloc_svc_accepted counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE uniloc_svc_request_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("uniloc_svc_request_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  // ...followed by server + per-session gauges.
  EXPECT_NE(text.find("uniloc_server_live_sessions 2"), std::string::npos);
  EXPECT_NE(text.find("uniloc_server_stopping 0"), std::string::npos);
  EXPECT_NE(text.find("uniloc_session_epochs_served{session=\"1\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("uniloc_session_epochs_served{session=\"2\"} 0"),
            std::string::npos);
  // The SLO gauges arrive via the registry (slo.* instruments).
  EXPECT_NE(text.find("uniloc_slo_latency_burn_rate"), std::string::npos);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(Server, MalformedStatusRequestIsRejected) {
  ServerFixture fx;
  obs::MetricsRegistry reg;
  LocalizationServer server({}, fx.factory(), &reg);

  const std::vector<std::vector<std::uint8_t>> bad = {
      {},      // empty payload
      {9},     // unknown format byte
      {0, 0},  // over-long payload
  };
  for (const std::vector<std::uint8_t>& payload : bad) {
    Frame req;
    req.type = FrameType::kStatus;
    req.payload = payload;
    const Frame reply = get_reply(server, encode_frame(req));
    EXPECT_EQ(reply.type, FrameType::kError);
    EXPECT_EQ(error_code(reply), ErrorCode::kMalformed);
  }
  EXPECT_EQ(reg.counter("svc.malformed").value(), 3u);
  EXPECT_EQ(reg.counter("svc.status_requests").value(), 0u);
}

// ------------------------------------------------------- span tracing

TEST(Server, EpochSpanTreeIsRootedAndComplete) {
  // Deterministic inline mode: every served epoch must emit exactly one
  // rooted span tree -- svc.epoch over {queue_wait, decode, locate, net,
  // encode}, with the core-layer scheme/fusion spans parented under
  // svc.locate via the ambient TraceContext.
  ServerFixture fx;
  obs::VectorSpanSink sink;
  obs::SpanTracer tracer(&sink);
  ServerConfig cfg;
  cfg.tracer = &tracer;
  LocalizationServer server(cfg, fx.factory(), nullptr);
  constexpr std::size_t kEpochs = 4;
  serve_some_epochs(server, fx, kEpochs);

  EXPECT_EQ(tracer.spans_opened(), tracer.spans_closed());

  std::map<std::uint64_t, std::vector<obs::SpanEvent>> traces;
  for (const obs::SpanEvent& ev : sink.events()) {
    traces[ev.trace_id].push_back(ev);
  }
  ASSERT_EQ(traces.size(), kEpochs);  // hello/bye emit no spans

  for (const auto& [trace_id, spans] : traces) {
    std::set<std::uint64_t> ids;
    for (const obs::SpanEvent& ev : spans) ids.insert(ev.span_id);

    std::uint64_t root_id = 0, locate_id = 0;
    std::size_t roots = 0;
    for (const obs::SpanEvent& ev : spans) {
      if (ev.parent_id == 0) {
        ++roots;
        root_id = ev.span_id;
        EXPECT_EQ(ev.name, "svc.epoch");
      } else {
        EXPECT_EQ(ids.count(ev.parent_id), 1u)
            << ev.name << " orphaned in trace " << trace_id;
      }
      if (ev.name == "svc.locate") locate_id = ev.span_id;
      EXPECT_EQ(ev.session_id, 1u);
    }
    ASSERT_EQ(roots, 1u);
    ASSERT_NE(locate_id, 0u);

    // The fixed svc stages all hang off the root.
    std::set<std::string> svc_children;
    std::set<std::string> core_names;
    for (const obs::SpanEvent& ev : spans) {
      if (ev.category == "svc" && ev.parent_id == root_id) {
        svc_children.insert(ev.name);
      }
      if (ev.category == "core") {
        EXPECT_EQ(ev.parent_id, locate_id) << ev.name;
        core_names.insert(ev.name);
      }
    }
    EXPECT_EQ(svc_children,
              (std::set<std::string>{"svc.queue_wait", "svc.decode",
                                     "svc.locate", "svc.net",
                                     "svc.encode"}));
    // One span per registered scheme plus the fusion span.
    EXPECT_EQ(core_names.count("core.fuse"), 1u);
    EXPECT_GE(core_names.size(), 2u);
  }
}

TEST(Server, FlightRecorderCapturesServedEpochs) {
  ServerFixture fx;
  obs::FlightRecorder flight(16);
  ServerConfig cfg;
  cfg.flight = &flight;
  LocalizationServer server(cfg, fx.factory(), nullptr);
  constexpr std::size_t kEpochs = 5;
  serve_some_epochs(server, fx, kEpochs);

  // Session 1's ring opens with the hello, then one kServerEpoch
  // decision per served epoch with the scheme choice and tau snapshot.
  const std::vector<obs::FlightEvent> events = flight.session_events(1);
  ASSERT_EQ(events.size(), kEpochs + 1);
  EXPECT_EQ(events.front().kind, obs::FlightKind::kHello);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].kind, obs::FlightKind::kServerEpoch);
    EXPECT_EQ(events[i].epoch, i - 1);
    EXPECT_GE(events[i].a, -1);  // scheme index (-1 = none selected)
    EXPECT_GE(events[i].x, 0.0);  // tau
  }
  // A malformed epoch lands as kError in the same session's ring.
  Frame bad_epoch;
  bad_epoch.type = FrameType::kEpoch;
  bad_epoch.session_id = 1;
  bad_epoch.payload = {9, 9, 9};
  const Frame reply = get_reply(server, encode_frame(bad_epoch));
  EXPECT_EQ(reply.type, FrameType::kError);
  const std::vector<obs::FlightEvent> after = flight.session_events(1);
  ASSERT_EQ(after.size(), kEpochs + 2);
  EXPECT_EQ(after.back().kind, obs::FlightKind::kError);
}

}  // namespace
}  // namespace uniloc::svc
