// Shared test fixtures: the expensive static worlds every suite used to
// rebuild privately.
//
// Training the standard models walks two deployments end to end and fits
// Table II -- it dominates suite startup, and half a dozen suites each
// trained their own copy (some twice). These helpers build each fixture
// once per process and hand out const references; gtest runs tests
// sequentially, so the function-local statics need no locking.
#pragma once

#include <cstddef>
#include <map>
#include <utility>

#include "core/deployment.h"
#include "core/trainer.h"
#include "sim/builders.h"

namespace uniloc::testing_util {

/// The standard five-scheme model set (train_standard_models(42, n)),
/// trained once per process per sample count.
inline const core::TrainedModels& standard_models(std::size_t samples = 100) {
  static std::map<std::size_t, core::TrainedModels> cache;
  auto it = cache.find(samples);
  if (it == cache.end()) {
    it = cache.emplace(samples, core::train_standard_models(42, samples))
             .first;
  }
  return it->second;
}

/// The canonical office world of the service suites: office_place(42)
/// deployed with seed 42, fingerprint databases included. Read-only --
/// tests that mutate their deployment must build their own.
inline const core::Deployment& office_deployment() {
  static const core::Deployment d = core::make_deployment(
      sim::office_place(42), core::DeploymentOptions{.seed = 42});
  return d;
}

}  // namespace uniloc::testing_util
