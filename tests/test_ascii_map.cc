#include "io/ascii_map.h"

#include <gtest/gtest.h>

#include "sim/builders.h"
#include "sim/floorplan.h"

namespace uniloc::io {
namespace {

TEST(AsciiMap, RendersWalkwaysAndInfrastructure) {
  const sim::Place office = sim::office_place(42);
  const std::string map = render_ascii_map(office);
  EXPECT_NE(map.find('.'), std::string::npos);  // walkway dots
  EXPECT_NE(map.find('A'), std::string::npos);  // access points
  EXPECT_NE(map.find('*'), std::string::npos);  // landmarks
}

TEST(AsciiMap, WallsOnlyWhenDeployedAndEnabled) {
  sim::Place office = sim::office_place(42);
  EXPECT_EQ(render_ascii_map(office).find('#'), std::string::npos);
  sim::deploy_walls(office);
  EXPECT_NE(render_ascii_map(office).find('#'), std::string::npos);
  AsciiMapOptions opts;
  opts.show_walls = false;
  EXPECT_EQ(render_ascii_map(office, opts).find('#'), std::string::npos);
}

TEST(AsciiMap, TrajectoryOverlayWithEndpoints) {
  const sim::Place office = sim::office_place(42);
  const std::vector<geo::Vec2> traj{{5.0, 5.0}, {10.0, 5.0}, {15.0, 5.0}};
  const std::string map = render_ascii_map(office, {}, traj);
  EXPECT_NE(map.find('S'), std::string::npos);
  EXPECT_NE(map.find('E'), std::string::npos);
  EXPECT_NE(map.find('o'), std::string::npos);
}

TEST(AsciiMap, WidthControlsRaster) {
  const sim::Place office = sim::office_place(42);
  AsciiMapOptions narrow;
  narrow.width_chars = 40;
  const std::string map = render_ascii_map(office, narrow);
  // No line may exceed width + 1 characters.
  std::size_t start = 0;
  while (start < map.size()) {
    const std::size_t end = map.find('\n', start);
    EXPECT_LE(end - start, 41u);
    start = end + 1;
  }
}

TEST(AsciiMap, OutOfFramePointsIgnored) {
  const sim::Place office = sim::office_place(42);
  const std::vector<geo::Vec2> traj{{1e6, 1e6}};
  // Must not crash or write out of bounds.
  const std::string map = render_ascii_map(office, {}, traj);
  EXPECT_FALSE(map.empty());
}

}  // namespace
}  // namespace uniloc::io
