#include "stats/matrix.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace uniloc::stats {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, Identity) {
  const Matrix id = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, Transpose) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, Multiply) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyIdentityIsNoop) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ((a * Matrix::identity(2)).max_abs_diff(a), 0.0);
}

TEST(Matrix, AddSubtractScale) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ((a + b)(0, 0), 2.0);
  EXPECT_DOUBLE_EQ((a - b)(1, 1), 3.0);
  EXPECT_DOUBLE_EQ((a * 2.0)(1, 0), 6.0);
}

TEST(Matrix, MatrixVectorProduct) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> v = a * std::vector<double>{1.0, 1.0};
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
}

TEST(Matrix, InverseTwoByTwo) {
  Matrix a{{4.0, 7.0}, {2.0, 6.0}};
  const Matrix inv = a.inverse();
  EXPECT_LT((a * inv).max_abs_diff(Matrix::identity(2)), 1e-12);
}

TEST(Matrix, InverseWithPivoting) {
  // Leading zero forces a row swap.
  Matrix a{{0.0, 1.0, 2.0}, {1.0, 0.0, 3.0}, {4.0, -3.0, 8.0}};
  const Matrix inv = a.inverse();
  EXPECT_LT((a * inv).max_abs_diff(Matrix::identity(3)), 1e-10);
}

TEST(Matrix, InverseSingularThrows) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(a.inverse(), std::runtime_error);
}

TEST(Matrix, InverseNonSquareThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(a.inverse(), std::runtime_error);
}

TEST(Matrix, Solve) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const std::vector<double> x = a.solve({5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

}  // namespace
}  // namespace uniloc::stats
