// Additional runner / framework-configuration coverage.
#include <gtest/gtest.h>

#include "core/runner.h"
#include "core/trainer.h"
#include "schemes/horus_scheme.h"
#include "stats/descriptive.h"
#include "testing_util.h"

namespace uniloc::core {
namespace {

const TrainedModels& models() { return testing_util::standard_models(150); }

const Deployment& office() { return testing_util::office_deployment(); }

TEST(RunnerExtra, DutyCycleDisabledKeepsGpsOn) {
  Uniloc u = make_uniloc(office(), models());
  RunOptions opts;
  opts.walk.seed = 21;
  opts.use_gps_duty_cycle = false;
  const RunResult run = run_walk(u, office(), 0, opts);
  for (const EpochRecord& e : run.epochs) {
    EXPECT_TRUE(e.gps_was_enabled);
  }
  EXPECT_DOUBLE_EQ(run.gps_duty_fraction(), 1.0);
}

TEST(RunnerExtra, DutyCycleEnabledTurnsGpsOffIndoors) {
  Uniloc u = make_uniloc(office(), models());
  RunOptions opts;
  opts.walk.seed = 22;
  const RunResult run = run_walk(u, office(), 0, opts);
  // The office is fully indoor: after the first epoch GPS must be off.
  EXPECT_LT(run.gps_duty_fraction(), 0.05);
}

TEST(RunnerExtra, SchemeErrorsSkipUnavailableEpochs) {
  Uniloc u = make_uniloc(office(), models());
  RunOptions opts;
  opts.walk.seed = 23;
  const RunResult run = run_walk(u, office(), 0, opts);
  // GPS never fixes indoors: its error list must be empty, and its
  // availability flag false at every epoch.
  const std::vector<double> gps_errs = run.scheme_errors(0);
  EXPECT_TRUE(gps_errs.empty());
  for (const EpochRecord& e : run.epochs) {
    if (e.t > 1.0) {
      EXPECT_FALSE(e.scheme_available[0]);
    }
  }
}

TEST(RunnerExtra, ScanCountsRecorded) {
  Uniloc u = make_uniloc(office(), models());
  RunOptions opts;
  opts.walk.seed = 24;
  const RunResult run = run_walk(u, office(), 0, opts);
  double wifi_sum = 0.0;
  for (const EpochRecord& e : run.epochs) {
    wifi_sum += static_cast<double>(e.wifi_count);
    EXPECT_GE(e.cell_count, 1u);  // cellular pervasive
  }
  EXPECT_GT(wifi_sum / static_cast<double>(run.epochs.size()), 1.0);
}

TEST(RunnerExtra, SchemeAccessorExposesRegisteredSchemes) {
  Uniloc u = make_uniloc(office(), models());
  ASSERT_EQ(u.num_schemes(), 5u);
  EXPECT_EQ(u.scheme(0).family(), schemes::SchemeFamily::kGps);
  EXPECT_EQ(u.scheme(4).family(), schemes::SchemeFamily::kFusion);
}

TEST(RunnerExtra, HorusOnCellularDatabaseReportsCellFamily) {
  schemes::HorusScheme horus(office().cell_db.get(), {});
  EXPECT_EQ(horus.family(), schemes::SchemeFamily::kCellFingerprint);
}

TEST(RunnerExtra, AllCampusPathsComplete) {
  static Deployment campus = make_deployment(sim::campus());
  for (std::size_t p = 0; p < campus.place->walkways().size(); ++p) {
    Uniloc u = make_uniloc(campus, models(), {}, false, 70 + p);
    RunOptions opts;
    opts.walk.seed = 80 + p;
    opts.record_every = 6;
    const RunResult run = run_walk(u, campus, p, opts);
    EXPECT_GT(run.epochs.size(), 50u) << "path " << p;
    EXPECT_LT(stats::mean(run.uniloc2_errors()), 60.0) << "path " << p;
  }
}

TEST(RunnerExtra, CalibratedUnilocRunsOnHeterogeneousDevice) {
  Uniloc u = make_uniloc(office(), models(), {}, /*calibrate_offset=*/true);
  RunOptions opts;
  opts.walk.seed = 25;
  opts.walk.device = sim::lg_g3();
  const RunResult run = run_walk(u, office(), 0, opts);
  EXPECT_GT(run.epochs.size(), 100u);
  EXPECT_LT(stats::mean(run.uniloc2_errors()), 12.0);
}

}  // namespace
}  // namespace uniloc::core
