#include "geo/vec2.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace uniloc::geo {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Vec2, DefaultIsZero) {
  Vec2 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
}

TEST(Vec2, Arithmetic) {
  Vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(a / 2.0, (Vec2{0.5, 1.0}));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 a{1.0, 1.0};
  a += {2.0, 3.0};
  EXPECT_EQ(a, (Vec2{3.0, 4.0}));
  a -= {1.0, 1.0};
  EXPECT_EQ(a, (Vec2{2.0, 3.0}));
  a *= 2.0;
  EXPECT_EQ(a, (Vec2{4.0, 6.0}));
}

TEST(Vec2, DotAndCross) {
  Vec2 a{1.0, 0.0}, b{0.0, 1.0};
  EXPECT_EQ(a.dot(b), 0.0);
  EXPECT_EQ(a.cross(b), 1.0);
  EXPECT_EQ(b.cross(a), -1.0);
  EXPECT_EQ(a.dot(a), 1.0);
}

TEST(Vec2, NormAndNormalized) {
  Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  const Vec2 u = v.normalized();
  EXPECT_NEAR(u.norm(), 1.0, 1e-12);
  EXPECT_NEAR(u.x, 0.6, 1e-12);
}

TEST(Vec2, NormalizedZeroVectorIsZero) {
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});
}

TEST(Vec2, Perpendicular) {
  Vec2 v{1.0, 0.0};
  EXPECT_EQ(v.perp(), (Vec2{0.0, 1.0}));
  EXPECT_NEAR(v.perp().dot(v), 0.0, 1e-12);
}

TEST(Vec2, AngleAndRotation) {
  EXPECT_NEAR((Vec2{1.0, 0.0}).angle(), 0.0, 1e-12);
  EXPECT_NEAR((Vec2{0.0, 1.0}).angle(), kPi / 2.0, 1e-12);
  const Vec2 r = Vec2{1.0, 0.0}.rotated(kPi / 2.0);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
}

TEST(Vec2, Distance) {
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance2({0.0, 0.0}, {3.0, 4.0}), 25.0);
}

TEST(Vec2, Lerp) {
  const Vec2 m = lerp({0.0, 0.0}, {10.0, 20.0}, 0.5);
  EXPECT_EQ(m, (Vec2{5.0, 10.0}));
  EXPECT_EQ(lerp({1.0, 1.0}, {2.0, 2.0}, 0.0), (Vec2{1.0, 1.0}));
  EXPECT_EQ(lerp({1.0, 1.0}, {2.0, 2.0}, 1.0), (Vec2{2.0, 2.0}));
}

TEST(WrapAngle, StaysInRange) {
  for (double a = -20.0; a <= 20.0; a += 0.37) {
    const double w = wrap_angle(a);
    EXPECT_GT(w, -kPi - 1e-12);
    EXPECT_LE(w, kPi + 1e-12);
    // Same direction.
    EXPECT_NEAR(std::cos(w), std::cos(a), 1e-9);
    EXPECT_NEAR(std::sin(w), std::sin(a), 1e-9);
  }
}

TEST(AngleDiff, SignedSmallestDifference) {
  EXPECT_NEAR(angle_diff(0.1, -0.1), 0.2, 1e-12);
  EXPECT_NEAR(angle_diff(-0.1, 0.1), -0.2, 1e-12);
  // Wraps across the +-pi boundary.
  EXPECT_NEAR(angle_diff(kPi - 0.05, -kPi + 0.05), -0.1, 1e-9);
}

}  // namespace
}  // namespace uniloc::geo
