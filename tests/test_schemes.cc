#include <gtest/gtest.h>

#include "core/deployment.h"
#include "schemes/fingerprint_scheme.h"
#include "schemes/fusion_scheme.h"
#include "schemes/gps_scheme.h"
#include "schemes/pdr_scheme.h"
#include "sim/walker.h"

namespace uniloc::schemes {
namespace {

// Shared office deployment for scheme-level tests.
class SchemeTest : public ::testing::Test {
 protected:
  SchemeTest()
      : deployment_(core::make_deployment(
            sim::office_place(42), core::DeploymentOptions{.seed = 42})) {}

  sim::Walker make_walker(std::uint64_t seed = 1) {
    sim::WalkConfig cfg;
    cfg.seed = seed;
    return sim::Walker(deployment_.place.get(), deployment_.radio.get(), 0,
                       cfg);
  }

  /// Run a scheme over a full walk and return its mean error and the
  /// fraction of epochs it was available.
  std::pair<double, double> run(LocalizationScheme& scheme,
                                std::uint64_t seed = 1,
                                bool gps_on = true) {
    sim::Walker walker = make_walker(seed);
    scheme.reset({walker.start_position(), walker.start_heading()});
    double err_sum = 0.0;
    int avail = 0, total = 0;
    while (!walker.done()) {
      const sim::SensorFrame f = walker.step(gps_on);
      const SchemeOutput out = scheme.update(f);
      ++total;
      if (out.available) {
        ++avail;
        err_sum += geo::distance(out.estimate, f.truth_pos);
      }
    }
    return {avail > 0 ? err_sum / avail : -1.0,
            static_cast<double>(avail) / total};
  }

  core::Deployment deployment_;
};

// ----------------------------------------------------------------- scheme

TEST(Posterior, NormalizeSumsToOne) {
  Posterior p;
  p.support = {{{0.0, 0.0}, 2.0}, {{1.0, 0.0}, 6.0}};
  p.normalize();
  EXPECT_NEAR(p.support[0].weight + p.support[1].weight, 1.0, 1e-12);
  EXPECT_NEAR(p.support[1].weight, 0.75, 1e-12);
}

TEST(Posterior, NormalizeZeroWeightsBecomesUniform) {
  Posterior p;
  p.support = {{{0.0, 0.0}, 0.0}, {{1.0, 0.0}, 0.0}};
  p.normalize();
  EXPECT_NEAR(p.support[0].weight, 0.5, 1e-12);
}

TEST(Posterior, MeanIsWeightedCentroid) {
  Posterior p;
  p.support = {{{0.0, 0.0}, 1.0}, {{4.0, 0.0}, 3.0}};
  const geo::Vec2 m = p.mean();
  EXPECT_NEAR(m.x, 3.0, 1e-12);
}

TEST(Posterior, SpreadZeroForPoint) {
  EXPECT_DOUBLE_EQ(Posterior::point({2.0, 3.0}).spread(), 0.0);
}

TEST(Posterior, GaussianCenteredAndNormalized) {
  const Posterior p = Posterior::gaussian({5.0, 5.0}, 3.0);
  const geo::Vec2 m = p.mean();
  EXPECT_NEAR(m.x, 5.0, 1e-9);
  EXPECT_NEAR(m.y, 5.0, 1e-9);
  double total = 0.0;
  for (const WeightedPoint& wp : p.support) total += wp.weight;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(p.spread(), 3.0, 1.5);
}

TEST(Posterior, ToGridConservesMass) {
  const Posterior p = Posterior::gaussian({5.0, 5.0}, 2.0);
  geo::Grid grid(geo::BBox{{-10.0, -10.0}, {20.0, 20.0}}, 1.0);
  const std::vector<double> mass = p.to_grid(grid);
  double total = 0.0;
  for (double m : mass) total += m;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SchemeFamily, Names) {
  EXPECT_STREQ(family_name(SchemeFamily::kGps), "gps");
  EXPECT_STREQ(family_name(SchemeFamily::kFusion), "fusion");
}

// -------------------------------------------------------------------- GPS

TEST_F(SchemeTest, GpsUnavailableWithoutFix) {
  GpsScheme gps(deployment_.place->frame());
  gps.reset({{0.0, 0.0}, 0.0});
  sim::SensorFrame frame;  // no gps fix
  EXPECT_FALSE(gps.update(frame).available);
}

TEST_F(SchemeTest, GpsConvertsToLocalFrame) {
  GpsScheme gps(deployment_.place->frame());
  gps.reset({{0.0, 0.0}, 0.0});
  sim::SensorFrame frame;
  sim::GpsFix fix;
  fix.pos = deployment_.place->frame().to_geo({30.0, 40.0});
  fix.hdop = 1.0;
  fix.num_satellites = 9;
  frame.gps = fix;
  const SchemeOutput out = gps.update(frame);
  ASSERT_TRUE(out.available);
  EXPECT_NEAR(out.estimate.x, 30.0, 1e-6);
  EXPECT_NEAR(out.estimate.y, 40.0, 1e-6);
  EXPECT_DOUBLE_EQ(out.observables.at("hdop"), 1.0);
  EXPECT_DOUBLE_EQ(out.observables.at("num_satellites"), 9.0);
  // Posterior centered at the fix.
  EXPECT_LT(geo::distance(out.posterior.mean(), out.estimate), 0.5);
}

// --------------------------------------------------------- fingerprinting

TEST_F(SchemeTest, WifiAccurateInOffice) {
  FingerprintScheme::Options opts;
  opts.softmax_scale_db = 3.0;
  FingerprintScheme wifi(deployment_.wifi_db.get(), opts);
  const auto [err, avail] = run(wifi);
  EXPECT_GT(avail, 0.95);
  EXPECT_LT(err, 8.0);
  EXPECT_GT(err, 0.3);
}

TEST_F(SchemeTest, WifiUnavailableOnEmptyScan) {
  FingerprintScheme wifi(deployment_.wifi_db.get(), {});
  wifi.reset({{0.0, 0.0}, 0.0});
  sim::SensorFrame frame;  // empty scans
  EXPECT_FALSE(wifi.update(frame).available);
}

TEST_F(SchemeTest, WifiRespectsMinTransmitters) {
  FingerprintScheme::Options opts;
  opts.min_transmitters = 3;
  FingerprintScheme wifi(deployment_.wifi_db.get(), opts);
  wifi.reset({{0.0, 0.0}, 0.0});
  sim::SensorFrame frame;
  frame.wifi = {{1, -60.0}, {2, -70.0}};  // only two APs
  EXPECT_FALSE(wifi.update(frame).available);
}

TEST_F(SchemeTest, WifiReportsObservables) {
  FingerprintScheme wifi(deployment_.wifi_db.get(), {});
  sim::Walker walker = make_walker(2);
  wifi.reset({walker.start_position(), walker.start_heading()});
  walker.step();
  const sim::SensorFrame f = walker.step();
  const SchemeOutput out = wifi.update(f);
  ASSERT_TRUE(out.available);
  EXPECT_GT(out.observables.at("num_transmitters"), 0.0);
  EXPECT_GE(out.observables.at("top_distance"), 0.0);
  EXPECT_GE(out.observables.at("top3_distance_sd"), 0.0);
}

TEST_F(SchemeTest, CellularCoarserThanWifi) {
  FingerprintScheme wifi(deployment_.wifi_db.get(), {});
  FingerprintScheme cell(deployment_.cell_db.get(), {});
  EXPECT_EQ(wifi.name(), "WiFi");
  EXPECT_EQ(cell.name(), "Cellular");
  EXPECT_EQ(cell.family(), SchemeFamily::kCellFingerprint);
  const auto [wifi_err, wa] = run(wifi, 3);
  const auto [cell_err, ca] = run(cell, 3);
  EXPECT_GT(ca, 0.95);  // cellular available everywhere
  EXPECT_GT(cell_err, wifi_err);  // but coarser
}

TEST_F(SchemeTest, DeviceOffsetHurtsAndCalibrationRecovers) {
  auto run_with = [&](bool calibrate) {
    FingerprintScheme::Options opts;
    opts.calibrate_offset = calibrate;
    opts.softmax_scale_db = 3.0;
    FingerprintScheme wifi(deployment_.wifi_db.get(), opts);
    sim::WalkConfig cfg;
    cfg.seed = 4;
    cfg.device = sim::lg_g3();
    sim::Walker walker(deployment_.place.get(), deployment_.radio.get(), 0,
                       cfg);
    wifi.reset({walker.start_position(), walker.start_heading()});
    double err = 0.0;
    int n = 0;
    while (!walker.done()) {
      const sim::SensorFrame f = walker.step(false);
      const SchemeOutput out = wifi.update(f);
      if (out.available) {
        err += geo::distance(out.estimate, f.truth_pos);
        ++n;
      }
    }
    return err / n;
  };
  const double raw = run_with(false);
  const double calibrated = run_with(true);
  EXPECT_LT(calibrated, raw);
}

// -------------------------------------------------------------------- PDR

TEST_F(SchemeTest, PdrAlwaysAvailableAfterReset) {
  PdrScheme pdr(deployment_.place.get(), PdrOptions{});
  const auto [err, avail] = run(pdr, 5);
  EXPECT_DOUBLE_EQ(avail, 1.0);
  EXPECT_GT(err, 0.2);
  EXPECT_LT(err, 15.0);
}

TEST_F(SchemeTest, PdrNotStartedIsUnavailable) {
  PdrScheme pdr(deployment_.place.get(), PdrOptions{});
  sim::SensorFrame frame;
  EXPECT_FALSE(pdr.update(frame).available);
}

TEST_F(SchemeTest, PdrTracksDistanceSinceLandmark) {
  PdrScheme pdr(deployment_.place.get(), PdrOptions{});
  sim::Walker walker = make_walker(6);
  pdr.reset({walker.start_position(), walker.start_heading()});
  double prev = 0.0;
  bool saw_reset = false;
  while (!walker.done()) {
    const sim::SensorFrame f = walker.step();
    const SchemeOutput out = pdr.update(f);
    const double d = out.observables.at("dist_since_landmark");
    if (d < prev - 1.0) saw_reset = true;
    prev = d;
  }
  EXPECT_TRUE(saw_reset);  // landmarks must reset the counter
}

TEST_F(SchemeTest, MapConstraintImprovesPdr) {
  PdrOptions with_map;
  PdrOptions without_map;
  without_map.use_map = false;
  without_map.use_landmarks = false;
  PdrScheme constrained(deployment_.place.get(), with_map);
  PdrScheme unconstrained(deployment_.place.get(), without_map);
  const auto [err_map, a1] = run(constrained, 7);
  const auto [err_free, a2] = run(unconstrained, 7);
  EXPECT_LT(err_map, err_free);
}

TEST_F(SchemeTest, PdrPosteriorIsParticleCloud) {
  PdrScheme pdr(deployment_.place.get(), PdrOptions{});
  sim::Walker walker = make_walker(8);
  pdr.reset({walker.start_position(), walker.start_heading()});
  const sim::SensorFrame f = walker.step();
  const SchemeOutput out = pdr.update(f);
  ASSERT_TRUE(out.available);
  EXPECT_EQ(out.posterior.support.size(), PdrOptions{}.num_particles);
}

// ----------------------------------------------------------------- fusion

TEST_F(SchemeTest, FusionBeatsPlainPdrIndoors) {
  FusionOptions fo;
  FusionScheme fusion(deployment_.place.get(), deployment_.wifi_db.get(), fo);
  PdrScheme pdr(deployment_.place.get(), PdrOptions{});
  double fusion_sum = 0.0, pdr_sum = 0.0;
  for (std::uint64_t seed : {10u, 11u, 12u}) {
    fusion_sum += run(fusion, seed).first;
    pdr_sum += run(pdr, seed).first;
  }
  EXPECT_LT(fusion_sum, pdr_sum);
}

TEST_F(SchemeTest, FusionFamilyAndName) {
  FusionScheme fusion(deployment_.place.get(), deployment_.wifi_db.get(),
                      FusionOptions{});
  EXPECT_EQ(fusion.name(), "Fusion");
  EXPECT_EQ(fusion.family(), SchemeFamily::kFusion);
}

// ------------------------------------------------------------ calibration

TEST(OffsetCalibrator, LearnsConstantOffset) {
  // Build a tiny database and feed scans shifted by a constant.
  FingerprintDatabase db;
  // Use the public build path via a synthetic place is heavy; instead
  // exercise calibrate() against an empty db (no-op) and rely on the
  // scheme-level test above for end-to-end behaviour.
  OffsetCalibrator cal;
  std::vector<sim::ApReading> scan{{1, -60.0}};
  const auto out = cal.calibrate(scan, db);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].rssi_dbm, -60.0);  // empty db: unchanged
  EXPECT_DOUBLE_EQ(cal.offset_db(), 0.0);
}

}  // namespace
}  // namespace uniloc::schemes
