#include "sim/radio.h"

#include <gtest/gtest.h>

#include "sim/builders.h"

namespace uniloc::sim {
namespace {

class RadioTest : public ::testing::Test {
 protected:
  RadioTest()
      : place_(office_place(42)),
        radio_(&place_, RadioParams{}, CellRadioParams{}, 42) {}

  Place place_;
  RadioEnvironment radio_;
};

TEST_F(RadioTest, RssiDecreasesWithDistance) {
  const AccessPoint& ap = place_.access_points().front();
  const auto near = radio_.wifi_mean_rssi(ap, ap.pos + geo::Vec2{2.0, 0.0});
  const auto far = radio_.wifi_mean_rssi(ap, ap.pos + geo::Vec2{30.0, 0.0});
  ASSERT_TRUE(near.has_value());
  if (far.has_value()) {
    EXPECT_GT(*near, *far + 5.0);
  }
}

TEST_F(RadioTest, MeanRssiDeterministic) {
  const AccessPoint& ap = place_.access_points().front();
  const geo::Vec2 pos{20.0, 10.0};
  EXPECT_EQ(radio_.wifi_mean_rssi(ap, pos), radio_.wifi_mean_rssi(ap, pos));
}

TEST_F(RadioTest, ScanJittersAroundMean) {
  const geo::Vec2 pos{20.0, 8.0};
  stats::Rng rng(1);
  const auto scan1 = radio_.wifi_scan(pos, rng);
  const auto noiseless = radio_.wifi_scan_noiseless(pos);
  ASSERT_FALSE(scan1.empty());
  ASSERT_FALSE(noiseless.empty());
  // Same transmitters (modulo threshold edge cases), different values.
  bool any_diff = false;
  for (const ApReading& r : scan1) {
    for (const ApReading& m : noiseless) {
      if (m.id == r.id && std::abs(m.rssi_dbm - r.rssi_dbm) > 1e-9) {
        any_diff = true;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(RadioTest, ScanRespectsAudibilityThreshold) {
  stats::Rng rng(2);
  const auto scan = radio_.wifi_scan({20.0, 8.0}, rng);
  for (const ApReading& r : scan) {
    EXPECT_GE(r.rssi_dbm, radio_.wifi_params().audible_threshold_dbm);
  }
}

TEST_F(RadioTest, ShadowingIsStaticInSpace) {
  // Two scans at the same position differ only by temporal noise, whose
  // sd is temporal_sd_db -- so averages converge to the same mean.
  const geo::Vec2 pos{25.0, 10.0};
  const AccessPoint& ap = place_.access_points().front();
  const auto mean1 = radio_.wifi_mean_rssi(ap, pos);
  RadioEnvironment radio2(&place_, RadioParams{}, CellRadioParams{}, 42);
  const auto mean2 = radio2.wifi_mean_rssi(ap, pos);
  ASSERT_TRUE(mean1.has_value());
  ASSERT_TRUE(mean2.has_value());
  EXPECT_DOUBLE_EQ(*mean1, *mean2);  // same seed => same shadow field
}

TEST_F(RadioTest, DifferentSeedDifferentShadow) {
  const geo::Vec2 pos{25.0, 10.0};
  const AccessPoint& ap = place_.access_points().front();
  RadioEnvironment other(&place_, RadioParams{}, CellRadioParams{}, 43);
  const auto a = radio_.wifi_mean_rssi(ap, pos);
  const auto b = other.wifi_mean_rssi(ap, pos);
  if (a.has_value() && b.has_value()) {
    EXPECT_NE(*a, *b);
  }
}

TEST_F(RadioTest, CellularAudibleEverywhereInOffice) {
  stats::Rng rng(3);
  for (double x = 5.0; x < 50.0; x += 10.0) {
    const auto scan = radio_.cell_scan({x, 10.0}, rng);
    EXPECT_GE(scan.size(), 2u) << "at x=" << x;
  }
}

TEST_F(RadioTest, CellNoiselessMatchesMean) {
  const auto scan = radio_.cell_scan_noiseless({20.0, 10.0});
  for (const ApReading& r : scan) {
    for (const CellTower& t : place_.cell_towers()) {
      if (t.id != r.id) continue;
      const auto mean = radio_.cell_mean_rssi(t, {20.0, 10.0});
      ASSERT_TRUE(mean.has_value());
      EXPECT_DOUBLE_EQ(*mean, r.rssi_dbm);
    }
  }
}

TEST(RadioBasement, WifiUnreachableCellWeakened) {
  const Place c = campus(42);
  const RadioEnvironment radio(&c, RadioParams{}, CellRadioParams{}, 42);
  // A point deep in Path 1's basement segment (arclen ~155 m).
  const geo::Vec2 basement = c.walkways()[0].line.point_at(155.0);
  ASSERT_EQ(c.environment_at(basement).type, SegmentType::kBasement);

  stats::Rng rng(4);
  EXPECT_TRUE(radio.wifi_scan(basement, rng).empty());
  const auto cell = radio.cell_scan(basement, rng);
  EXPECT_GE(cell.size(), 1u);  // cellular still reaches the basement

  // Outdoors the same towers are much stronger.
  const geo::Vec2 outdoor = c.walkways()[0].line.point_at(300.0);
  const auto cell_out = radio.cell_scan(outdoor, rng);
  double best_base = -1e9, best_out = -1e9;
  for (const ApReading& r : cell) best_base = std::max(best_base, r.rssi_dbm);
  for (const ApReading& r : cell_out) best_out = std::max(best_out, r.rssi_dbm);
  EXPECT_GT(best_out, best_base + 10.0);
}

TEST(RadioWall, PenetrationLossAppliesAcrossIndoorOutdoor) {
  Place p("t", {1.35, 103.68});
  p.add_walkway(make_walkway("w", {0.0, 0.0}, 0.0,
                             {{SegmentType::kOffice, 30.0, 0.0},
                              {SegmentType::kOpenSpace, 30.0, 0.0}}));
  AccessPoint ap;
  ap.id = 1;
  ap.pos = {10.0, 0.0};
  ap.indoor = true;
  p.add_access_point(ap);
  const RadioEnvironment radio(&p, RadioParams{}, CellRadioParams{}, 1);
  // Indoor and outdoor receivers at the same distance from the AP.
  const auto indoor = radio.wifi_mean_rssi(p.access_points()[0], {20.0, 0.0});
  const auto outdoor =
      radio.wifi_mean_rssi(p.access_points()[0], {42.0, 0.0});
  ASSERT_TRUE(indoor.has_value());
  // The outdoor receiver pays the wall penetration (plus distance); even
  // at a generous margin it must be well below the indoor level.
  if (outdoor.has_value()) {
    EXPECT_LT(*outdoor, *indoor - 10.0);
  }
}

}  // namespace
}  // namespace uniloc::sim
