// The property-test engine's own suite: generator determinism, the
// reproducer codec, shrinking against injected bugs (the end-to-end
// acceptance: a violation shrinks to a minimal spec, is persisted, and
// replays green once the bug is gone), and the real-oracle sweeps that
// ARE the chaos harness -- generated venues, gaits, fault schedules,
// crash points and fleet churn, checked against invariants I1-I7.
//
// Case counts scale with UNILOC_PROPTEST_CASES (scripts/check.sh: 64
// quick, 512 deep); the defaults keep plain `ctest` fast.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "proptest/case.h"
#include "proptest/engine.h"
#include "proptest/gen.h"
#include "proptest/oracle.h"
#include "proptest/shrink.h"
#include "testing_util.h"

namespace uniloc {
namespace {

using proptest::CaseSpec;
using proptest::ChurnEvent;
using proptest::Engine;
using proptest::EngineConfig;
using proptest::EngineReport;
using proptest::Verdict;

Verdict fail_with(const std::string& msg) {
  Verdict v;
  v.violations.push_back(msg);
  return v;
}

/// Scoped env override that restores the previous value on destruction
/// (check.sh may have set UNILOC_PROPTEST_CASES for the whole binary).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (saved_) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

// ------------------------------------------------- generator determinism

TEST(Generator, SameSeedSameByteIdenticalSequence) {
  // The engine's core contract: case_at(i) is a pure function of
  // (seed, i) -- byte-identical JSON across independent expansions.
  for (std::size_t i = 0; i < 64; ++i) {
    const CaseSpec a = proptest::generate_case(0xD1CE, i);
    const CaseSpec b = proptest::generate_case(0xD1CE, i);
    ASSERT_EQ(proptest::to_json(a), proptest::to_json(b)) << "case " << i;
    ASSERT_EQ(a, b);
  }
}

TEST(Generator, DifferentSeedsDiverge) {
  std::size_t differing = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    differing += !(proptest::generate_case(1, i) ==
                   proptest::generate_case(2, i));
  }
  EXPECT_GT(differing, 12u);
}

TEST(Generator, CoversEveryServiceShape) {
  // Guard against generator drift: across a few hundred cases the sweep
  // must keep exercising every differential pass the oracle implements.
  std::size_t workers = 0, fleets = 0, churns = 0, crashes = 0, bursts = 0;
  for (std::size_t i = 0; i < 300; ++i) {
    const CaseSpec s = proptest::generate_case(0xC0FFEE, i);
    workers += s.workers > 0;
    fleets += s.shards > 1;
    churns += !s.churn.empty();
    crashes += s.crash_restore;
    bursts += s.burst > 1;
    ASSERT_GE(s.walkers, 1u);
    ASSERT_GE(s.epochs, 1u);
    ASSERT_GE(s.place.walkways, 1);
  }
  EXPECT_GT(workers, 30u);
  EXPECT_GT(fleets, 50u);
  EXPECT_GT(churns, 15u);
  EXPECT_GT(crashes, 30u);
  EXPECT_GT(bursts, 30u);
}

TEST(Generator, RandomPlaceIsDeterministicAndWalkable) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    sim::RandomPlaceSpec spec;
    spec.seed = seed;
    spec.walkways = 1 + static_cast<int>(seed % 3);
    spec.venue_mix = static_cast<int>(seed % 4);
    const sim::Place a = sim::random_place(spec);
    const sim::Place b = sim::random_place(spec);
    ASSERT_EQ(a.walkways().size(), b.walkways().size());
    ASSERT_EQ(a.access_points().size(), b.access_points().size());
    ASSERT_EQ(static_cast<std::size_t>(spec.walkways), a.walkways().size());
    for (std::size_t w = 0; w < a.walkways().size(); ++w) {
      ASSERT_GT(a.walkways()[w].line.length(), 1.0);
      ASSERT_DOUBLE_EQ(a.walkways()[w].line.length(),
                       b.walkways()[w].line.length());
    }
  }
}

// ------------------------------------------------------ reproducer codec

TEST(ReproCodec, RoundTripsEveryGeneratedCase) {
  for (std::size_t i = 0; i < 200; ++i) {
    const CaseSpec s = proptest::generate_case(0xB0B, i);
    const std::string line = proptest::to_json(s);
    ASSERT_EQ(line.find('\n'), std::string::npos) << "not one line";
    const std::optional<CaseSpec> back = proptest::from_json(line);
    ASSERT_TRUE(back.has_value()) << line;
    ASSERT_EQ(*back, s) << line;
  }
}

TEST(ReproCodec, Preserves64BitSeedsExactly) {
  // JSON numbers are doubles; seeds above 2^53 must survive anyway
  // (they ride as hex strings).
  CaseSpec s = proptest::generate_case(7, 0);
  s.case_seed = 0xFFFF'FFFF'FFFF'FFFFULL;
  s.load_seed = 0x8000'0000'0000'0001ULL;
  s.deploy_seed = (1ULL << 53) + 1;
  s.faults.seed = 0xDEAD'BEEF'CAFE'F00DULL;
  s.place.seed = 0x7FFF'FFFF'FFFF'FFFDULL;
  const std::optional<CaseSpec> back = proptest::from_json(proptest::to_json(s));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->case_seed, s.case_seed);
  EXPECT_EQ(back->load_seed, s.load_seed);
  EXPECT_EQ(back->deploy_seed, s.deploy_seed);
  EXPECT_EQ(back->faults.seed, s.faults.seed);
  EXPECT_EQ(back->place.seed, s.place.seed);
}

TEST(ReproCodec, RejectsMalformedInputWithoutCrashing) {
  const char* bad[] = {
      "",
      "not json",
      "{}",
      "[1,2,3]",
      R"({"seed":"0x1"})",
      R"({"seed":"zzz","place":{}})",
      R"({"seed":"0x1","place":{"seed":"0x1"},"walkers":"two"})",
  };
  for (const char* line : bad) {
    EXPECT_FALSE(proptest::from_json(line).has_value()) << line;
  }
  // And a truncated valid line.
  const std::string good = proptest::to_json(proptest::generate_case(1, 1));
  EXPECT_FALSE(proptest::from_json(good.substr(0, good.size() / 2)));
}

TEST(ReproCodec, ReproLineIsGreppableAndReplayable) {
  const CaseSpec s = proptest::generate_case(0xAB, 3);
  const std::string line = proptest::repro_line(s, 64);
  EXPECT_EQ(line.rfind("UNILOC_REPRO seed=0x", 0), 0u) << line;
  EXPECT_NE(line.find(" cases=64 "), std::string::npos) << line;
  const std::string::size_type at = line.find("spec=");
  ASSERT_NE(at, std::string::npos);
  const std::optional<CaseSpec> back =
      proptest::from_json(line.substr(at + 5));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, s);
}

// ---------------------------------------------------------------- engine

TEST(Engine_, EnvVarOverridesCaseCount) {
  EngineConfig cfg;
  cfg.cases = 5;
  Engine e(cfg, [](const CaseSpec&) { return Verdict{}; });
  {
    ScopedEnv env("UNILOC_PROPTEST_CASES", "123");
    EXPECT_EQ(e.planned_cases(), 123u);
  }
  {
    ScopedEnv env("UNILOC_PROPTEST_CASES", "garbage");
    EXPECT_EQ(e.planned_cases(), 5u);
  }
  {
    ScopedEnv env("UNILOC_PROPTEST_CASES", nullptr);
    EXPECT_EQ(e.planned_cases(), 5u);
  }
  cfg.use_env = false;
  Engine fixed(cfg, [](const CaseSpec&) { return Verdict{}; });
  ScopedEnv env("UNILOC_PROPTEST_CASES", "123");
  EXPECT_EQ(fixed.planned_cases(), 5u);
}

TEST(Engine_, CorpusIsReplayedBeforeGeneration) {
  const std::string corpus = ::testing::TempDir() + "proptest_corpus_a.jsonl";
  std::remove(corpus.c_str());
  CaseSpec known = proptest::generate_case(0x5EED, 0);
  known.walkers = 9;  // Marker no generated case carries (generator max 4).
  {
    std::ofstream out(corpus);
    out << "# comment lines are skipped\n";
    out << proptest::to_json(known) << "\n";
  }
  EngineConfig cfg;
  cfg.cases = 10;
  cfg.use_env = false;
  cfg.corpus_path = corpus;
  cfg.shrink = false;
  std::vector<std::uint32_t> seen;
  Engine e(cfg, [&seen](const CaseSpec& s) {
    seen.push_back(s.walkers);
    return s.walkers == 9 ? fail_with("marker") : Verdict{};
  });
  const EngineReport report = e.run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.corpus_replayed, 1u);
  // The corpus failure stops the run (max_failures=1) before any
  // generated case executes -- reproducers always come first.
  EXPECT_EQ(report.cases_run, 0u);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 9u);
  EXPECT_TRUE(report.failures[0].from_corpus);
  std::remove(corpus.c_str());
}

// --------------------------------------------------- shrinking acceptance

TEST(Shrink, InjectedBugShrinksPersistsAndReplaysGreen) {
  // The ISSUE's acceptance test, end to end: inject an invariant
  // violation, watch the engine find it, shrink it to a minimal
  // reproducer (<= 2 walkers, <= 5 epochs), persist it, then "fix" the
  // bug and watch the corpus replay green.
  const std::string corpus = ::testing::TempDir() + "proptest_corpus_b.jsonl";
  std::remove(corpus.c_str());

  // The injected bug: any run with >= 2 walkers and >= 4 epochs
  // "violates" -- monotone in both, so the minimum is exactly (2, 4).
  auto buggy = [](const CaseSpec& s) {
    return (s.walkers >= 2 && s.epochs >= 4)
               ? fail_with("I-test: injected violation")
               : Verdict{};
  };

  EngineConfig cfg;
  cfg.seed = 0x5EED;
  cfg.cases = 50;
  cfg.use_env = false;
  cfg.corpus_path = corpus;
  cfg.shrink_budget = 400;
  Engine e(cfg, buggy);
  const EngineReport report = e.run();
  ASSERT_FALSE(report.ok());
  ASSERT_EQ(report.failures.size(), 1u);
  const CaseSpec& min = report.failures[0].shrunk;

  // Minimal along every axis the bug does not depend on.
  EXPECT_EQ(min.walkers, 2u);
  EXPECT_EQ(min.epochs, 4u);
  EXPECT_LE(min.walkers, 2u);  // The ISSUE's acceptance bound.
  EXPECT_LE(min.epochs, 5u);
  EXPECT_EQ(min.burst, 1u);
  EXPECT_EQ(min.workers, 0u);
  EXPECT_EQ(min.shards, 1u);
  EXPECT_FALSE(min.migration_churn);
  EXPECT_TRUE(min.churn.empty());
  EXPECT_TRUE(min.faults.crash_rounds.empty());
  EXPECT_TRUE(min.faults.blackouts.empty());
  EXPECT_EQ(min.faults.rates, fault::FaultRates{});
  EXPECT_EQ(min.place.walkways, 1);
  EXPECT_EQ(min.place.legs_per_walkway, 1);
  // The repro line carries the shrunk spec.
  EXPECT_NE(report.failures[0].repro.find("UNILOC_REPRO seed=0x"),
            std::string::npos);

  // Persisted: exactly one corpus line, equal to the shrunk spec.
  std::ifstream in(corpus);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const std::optional<CaseSpec> persisted = proptest::from_json(line);
  ASSERT_TRUE(persisted.has_value());
  EXPECT_EQ(*persisted, min);
  EXPECT_FALSE(std::getline(in, line));

  // "Revert the bug": the same corpus now replays green, and the replay
  // really ran the persisted reproducer.
  std::size_t replayed_walkers = 0;
  EngineConfig fixed = cfg;
  fixed.cases = 0;
  Engine green(fixed, [&](const CaseSpec& s) {
    replayed_walkers = s.walkers;
    return Verdict{};
  });
  const EngineReport after = green.run();
  EXPECT_TRUE(after.ok());
  EXPECT_EQ(after.corpus_replayed, 1u);
  EXPECT_EQ(replayed_walkers, 2u);
  std::remove(corpus.c_str());
}

TEST(Shrink, NonMonotoneBugStillEndsOnAFailingSpec) {
  // The shrinker must never "shrink" onto a passing spec, even when the
  // failure is a point condition binary search cannot exploit.
  CaseSpec start = proptest::generate_case(0x77, 0);
  start.epochs = 7;
  start.walkers = 3;
  auto fails = [](const CaseSpec& s) { return s.epochs == 7; };
  ASSERT_TRUE(fails(start));
  proptest::ShrinkStats stats;
  const CaseSpec min = proptest::shrink_case(start, fails, 300, &stats);
  EXPECT_TRUE(fails(min)) << "shrinker returned a passing spec";
  EXPECT_EQ(min.walkers, 1u);  // Orthogonal fields still minimized.
  EXPECT_GT(stats.attempts, 0u);
}

TEST(Shrink, BudgetCapsOracleEvaluations) {
  std::size_t evals = 0;
  CaseSpec start = proptest::generate_case(0x88, 1);
  start.walkers = 4;
  start.epochs = 16;
  const CaseSpec min = proptest::shrink_case(
      start,
      [&evals](const CaseSpec&) {
        ++evals;
        return true;  // Everything fails: worst case for the search.
      },
      25, nullptr);
  EXPECT_LE(evals, 25u);
  EXPECT_TRUE(min.walkers >= 1 && min.epochs >= 1);
}

// ----------------------------------------------- the real-oracle sweeps

const core::TrainedModels& sweep_models() {
  return testing_util::standard_models(100);
}

void expect_clean(const EngineReport& report) {
  for (const proptest::CaseFailure& f : report.failures) {
    ADD_FAILURE() << f.repro << "\n  first violation: "
                  << f.verdict.summary();
  }
}

TEST(ChaosSweep, GeneratedWorldsHoldAllInvariants) {
  // The tentpole: random venues, deployments, gaits, fault schedules,
  // crash points and fleets, all checked against I1-I7. Scaled by
  // UNILOC_PROPTEST_CASES; replays the committed reproducer corpus
  // first.
  EngineConfig cfg;
  cfg.seed = 0x0A0B'0C0D;
  cfg.cases = 128;
  cfg.corpus_path = std::string(UNILOC_CORPUS_DIR) + "/reproducers.jsonl";
  Engine e(cfg, [](const CaseSpec& s) { return run_case(s, sweep_models()); });
  const EngineReport report = e.run();
  expect_clean(report);
  EXPECT_GT(report.cases_run + report.corpus_replayed, 0u);
}

TEST(ChaosSweep, MembershipChurnKeepsFleetEquivalentAndLossless) {
  // Satellite: shard rebalancing under GENERATED membership churn.
  // Every case runs a fleet; shards are added/removed mid-traffic on a
  // generated schedule, with migration rotation layered on half of
  // them. The oracle pins fleet == single-server bit-identity plus
  // zero session loss (I7).
  EngineConfig cfg;
  cfg.seed = 0xC1142;
  cfg.cases = 48;
  cfg.mutate = [](CaseSpec& c, std::size_t index) {
    c.shards = 2 + static_cast<std::uint32_t>(index % 3);
    c.workers = 0;
    c.migration_churn = index % 2 == 0;
    c.crash_restore = false;         // Focus the run on the fleet pass.
    c.faults.crash_rounds.clear();
    if (c.epochs < 6) c.epochs = 6;
    if (c.churn.empty()) {
      const auto r = static_cast<std::uint32_t>(1 + index % (c.epochs / 2));
      c.churn.push_back(ChurnEvent{r, false});
      if (index % 3 == 0) c.churn.push_back(ChurnEvent{r + 1, true});
    }
  };
  Engine e(cfg, [](const CaseSpec& s) { return run_case(s, sweep_models()); });
  std::size_t with_churn = 0;
  for (std::size_t i = 0; i < e.planned_cases(); ++i) {
    const CaseSpec s = e.case_at(i);
    ASSERT_GT(s.shards, 1u);
    with_churn += !s.churn.empty();
  }
  EXPECT_EQ(with_churn, e.planned_cases());
  expect_clean(e.run());
}

}  // namespace
}  // namespace uniloc
