#include "geo/spatial_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "stats/rng.h"

namespace uniloc::geo {
namespace {

std::vector<Vec2> random_points(std::size_t n, std::uint64_t seed,
                                double extent = 100.0) {
  stats::Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, extent), rng.uniform(0.0, extent)});
  }
  return pts;
}

std::size_t brute_nearest(const std::vector<Vec2>& pts, Vec2 q) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (distance2(pts[i], q) < distance2(pts[best], q)) best = i;
  }
  return best;
}

TEST(PointIndex, EmptyIndex) {
  PointIndex idx;
  EXPECT_TRUE(idx.empty());
  EXPECT_TRUE(idx.within({0.0, 0.0}, 10.0).empty());
  EXPECT_TRUE(idx.k_nearest({0.0, 0.0}, 3).empty());
}

TEST(PointIndex, NearestMatchesBruteForce) {
  const std::vector<Vec2> pts = random_points(300, 1);
  const PointIndex idx(pts, 5.0);
  stats::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const Vec2 q{rng.uniform(-10.0, 110.0), rng.uniform(-10.0, 110.0)};
    const std::size_t got = idx.nearest(q);
    const std::size_t want = brute_nearest(pts, q);
    EXPECT_DOUBLE_EQ(distance2(pts[got], q), distance2(pts[want], q));
  }
}

TEST(PointIndex, WithinMatchesBruteForce) {
  const std::vector<Vec2> pts = random_points(300, 3);
  const PointIndex idx(pts, 5.0);
  stats::Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const Vec2 q{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    const double r = rng.uniform(2.0, 20.0);
    std::vector<std::size_t> got = idx.within(q, r);
    std::sort(got.begin(), got.end());
    std::vector<std::size_t> want;
    for (std::size_t j = 0; j < pts.size(); ++j) {
      if (distance(pts[j], q) <= r) want.push_back(j);
    }
    EXPECT_EQ(got, want);
  }
}

TEST(PointIndex, KNearestSortedAndCorrect) {
  const std::vector<Vec2> pts = random_points(200, 5);
  const PointIndex idx(pts, 5.0);
  const Vec2 q{50.0, 50.0};
  const std::vector<std::size_t> got = idx.k_nearest(q, 10);
  ASSERT_EQ(got.size(), 10u);
  // Sorted ascending by distance.
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_GE(distance2(pts[got[i]], q), distance2(pts[got[i - 1]], q));
  }
  // The set matches brute force.
  std::vector<std::size_t> all(pts.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  std::sort(all.begin(), all.end(), [&](std::size_t a, std::size_t b) {
    return distance2(pts[a], q) < distance2(pts[b], q);
  });
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], all[i]);
}

TEST(PointIndex, KLargerThanSize) {
  const std::vector<Vec2> pts = random_points(5, 6);
  const PointIndex idx(pts, 5.0);
  EXPECT_EQ(idx.k_nearest({0.0, 0.0}, 50).size(), 5u);
}

TEST(PointIndex, SinglePoint) {
  const PointIndex idx({{3.0, 4.0}}, 5.0);
  EXPECT_EQ(idx.nearest({100.0, 100.0}), 0u);
  EXPECT_EQ(idx.k_nearest({0.0, 0.0}, 1).size(), 1u);
}

TEST(SegmentIndex, EmptyNeverCrosses) {
  SegmentIndex idx;
  EXPECT_FALSE(idx.crosses({0.0, 0.0}, {100.0, 100.0}));
}

TEST(SegmentIndex, MatchesBruteForce) {
  stats::Rng rng(7);
  std::vector<Segment> segs;
  for (int i = 0; i < 150; ++i) {
    const Vec2 a{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    segs.push_back({a, a + Vec2{rng.uniform(-8.0, 8.0),
                                rng.uniform(-8.0, 8.0)}});
  }
  const SegmentIndex idx(segs, 10.0);
  for (int i = 0; i < 200; ++i) {
    const Vec2 a{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    const Vec2 b = a + Vec2{rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)};
    bool brute = false;
    for (const Segment& s : segs) {
      brute = brute || segments_intersect(a, b, s.a, s.b);
    }
    EXPECT_EQ(idx.crosses(a, b), brute);
  }
}

TEST(SegmentIndex, LongQuerySpanningManyCells) {
  const SegmentIndex idx({{{50.0, -10.0}, {50.0, 10.0}}}, 4.0);
  EXPECT_TRUE(idx.crosses({0.0, 0.0}, {100.0, 0.0}));
  EXPECT_FALSE(idx.crosses({0.0, 20.0}, {100.0, 20.0}));
}

}  // namespace
}  // namespace uniloc::geo
