#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "energy/energy_model.h"
#include "energy/latency_model.h"
#include "io/csv.h"
#include "io/table.h"
#include "offload/payload.h"

namespace uniloc {
namespace {

// ----------------------------------------------------------------- energy

core::RunResult fake_run(std::size_t epochs, std::size_t outdoor_from,
                         bool gps_on_outdoors) {
  core::RunResult run;
  run.scheme_names = {"GPS", "WiFi", "Cellular", "Motion", "Fusion"};
  for (std::size_t i = 0; i < epochs; ++i) {
    core::EpochRecord e;
    e.t = static_cast<double>(i) * 0.5;
    e.indoor_truth = i < outdoor_from;
    e.gps_was_enabled = !e.indoor_truth && gps_on_outdoors;
    run.epochs.push_back(e);
  }
  return run;
}

TEST(EnergyModel, RowsPresentAndPositive) {
  const auto rows = energy::account_energy(fake_run(400, 300, true), 0.5);
  ASSERT_EQ(rows.size(), 7u);
  for (const energy::EnergyRow& r : rows) {
    EXPECT_GE(r.energy_j, 0.0) << r.scheme;
    EXPECT_GE(r.power_mw, 0.0) << r.scheme;
  }
  EXPECT_EQ(rows[0].scheme, "GPS");
  EXPECT_EQ(rows.back().scheme, "UniLoc w/ GPS");
}

TEST(EnergyModel, MotionIsCheapestContinuousScheme) {
  const auto rows = energy::account_energy(fake_run(400, 300, true), 0.5);
  double motion = 0.0, wifi = 1e18, fusion = 0.0;
  for (const auto& r : rows) {
    if (r.scheme == "Motion") motion = r.energy_j;
    if (r.scheme == "WiFi") wifi = r.energy_j;
    if (r.scheme == "Fusion") fusion = r.energy_j;
  }
  EXPECT_GT(fusion, motion);  // fusion = motion + wifi scanning
  EXPECT_GT(motion, 0.0);
  EXPECT_GT(wifi, 0.0);
}

TEST(EnergyModel, UnilocModestlyAboveMotion) {
  // Paper: UniLoc w/o GPS ~ motion + 14%.
  const auto rows = energy::account_energy(fake_run(400, 300, false), 0.5);
  double motion = 0.0, uniloc = 0.0;
  for (const auto& r : rows) {
    if (r.scheme == "Motion") motion = r.energy_j;
    if (r.scheme == "UniLoc w/o GPS") uniloc = r.energy_j;
  }
  EXPECT_GT(uniloc, motion);
  EXPECT_LT(uniloc, motion * 1.35);
}

TEST(EnergyModel, GpsCountsOnlyOutdoorTime) {
  const auto all_indoor = energy::account_energy(fake_run(400, 400, true), 0.5);
  EXPECT_DOUBLE_EQ(all_indoor[0].time_s, 0.0);
  EXPECT_DOUBLE_EQ(all_indoor[0].energy_j, 0.0);
}

TEST(EnergyModel, PayloadParamsMatchWireEncodings) {
  // The energy model charges the byte counts serialize_uplink actually
  // puts on the wire (offload/payload.h), not hand-maintained copies.
  const energy::EnergyParams p;
  EXPECT_DOUBLE_EQ(p.motion_payload_b,
                   static_cast<double>(offload::StepPayload::kBytes));
  EXPECT_DOUBLE_EQ(p.gps_payload_b,
                   static_cast<double>(offload::GpsPayload::kBytes));
  EXPECT_DOUBLE_EQ(p.downlink_payload_b,
                   static_cast<double>(offload::DownlinkFrame::kBytes));
  // Marginal per-reading wire cost, derived from two real encodings so a
  // ScanPayload layout change breaks this test rather than the model.
  const offload::ScanPayload five =
      offload::ScanPayload::encode(std::vector<sim::ApReading>(5));
  const offload::ScanPayload four =
      offload::ScanPayload::encode(std::vector<sim::ApReading>(4));
  const double per_reading = static_cast<double>(five.bytes() - four.bytes());
  EXPECT_DOUBLE_EQ(p.per_ap_payload_b, per_reading);
  EXPECT_DOUBLE_EQ(p.per_cell_payload_b, per_reading);
}

TEST(EnergyModel, CellularUploadChargedAtCellPayload) {
  core::RunResult run = fake_run(100, 100, false);
  for (core::EpochRecord& e : run.epochs) e.cell_count = 4;
  energy::EnergyParams base;
  energy::EnergyParams inflated_ap = base;
  inflated_ap.per_ap_payload_b = 1000.0;  // no WiFi audible: must not matter
  energy::EnergyParams inflated_cell = base;
  inflated_cell.per_cell_payload_b = 1000.0;

  const auto cell_row = [](const std::vector<energy::EnergyRow>& rows) {
    for (const energy::EnergyRow& r : rows) {
      if (r.scheme == "Cellular") return r.energy_j;
    }
    return -1.0;
  };
  const double with_base = cell_row(energy::account_energy(run, 0.5, base));
  const double with_ap =
      cell_row(energy::account_energy(run, 0.5, inflated_ap));
  const double with_cell =
      cell_row(energy::account_energy(run, 0.5, inflated_cell));
  // The regression this pins: cell uploads used to be priced per AP.
  EXPECT_DOUBLE_EQ(with_ap, with_base);
  EXPECT_GT(with_cell, with_base);
}

TEST(EnergyModel, GpsSavingsRatio) {
  // GPS enabled on none of the outdoor epochs: infinite saving guarded
  // as ratio 0 (no duty-cycled consumption to compare).
  const energy::GpsSavings none =
      energy::gps_savings(fake_run(400, 300, false), 0.5);
  EXPECT_GT(none.always_on_j, 0.0);
  EXPECT_DOUBLE_EQ(none.duty_cycled_j, 0.0);
  EXPECT_DOUBLE_EQ(none.ratio, 0.0);
  // Always on outdoors: ratio 1.
  const energy::GpsSavings full =
      energy::gps_savings(fake_run(400, 300, true), 0.5);
  EXPECT_NEAR(full.ratio, 1.0, 1e-9);
}

// ---------------------------------------------------------------- latency

TEST(LatencyModel, ServerTimeIsMaxSchemePlusEnsemble) {
  energy::ResponseTimeReport r = energy::make_report(
      {{"A", 5.0, 1.0}, {"B", 2.0, 0.5}}, /*bma_ms=*/0.1);
  // Parallel schemes: slowest (5.0) + predictions (1.5) + bma (0.1).
  EXPECT_NEAR(r.server_ms(), 6.6, 1e-9);
}

TEST(LatencyModel, TotalIncludesTransmissions) {
  energy::LatencyParams p;
  energy::ResponseTimeReport r =
      energy::make_report({{"A", 5.0, 1.0}}, 0.1, p);
  EXPECT_NEAR(r.total_ms(),
              p.phone_sense_ms + p.uplink_ms + 6.1 + p.downlink_ms, 1e-9);
  EXPECT_GT(r.transmission_fraction(), 0.5);  // paper: ~73%
  EXPECT_LT(r.transmission_fraction(), 1.0);
}

// --------------------------------------------------------------------- io

TEST(Table, RendersAlignedMarkdown) {
  io::Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, PadsMissingCells) {
  io::Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NE(t.to_string().find("| x"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(io::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(io::Table::num(2.0, 0), "2");
  EXPECT_EQ(io::Table::pct(0.1234), "12.3%");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "/tmp/uniloc_test.csv";
  {
    io::CsvWriter w(path, {"x", "y"});
    w.write_row(std::vector<double>{1.0, 2.5});
    w.write_row(std::vector<std::string>{"a,b", "plain"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "\"a,b\",plain");
  std::remove(path.c_str());
}

TEST(Csv, RejectsColumnMismatch) {
  const std::string path = "/tmp/uniloc_test2.csv";
  io::CsvWriter w(path, {"x", "y"});
  EXPECT_THROW(w.write_row(std::vector<double>{1.0}), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnUnwritablePath) {
  EXPECT_THROW(io::CsvWriter("/nonexistent_dir_xyz/file.csv", {"a"}),
               std::runtime_error);
}

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Writer -> parser identity for one row of fields.
void expect_round_trip(const std::vector<std::string>& fields) {
  const std::string path = "/tmp/uniloc_test_rt.csv";
  std::vector<std::string> header(fields.size());
  for (std::size_t i = 0; i < header.size(); ++i) {
    header[i] = "c" + std::to_string(i);
  }
  {
    io::CsvWriter w(path, header);
    w.write_row(fields);
  }
  const auto rows = io::parse_csv(slurp(path));
  std::remove(path.c_str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], header);
  EXPECT_EQ(rows[1], fields);
}

}  // namespace

TEST(Csv, QuotesAndRoundTripsEmbeddedNewlines) {
  // The regression this pins: fields with \n or \r were written bare, so
  // a parser saw extra rows.
  expect_round_trip({"line1\nline2", "plain"});
  expect_round_trip({"cr\rhere", "x"});
  expect_round_trip({"crlf\r\nboth", "y"});
}

TEST(Csv, RoundTripsQuotesAndCommas) {
  expect_round_trip({"say \"hi\"", "a,b", "\"", ""});
  expect_round_trip({"mix,\"of\nall\r\nthree\"", "tail"});
}

TEST(Csv, ParsesCrlfRowTerminators) {
  const auto rows = io::parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(Csv, ParsesQuotedFieldWithLineBreakAcrossRows) {
  const auto rows = io::parse_csv("\"a\nb\",c\nd,e\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a\nb", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"d", "e"}));
}

TEST(Csv, ParsesFinalRowWithoutTerminatorAndEmptyFields) {
  const auto rows = io::parse_csv("a,,c\n,\"\"");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"", ""}));
}

}  // namespace
}  // namespace uniloc
