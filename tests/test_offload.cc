#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/runner.h"
#include "core/trainer.h"
#include "offload/session.h"
#include "testing_util.h"

namespace uniloc::offload {
namespace {

// ---------------------------------------------------------------- payloads

TEST(StepPayload, RoundTripQuantizationError) {
  for (double h = -3.1; h <= 3.1; h += 0.37) {
    for (double d = 0.0; d <= 3.9; d += 0.53) {
      const StepPayload p = StepPayload::encode(h, d);
      EXPECT_NEAR(geo::angle_diff(p.heading(), h), 0.0, 1e-3);
      EXPECT_NEAR(p.distance(), d, 1e-3);
    }
  }
}

TEST(StepPayload, IsFourBytes) {
  EXPECT_EQ(StepPayload::kBytes, 4u);  // the paper's "four bytes"
  EXPECT_EQ(sizeof(StepPayload::heading_q) + sizeof(StepPayload::distance_q),
            4u);
}

TEST(StepPayload, ClampsDistance) {
  const StepPayload p = StepPayload::encode(0.0, 100.0);
  EXPECT_NEAR(p.distance(), StepPayload::kMaxDistance, 1e-6);
  const StepPayload n = StepPayload::encode(0.0, -5.0);
  EXPECT_NEAR(n.distance(), 0.0, 1e-6);
}

TEST(StepPayload, HeadingWrap) {
  const StepPayload p = StepPayload::encode(4.0 * std::numbers::pi + 0.5, 1.0);
  EXPECT_NEAR(geo::angle_diff(p.heading(), 0.5), 0.0, 1e-3);
}

TEST(ScanPayload, QuantizesToHalfDb) {
  const ScanPayload p =
      ScanPayload::encode({{1, -63.26}, {2, -90.74}, {3, -40.1}});
  ASSERT_EQ(p.readings.size(), 3u);
  EXPECT_NEAR(p.readings[0].rssi_dbm, -63.5, 0.26);
  for (const sim::ApReading& r : p.readings) {
    const double steps = (r.rssi_dbm + 127.5) * 2.0;
    EXPECT_NEAR(steps, std::round(steps), 1e-9);  // exact half-dB grid
  }
}

TEST(ScanPayload, ByteCount) {
  const ScanPayload p = ScanPayload::encode({{1, -60.0}, {2, -70.0}});
  EXPECT_EQ(p.bytes(), 2u + 3u * 2u);
  EXPECT_EQ(ScanPayload::encode({}).bytes(), 2u);
}

TEST(GpsPayload, CentimeterResolution) {
  sim::GpsFix fix;
  fix.pos = {1.3483123456, 103.6831123456};
  fix.hdop = 1.234;
  fix.num_satellites = 9;
  const GpsPayload p = GpsPayload::encode(fix);
  EXPECT_NEAR(p.pos.lat_deg, fix.pos.lat_deg, 1e-7);
  EXPECT_NEAR(p.hdop, 1.2, 1e-9);
  EXPECT_EQ(p.num_satellites, 9);
}

TEST(UplinkFrame, BytesSumComponents) {
  UplinkFrame f;
  EXPECT_EQ(f.bytes(), 0u);
  f.step = StepPayload::encode(0.0, 0.7);
  f.wifi = ScanPayload::encode({{1, -60.0}});
  EXPECT_EQ(f.bytes(), 4u + 5u);
  f.gps = GpsPayload{};
  EXPECT_EQ(f.bytes(), 4u + 5u + GpsPayload::kBytes);
}

TEST(DownlinkFrame, CentimeterRoundTrip) {
  const DownlinkFrame f = DownlinkFrame::encode({123.456789, -9.876543});
  EXPECT_NEAR(f.decoded().x, 123.46, 1e-9);
  EXPECT_NEAR(f.decoded().y, -9.88, 1e-9);
  EXPECT_EQ(DownlinkFrame::kBytes, 8u);
}

// ------------------------------------------------------------ byte codecs

UplinkFrame full_uplink() {
  UplinkFrame f;
  f.step = StepPayload::encode(1.25, 0.8);
  f.wifi = ScanPayload::encode({{3, -61.2}, {9, -74.9}, {200, -88.0}});
  f.cell = ScanPayload::encode({{1001, -95.5}});
  sim::GpsFix fix;
  fix.pos = {1.3483123, 103.6831123};
  fix.hdop = 1.2;
  fix.num_satellites = 9;
  f.gps = GpsPayload::encode(fix);
  return f;
}

TEST(UplinkCodec, SerializedSizeIsOverheadPlusBytes) {
  const UplinkFrame f = full_uplink();
  EXPECT_EQ(serialize(f).size(), kUplinkOverheadBytes + f.bytes());
  EXPECT_EQ(serialize(UplinkFrame{}).size(), kUplinkOverheadBytes);
}

TEST(UplinkCodec, RoundTripsAllSections) {
  const UplinkFrame f = full_uplink();
  const std::optional<UplinkFrame> back = parse_uplink(serialize(f));
  ASSERT_TRUE(back.has_value());
  ASSERT_TRUE(back->step.has_value());
  EXPECT_EQ(back->step->heading_q, f.step->heading_q);
  EXPECT_EQ(back->step->distance_q, f.step->distance_q);
  ASSERT_TRUE(back->wifi.has_value());
  ASSERT_EQ(back->wifi->readings.size(), 3u);
  EXPECT_EQ(back->wifi->readings[0].id, 3);
  // ScanPayload::encode already quantized to the half-dB wire grid, so
  // the byte codec round-trips the values exactly.
  EXPECT_DOUBLE_EQ(back->wifi->readings[0].rssi_dbm,
                   f.wifi->readings[0].rssi_dbm);
  ASSERT_TRUE(back->cell.has_value());
  EXPECT_EQ(back->cell->readings[0].id, 1001);
  ASSERT_TRUE(back->gps.has_value());
  EXPECT_NEAR(back->gps->pos.lat_deg, 1.3483123, 1e-7);
  EXPECT_NEAR(back->gps->pos.lon_deg, 103.6831123, 1e-7);
  EXPECT_DOUBLE_EQ(back->gps->hdop, 1.2);
  EXPECT_EQ(back->gps->num_satellites, 9);
}

TEST(UplinkCodec, EmptyFrameRoundTrips) {
  const std::optional<UplinkFrame> back = parse_uplink(serialize(UplinkFrame{}));
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->step.has_value());
  EXPECT_FALSE(back->wifi.has_value());
  EXPECT_FALSE(back->cell.has_value());
  EXPECT_FALSE(back->gps.has_value());
}

TEST(UplinkCodec, EveryTruncationIsRejected) {
  const std::vector<std::uint8_t> full = serialize(full_uplink());
  for (std::size_t n = 0; n < full.size(); ++n) {
    const std::vector<std::uint8_t> cut(full.begin(),
                                        full.begin() + static_cast<long>(n));
    EXPECT_FALSE(parse_uplink(cut).has_value()) << "prefix length " << n;
  }
  EXPECT_TRUE(parse_uplink(full).has_value());
}

TEST(UplinkCodec, RejectsUnknownSectionBits) {
  std::vector<std::uint8_t> buf = serialize(UplinkFrame{});
  buf[0] = 0xF0;  // bits the codec does not define
  EXPECT_FALSE(parse_uplink(buf).has_value());
}

TEST(UplinkCodec, RejectsScanCountBeyondBuffer) {
  ByteWriter w;
  w.put_u8(1 << 1);  // wifi section only
  w.put_u16(1000);   // promises 3000 bytes of readings...
  w.put_u16(1);      // ...but carries 3
  w.put_u8(100);
  EXPECT_FALSE(parse_uplink(w.take()).has_value());
}

TEST(UplinkCodec, RejectsTrailingGarbage) {
  std::vector<std::uint8_t> buf = serialize(full_uplink());
  buf.push_back(0xAB);
  EXPECT_FALSE(parse_uplink(buf).has_value());
}

TEST(DownlinkCodec, RoundTripsAndRejectsTruncation) {
  const DownlinkFrame f = DownlinkFrame::encode({123.456, -9.87});
  const std::vector<std::uint8_t> bytes = serialize(f);
  EXPECT_EQ(bytes.size(), DownlinkFrame::kBytes);
  const std::optional<DownlinkFrame> back = parse_downlink(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_DOUBLE_EQ(back->position.x, f.position.x);
  EXPECT_DOUBLE_EQ(back->position.y, f.position.y);
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + static_cast<long>(n));
    EXPECT_FALSE(parse_downlink(cut).has_value());
  }
}

TEST(RssiQuantization, RoundTripsOnHalfDbGrid) {
  for (int q = 0; q <= 255; ++q) {
    EXPECT_EQ(quantize_rssi(dequantize_rssi(static_cast<std::uint8_t>(q))),
              q);
  }
  EXPECT_EQ(quantize_rssi(-300.0), 0);   // clamped, no wraparound
  EXPECT_EQ(quantize_rssi(50.0), 255);
}

// ----------------------------------------------------------------- session

TEST(OffloadSession, PhoneReducesFrames) {
  const core::Deployment& office = testing_util::office_deployment();
  sim::WalkConfig wc;
  wc.seed = 5;
  sim::Walker walker(office.place.get(), office.radio.get(), 0, wc);
  PhoneAgent phone;
  phone.reset(walker.start_heading());
  std::size_t with_step = 0, total = 0;
  while (!walker.done()) {
    const sim::SensorFrame f = walker.step(false);
    const UplinkFrame up = phone.reduce(f);
    ++total;
    if (up.step.has_value()) {
      ++with_step;
      EXPECT_GT(up.step->distance(), 0.0);
    }
    // Indoors without GPS: no GPS payload ever.
    EXPECT_FALSE(up.gps.has_value());
    EXPECT_GT(up.bytes(), 0u);
    EXPECT_LT(up.bytes(), 200u);  // compact by construction
  }
  // Most epochs carry a step update.
  EXPECT_GT(static_cast<double>(with_step) / static_cast<double>(total), 0.7);
}

TEST(OffloadSession, EndToEndTrafficIsSmall) {
  const core::TrainedModels& models = testing_util::standard_models(100);
  const core::Deployment& office = testing_util::office_deployment();
  core::Uniloc uniloc = core::make_uniloc(office, models);
  sim::WalkConfig wc;
  wc.seed = 6;
  sim::Walker walker(office.place.get(), office.radio.get(), 0, wc);
  const TrafficStats stats = run_offloaded_walk(uniloc, walker);
  ASSERT_GT(stats.epochs, 100u);
  // Tens of bytes per epoch, not kilobytes: the point of pre-processing
  // on the phone (50 Hz raw IMU would be ~27 samples * 3 sensors * 4+
  // bytes per epoch).
  EXPECT_LT(stats.uplink_bytes_per_epoch(), 120.0);
  EXPECT_GT(stats.uplink_bytes_per_epoch(), 4.0);
  EXPECT_EQ(stats.downlink_bytes, stats.epochs * DownlinkFrame::kBytes);
}

TEST(OffloadSession, ServerReturnsFusedCoordinate) {
  const core::TrainedModels& models = testing_util::standard_models(100);
  const core::Deployment& office = testing_util::office_deployment();
  core::Uniloc uniloc = core::make_uniloc(office, models);
  sim::WalkConfig wc;
  wc.seed = 7;
  sim::Walker walker(office.place.get(), office.radio.get(), 0, wc);
  uniloc.reset({walker.start_position(), walker.start_heading()});
  ServerAgent server(&uniloc);
  const sim::SensorFrame f = walker.step(false);
  core::EpochDecision d;
  const DownlinkFrame reply = server.handle(f, &d);
  EXPECT_NEAR(reply.decoded().x, d.uniloc2.x, 0.01);
  EXPECT_NEAR(reply.decoded().y, d.uniloc2.y, 0.01);
}

}  // namespace
}  // namespace uniloc::offload
