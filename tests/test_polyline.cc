#include "geo/polyline.h"

#include <gtest/gtest.h>

#include <cmath>

namespace uniloc::geo {
namespace {

Polyline lshape() {
  return Polyline({{0.0, 0.0}, {10.0, 0.0}, {10.0, 5.0}});
}

TEST(Polyline, LengthOfSegments) {
  EXPECT_DOUBLE_EQ(lshape().length(), 15.0);
  EXPECT_DOUBLE_EQ(Polyline({{0, 0}}).length(), 0.0);
  EXPECT_DOUBLE_EQ(Polyline().length(), 0.0);
}

TEST(Polyline, MergesDuplicateVertices) {
  Polyline p({{0, 0}, {0, 0}, {1, 0}, {1, 0}, {2, 0}});
  EXPECT_EQ(p.size(), 3u);
  EXPECT_DOUBLE_EQ(p.length(), 2.0);
}

TEST(Polyline, PointAtInterpolates) {
  const Polyline p = lshape();
  EXPECT_EQ(p.point_at(0.0), (Vec2{0.0, 0.0}));
  EXPECT_EQ(p.point_at(5.0), (Vec2{5.0, 0.0}));
  EXPECT_EQ(p.point_at(10.0), (Vec2{10.0, 0.0}));
  EXPECT_EQ(p.point_at(12.5), (Vec2{10.0, 2.5}));
  EXPECT_EQ(p.point_at(15.0), (Vec2{10.0, 5.0}));
}

TEST(Polyline, PointAtClampsOutOfRange) {
  const Polyline p = lshape();
  EXPECT_EQ(p.point_at(-3.0), (Vec2{0.0, 0.0}));
  EXPECT_EQ(p.point_at(100.0), (Vec2{10.0, 5.0}));
}

TEST(Polyline, TangentFollowsSegments) {
  const Polyline p = lshape();
  EXPECT_EQ(p.tangent_at(5.0), (Vec2{1.0, 0.0}));
  EXPECT_EQ(p.tangent_at(12.0), (Vec2{0.0, 1.0}));
}

TEST(Polyline, HeadingAt) {
  const Polyline p = lshape();
  EXPECT_NEAR(p.heading_at(1.0), 0.0, 1e-12);
  EXPECT_NEAR(p.heading_at(12.0), std::numbers::pi / 2.0, 1e-12);
}

TEST(Polyline, ProjectOntoSegmentInterior) {
  const Polyline p = lshape();
  const Projection proj = p.project({5.0, 2.0});
  EXPECT_NEAR(proj.arclen, 5.0, 1e-12);
  EXPECT_NEAR(proj.distance, 2.0, 1e-12);
  EXPECT_EQ(proj.segment, 0u);
}

TEST(Polyline, ProjectOntoCorner) {
  const Polyline p = lshape();
  const Projection proj = p.project({12.0, -1.0});
  EXPECT_NEAR(proj.point.x, 10.0, 1e-12);
  EXPECT_NEAR(proj.point.y, 0.0, 1e-12);
  EXPECT_NEAR(proj.arclen, 10.0, 1e-12);
}

TEST(Polyline, ProjectionRoundTrip) {
  const Polyline p = lshape();
  for (double s = 0.0; s <= p.length(); s += 0.5) {
    const Projection proj = p.project(p.point_at(s));
    EXPECT_NEAR(proj.arclen, s, 1e-9);
    EXPECT_NEAR(proj.distance, 0.0, 1e-9);
  }
}

TEST(Polyline, SampleSpacing) {
  const Polyline p = lshape();
  const std::vector<Vec2> samples = p.sample(5.0);
  ASSERT_EQ(samples.size(), 4u);  // 0, 5, 10, 15
  EXPECT_EQ(samples.front(), (Vec2{0.0, 0.0}));
  EXPECT_EQ(samples.back(), (Vec2{10.0, 5.0}));
}

TEST(Polyline, SampleIncludesEndpointWhenNotOnGrid) {
  const Polyline p({{0, 0}, {7, 0}});
  const std::vector<Vec2> samples = p.sample(2.0);
  EXPECT_EQ(samples.back(), (Vec2{7.0, 0.0}));
}

TEST(Polyline, BoundsCoverAllVertices) {
  const BBox b = lshape().bounds();
  EXPECT_EQ(b.min, (Vec2{0.0, 0.0}));
  EXPECT_EQ(b.max, (Vec2{10.0, 5.0}));
}

TEST(Polyline, AppendJoins) {
  Polyline a({{0, 0}, {1, 0}});
  const Polyline b({{1, 0}, {1, 1}});
  a.append(b);
  EXPECT_DOUBLE_EQ(a.length(), 2.0);
  EXPECT_EQ(a.size(), 3u);  // duplicate joint vertex merged
}

TEST(BBox, ExtendAndContain) {
  BBox b;
  EXPECT_TRUE(b.empty());
  b.extend({1.0, 2.0});
  b.extend({-1.0, 5.0});
  EXPECT_FALSE(b.empty());
  EXPECT_TRUE(b.contains({0.0, 3.0}));
  EXPECT_FALSE(b.contains({2.0, 3.0}));
  EXPECT_DOUBLE_EQ(b.width(), 2.0);
  EXPECT_DOUBLE_EQ(b.height(), 3.0);
}

TEST(BBox, InflateAndClamp) {
  BBox b{{0.0, 0.0}, {2.0, 2.0}};
  const BBox big = b.inflated(1.0);
  EXPECT_TRUE(big.contains({-0.5, -0.5}));
  EXPECT_EQ(b.clamp({5.0, -1.0}), (Vec2{2.0, 0.0}));
}

TEST(BBox, CenterAndArea) {
  BBox b{{0.0, 0.0}, {4.0, 2.0}};
  EXPECT_EQ(b.center(), (Vec2{2.0, 1.0}));
  EXPECT_DOUBLE_EQ(b.area(), 8.0);
}

}  // namespace
}  // namespace uniloc::geo
