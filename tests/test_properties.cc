// Property-based tests: invariants that must hold across parameter sweeps
// (seeds, venues, distances, thresholds), exercised with TEST_P suites.
#include <gtest/gtest.h>

#include <cmath>

#include <memory>

#include "core/confidence.h"
#include "core/runner.h"
#include "core/trainer.h"
#include "filter/particle_filter.h"
#include "proptest/engine.h"
#include "proptest/oracle.h"
#include "schemes/fingerprint_db.h"
#include "shard/hash_ring.h"
#include "stats/descriptive.h"
#include "stats/gaussian.h"
#include "testing_util.h"

namespace uniloc {
namespace {

// ---------------------------------------------------- geometry properties

class PolylineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PolylineProperty, ProjectionOfOnCurvePointIsIdentity) {
  stats::Rng rng(GetParam());
  std::vector<geo::Vec2> pts{{0.0, 0.0}};
  for (int i = 0; i < 6; ++i) {
    pts.push_back(pts.back() + geo::Vec2{rng.uniform(1.0, 20.0),
                                         rng.uniform(-10.0, 10.0)});
  }
  const geo::Polyline line(pts);
  for (double f = 0.0; f <= 1.0; f += 0.05) {
    const double s = f * line.length();
    const geo::Projection proj = line.project(line.point_at(s));
    EXPECT_NEAR(proj.distance, 0.0, 1e-9);
    EXPECT_NEAR(proj.arclen, s, 1e-6);
  }
}

TEST_P(PolylineProperty, ArclenOfVertexMonotone) {
  stats::Rng rng(GetParam() + 100);
  std::vector<geo::Vec2> pts{{0.0, 0.0}};
  for (int i = 0; i < 8; ++i) {
    pts.push_back(pts.back() +
                  geo::Vec2{rng.uniform(0.5, 5.0), rng.uniform(-5.0, 5.0)});
  }
  const geo::Polyline line(pts);
  for (std::size_t i = 1; i < line.size(); ++i) {
    EXPECT_GT(line.arclen_of_vertex(i), line.arclen_of_vertex(i - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolylineProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// --------------------------------------------------- confidence properties

struct ConfidenceCase {
  double mu, sigma, tau;
};

class ConfidenceProperty : public ::testing::TestWithParam<ConfidenceCase> {};

TEST_P(ConfidenceProperty, InUnitInterval) {
  const ConfidenceCase c = GetParam();
  const double conf = core::confidence({c.mu, c.sigma}, c.tau);
  EXPECT_GE(conf, 0.0);
  EXPECT_LE(conf, 1.0);
}

TEST_P(ConfidenceProperty, DecreasesWithPredictedError) {
  const ConfidenceCase c = GetParam();
  EXPECT_GE(core::confidence({c.mu, c.sigma}, c.tau),
            core::confidence({c.mu + 1.0, c.sigma}, c.tau) - 1e-12);
}

TEST_P(ConfidenceProperty, WeightsSumToOneWhenAnyPositive) {
  const ConfidenceCase c = GetParam();
  const double conf = core::confidence({c.mu, c.sigma}, c.tau);
  const std::vector<double> w = core::bma_weights({conf, 0.5, 0.0});
  double sum = 0.0;
  for (double x : w) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(w[2], 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConfidenceProperty,
    ::testing::Values(ConfidenceCase{1.0, 0.5, 5.0},
                      ConfidenceCase{5.0, 2.0, 5.0},
                      ConfidenceCase{15.0, 8.0, 5.0},
                      ConfidenceCase{0.1, 0.1, 20.0},
                      ConfidenceCase{40.0, 1.0, 5.0},
                      ConfidenceCase{5.0, 20.0, 5.0}));

// ------------------------------------------------ particle-filter property

class PfConvergence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PfConvergence, TracksStraightWalkUnderObservations) {
  // Property: with periodic position observations, the cloud mean stays
  // within a few meters of the truth for any seed.
  filter::ParticleFilter pf(400, stats::Rng(GetParam()));
  pf.init({0.0, 0.0}, 0.0, 0.5, 0.05, 0.05);
  geo::Vec2 truth{0.0, 0.0};
  for (int step = 1; step <= 100; ++step) {
    truth += {0.7, 0.0};
    pf.predict(0.7, 0.0, 0.1, 0.02);
    if (step % 5 == 0) {
      pf.reweight([&](const filter::Particle& p) {
        return stats::normal_pdf(geo::distance(p.pos, truth) / 2.0) + 1e-9;
      });
    }
    pf.resample();
  }
  EXPECT_LT(geo::distance(pf.mean(), truth), 3.0);
}

TEST_P(PfConvergence, WeightsAlwaysNormalizable) {
  filter::ParticleFilter pf(100, stats::Rng(GetParam() + 7));
  pf.init({0.0, 0.0}, 0.0, 1.0, 0.1, 0.0);
  stats::Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    pf.predict(0.7, rng.normal(0.0, 0.1), 0.1, 0.05);
    pf.reweight([&](const filter::Particle&) {
      return rng.uniform(0.0, 1.0) < 0.1 ? 0.0 : rng.uniform(0.0, 1.0);
    });
    pf.resample();
    double sum = 0.0;
    for (std::size_t k = 0; k < pf.size(); ++k) sum += pf.weight(k);
    EXPECT_NEAR(sum, 1.0, 1e-6);
    EXPECT_TRUE(std::isfinite(pf.mean().x));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PfConvergence,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---------------------------------------------- fingerprinting properties

class DensityProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DensityProperty, CoarserDatabaseNeverBeatsFinerOnAverage) {
  // Property behind the beta1 feature: for any downsampling factor k > 1,
  // mean matching error with the k-downsampled DB >= with the full DB
  // (tolerance for noise).
  const core::Deployment& office = testing_util::office_deployment();
  const schemes::FingerprintDatabase coarse =
      office.wifi_db->downsampled(GetParam(), 1);

  auto mean_err = [&](const schemes::FingerprintDatabase& db) {
    sim::WalkConfig wc;
    wc.seed = 5;
    sim::Walker walker(office.place.get(), office.radio.get(), 0, wc);
    double sum = 0.0;
    int n = 0;
    while (!walker.done()) {
      const sim::SensorFrame f = walker.step(false);
      const auto nn = db.k_nearest(f.wifi, 1);
      if (nn.empty()) continue;
      sum += geo::distance(db.fingerprints()[nn[0].index].pos, f.truth_pos);
      ++n;
    }
    return n > 0 ? sum / n : 1e9;
  };
  EXPECT_GE(mean_err(coarse) + 0.5, mean_err(*office.wifi_db));
}

INSTANTIATE_TEST_SUITE_P(Factors, DensityProperty,
                         ::testing::Values(2, 3, 5, 8));

// --------------------------------------------------- cross-venue pipeline

enum class Venue { kOffice, kOpenSpace, kMall, kCampus };

sim::Place venue_place(Venue v) {
  switch (v) {
    case Venue::kOffice: return sim::office_place(42);
    case Venue::kOpenSpace: return sim::open_space_place(42);
    case Venue::kMall: return sim::mall_place(42);
    case Venue::kCampus: return sim::campus(42);
  }
  return sim::office_place(42);
}

class VenueProperty : public ::testing::TestWithParam<Venue> {
 protected:
  static const core::TrainedModels& models() {
    return testing_util::standard_models(200);
  }
};

TEST_P(VenueProperty, PipelineInvariantsHoldEverywhere) {
  core::Deployment d = core::make_deployment(venue_place(GetParam()),
                                             core::DeploymentOptions{.seed = 3});
  core::Uniloc uniloc = core::make_uniloc(d, models());
  core::RunOptions opts;
  opts.walk.seed = 17;
  const core::RunResult run = core::run_walk(uniloc, d, 0, opts);
  ASSERT_GT(run.epochs.size(), 50u);
  for (const core::EpochRecord& e : run.epochs) {
    // Invariant 1: estimates finite and bounded by the venue scale.
    EXPECT_TRUE(std::isfinite(e.uniloc2_err));
    EXPECT_LT(e.uniloc2_err, 1000.0);
    // Invariant 2: weights form a (sub)distribution aligned with
    // availability.
    double sum = 0.0;
    for (std::size_t i = 0; i < e.weight.size(); ++i) {
      EXPECT_GE(e.weight[i], 0.0);
      if (!e.scheme_available[i]) {
        EXPECT_DOUBLE_EQ(e.weight[i], 0.0);
      }
      sum += e.weight[i];
    }
    EXPECT_TRUE(sum == 0.0 || std::abs(sum - 1.0) < 1e-9);
    // Invariant 3: oracle <= any individual available scheme.
    for (std::size_t i = 0; i < e.scheme_err.size(); ++i) {
      if (!std::isnan(e.scheme_err[i])) {
        EXPECT_LE(e.oracle_err, e.scheme_err[i] + 1e-9);
      }
    }
  }
}

TEST_P(VenueProperty, SomeSchemeIsAlwaysAvailable) {
  core::Deployment d = core::make_deployment(venue_place(GetParam()),
                                             core::DeploymentOptions{.seed = 4});
  core::Uniloc uniloc = core::make_uniloc(d, models());
  core::RunOptions opts;
  opts.walk.seed = 18;
  const core::RunResult run = core::run_walk(uniloc, d, 0, opts);
  for (const core::EpochRecord& e : run.epochs) {
    bool any = false;
    for (bool a : e.scheme_available) any = any || a;
    EXPECT_TRUE(any);  // PDR alone guarantees coverage
  }
}

INSTANTIATE_TEST_SUITE_P(Venues, VenueProperty,
                         ::testing::Values(Venue::kOffice, Venue::kOpenSpace,
                                           Venue::kMall, Venue::kCampus));

// ----------------------------------------------------- radio monotonicity

class RadioDistanceProperty : public ::testing::TestWithParam<double> {};

TEST_P(RadioDistanceProperty, MeanPathRssiDecreasesOverLargeScales) {
  // Shadowing adds local texture, but averaged over many APs the RSSI at
  // distance d must beat the RSSI at 2d.
  sim::Place place = sim::office_place(42);
  const sim::RadioEnvironment radio(&place, sim::RadioParams{},
                                    sim::CellRadioParams{}, 1);
  const double d = GetParam();
  double near_sum = 0.0, far_sum = 0.0;
  int n = 0;
  for (const sim::AccessPoint& ap : place.access_points()) {
    const geo::Vec2 dir{1.0, 0.3};
    const auto near = radio.wifi_mean_rssi(ap, ap.pos + dir.normalized() * d);
    const auto far =
        radio.wifi_mean_rssi(ap, ap.pos + dir.normalized() * (2.0 * d));
    if (near && far) {
      near_sum += *near;
      far_sum += *far;
      ++n;
    }
  }
  if (n >= 3) {
    EXPECT_GT(near_sum / n, far_sum / n);
  }
}

INSTANTIATE_TEST_SUITE_P(Distances, RadioDistanceProperty,
                         ::testing::Values(3.0, 6.0, 10.0, 15.0));

// ------------------------------------------------------- Gaussian duality

// ------------------------------------------------------ chaos properties
//
// Generated chaos via src/proptest: the engine expands a seed into
// random venues, deployments, gaits, fault schedules, crash points and
// fleet shapes, and the oracle asserts the global invariants I1-I7
// (proper BMA over available schemes, on-premises finite fixes,
// odometer traffic accounting, no silently lost epochs, and
// crash/restore / worker-count / fleet invisibility -- see
// src/proptest/oracle.h). Case counts scale with UNILOC_PROPTEST_CASES;
// any failure prints a `UNILOC_REPRO seed=... cases=... spec=...` line,
// shrinks to a minimal spec, and appends it to tests/corpus/ -- which
// is replayed FIRST on every subsequent run.

class ChaosProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static proptest::Verdict oracle(const proptest::CaseSpec& spec) {
    return proptest::run_case(spec, testing_util::standard_models(100));
  }
};

TEST_P(ChaosProperty, GeneratedWorldsHoldInvariants) {
  proptest::EngineConfig cfg;
  cfg.seed = GetParam();
  cfg.cases = 24;  // Per engine seed; UNILOC_PROPTEST_CASES scales it.
  cfg.corpus_path = std::string(UNILOC_CORPUS_DIR) + "/reproducers.jsonl";
  proptest::Engine engine(cfg, &ChaosProperty::oracle);
  const proptest::EngineReport report = engine.run();
  for (const proptest::CaseFailure& f : report.failures) {
    ADD_FAILURE() << f.repro << "\n  first violation: "
                  << f.verdict.summary();
  }
  EXPECT_GT(report.cases_run + report.corpus_replayed, 0u);
}

INSTANTIATE_TEST_SUITE_P(EngineSeeds, ChaosProperty,
                         ::testing::Values(11, 22));

// --------------------------------------------- consistent-hashing ring

class RingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RingProperty, SameSeedSameAssignment) {
  // Placement must be a pure function of (seed, membership): two rings
  // built independently agree on every key -- the property that lets a
  // restarted router route a fleet's existing sessions correctly.
  const std::uint64_t seed = GetParam();
  shard::HashRing a(seed, 64), b(seed, 64);
  for (std::size_t k = 0; k < 4; ++k) {
    a.add_shard(k);
    b.add_shard(k);
  }
  for (std::uint64_t key = 1; key <= 2000; ++key) {
    ASSERT_EQ(a.owner_of(key), b.owner_of(key)) << "key " << key;
  }
  // And a different seed gives a genuinely different layout.
  shard::HashRing c(seed + 1, 64);
  for (std::size_t k = 0; k < 4; ++k) c.add_shard(k);
  std::size_t differs = 0;
  for (std::uint64_t key = 1; key <= 2000; ++key) {
    differs += a.owner_of(key) != c.owner_of(key);
  }
  EXPECT_GT(differs, 0u);
}

TEST_P(RingProperty, RemovingAShardOnlyRemapsItsOwnKeys) {
  // The consistent-hashing contract: keys on surviving shards must not
  // move when a shard dies -- only the dead shard's ~K/N keys re-home.
  const std::uint64_t seed = GetParam();
  const std::size_t kShards = 4;
  const std::uint64_t kKeys = 4000;
  shard::HashRing ring(seed, 64);
  for (std::size_t k = 0; k < kShards; ++k) ring.add_shard(k);

  std::vector<std::size_t> before(kKeys);
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    before[key] = ring.owner_of(key + 1);
  }
  const std::size_t removed = 2;
  ring.remove_shard(removed);
  std::size_t moved = 0;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const std::size_t now = ring.owner_of(key + 1);
    if (before[key] != removed) {
      ASSERT_EQ(now, before[key]) << "survivor key " << key + 1 << " moved";
    } else {
      ASSERT_NE(now, removed);
      ++moved;
    }
  }
  // ~K/N of the keys belonged to the removed shard; with 64 vnodes the
  // share is within a loose 2x band of ideal, never a global reshuffle.
  EXPECT_GT(moved, kKeys / (kShards * 2));
  EXPECT_LT(moved, kKeys / 2);
}

TEST_P(RingProperty, AddingAShardStealsOnlyForItself) {
  const std::uint64_t seed = GetParam();
  const std::uint64_t kKeys = 4000;
  shard::HashRing ring(seed, 64);
  for (std::size_t k = 0; k < 4; ++k) ring.add_shard(k);

  std::vector<std::size_t> before(kKeys);
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    before[key] = ring.owner_of(key + 1);
  }
  ring.add_shard(4);
  std::size_t moved = 0;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const std::size_t now = ring.owner_of(key + 1);
    if (now != before[key]) {
      // Every move lands on the newcomer; no shuffling among incumbents.
      ASSERT_EQ(now, 4u) << "key " << key + 1 << " moved between incumbents";
      ++moved;
    }
  }
  // The newcomer takes ~1/5 of the keys, within a loose band.
  EXPECT_GT(moved, kKeys / 10);
  EXPECT_LT(moved, kKeys / 2);
  // Remove it again: exactly the stolen keys return to their old homes.
  ring.remove_shard(4);
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    ASSERT_EQ(ring.owner_of(key + 1), before[key]);
  }
}

TEST_P(RingProperty, VnodesKeepLoadRoughlyBalanced) {
  const std::uint64_t seed = GetParam();
  const std::size_t kShards = 4;
  const std::uint64_t kKeys = 8000;
  shard::HashRing ring(seed, 64);
  for (std::size_t k = 0; k < kShards; ++k) ring.add_shard(k);
  std::vector<std::size_t> counts(kShards, 0);
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    ++counts[ring.owner_of(key + 1)];
  }
  const double mean = static_cast<double>(kKeys) / kShards;
  for (std::size_t k = 0; k < kShards; ++k) {
    EXPECT_GT(counts[k], mean * 0.5) << "shard " << k << " starved";
    EXPECT_LT(counts[k], mean * 1.7) << "shard " << k << " overloaded";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

// ------------------------------------------------------------- quantiles

class QuantileProperty : public ::testing::TestWithParam<double> {};

TEST_P(QuantileProperty, CdfQuantileRoundTrip) {
  const double x = GetParam();
  EXPECT_NEAR(stats::normal_quantile(stats::normal_cdf(x)), x, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Points, QuantileProperty,
                         ::testing::Values(-3.0, -1.5, -0.2, 0.0, 0.7, 2.2,
                                           3.5));

}  // namespace
}  // namespace uniloc
