#include "sim/builders.h"

#include <gtest/gtest.h>

namespace uniloc::sim {
namespace {

TEST(Campus, EightPaths) {
  const Place c = campus();
  EXPECT_EQ(c.walkways().size(), 8u);
}

TEST(Campus, TotalLengthMatchesPaper) {
  const Place c = campus();
  const double total = c.total_walkway_length();
  EXPECT_NEAR(total, 2780.0, 120.0);  // paper: 2.78 km
  double outdoor = 0.0;
  for (const Walkway& w : c.walkways()) {
    outdoor += w.line.length() - w.length_where(is_indoor);
  }
  EXPECT_NEAR(outdoor, 800.0, 100.0);  // paper: 0.80 km outdoor
}

TEST(Campus, Path1IsThe320mDailyPath) {
  const Place c = campus();
  const Walkway& p1 = c.walkways()[0];
  EXPECT_EQ(p1.name, "Path1");
  EXPECT_NEAR(p1.line.length(), 320.0, 1.0);
  // Segment order: office, corridor, basement, car park, open space.
  EXPECT_EQ(p1.segment_at(10.0).type, SegmentType::kOffice);
  EXPECT_EQ(p1.segment_at(80.0).type, SegmentType::kCorridor);
  EXPECT_EQ(p1.segment_at(150.0).type, SegmentType::kBasement);
  EXPECT_EQ(p1.segment_at(200.0).type, SegmentType::kCarPark);
  EXPECT_EQ(p1.segment_at(300.0).type, SegmentType::kOpenSpace);
}

TEST(Campus, PathLengthsInPaperRange) {
  const Place c = campus();
  for (const Walkway& w : c.walkways()) {
    EXPECT_GE(w.line.length(), 280.0) << w.name;
    EXPECT_LE(w.line.length(), 420.0) << w.name;
  }
}

TEST(Campus, HasInfrastructure) {
  const Place c = campus();
  EXPECT_GT(c.access_points().size(), 30u);
  EXPECT_EQ(c.cell_towers().size(), 6u);
  EXPECT_GT(c.landmarks().size(), 20u);
}

TEST(Campus, NoAccessPointsInBasements) {
  const Place c = campus();
  for (const AccessPoint& ap : c.access_points()) {
    const LocalEnvironment env = c.environment_at(ap.pos);
    EXPECT_NE(env.type, SegmentType::kBasement);
  }
}

TEST(Campus, SomeTowersReachBasements) {
  const Place c = campus();
  int reachable = 0;
  for (const CellTower& t : c.cell_towers()) {
    if (t.basement_reachable) ++reachable;
  }
  EXPECT_EQ(reachable, 2);
}

TEST(Campus, DeterministicForSameSeed) {
  const Place a = campus(5), b = campus(5);
  ASSERT_EQ(a.access_points().size(), b.access_points().size());
  for (std::size_t i = 0; i < a.access_points().size(); ++i) {
    EXPECT_EQ(a.access_points()[i].pos, b.access_points()[i].pos);
  }
}

TEST(Campus, SeedChangesDeployment) {
  const Place a = campus(5), b = campus(6);
  bool any_diff = a.access_points().size() != b.access_points().size();
  for (std::size_t i = 0;
       !any_diff && i < a.access_points().size(); ++i) {
    any_diff = !(a.access_points()[i].pos == b.access_points()[i].pos);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Office, DimensionsMatchPaper) {
  const Place o = office_place();
  const geo::BBox b = o.bounds().inflated(-10.0);  // undo bounds margin
  EXPECT_NEAR(b.width(), 56.0, 6.0);   // paper: 56 x 20 m
  EXPECT_NEAR(b.height(), 20.0, 6.0);
  // All indoor.
  for (const Walkway& w : o.walkways()) {
    EXPECT_DOUBLE_EQ(w.length_where(is_indoor), w.line.length());
  }
}

TEST(Office, CorridorWidthsVary) {
  const Place o = office_place();
  double min_w = 1e9, max_w = 0.0;
  for (const PathSegment& s : o.walkways()[0].segments) {
    min_w = std::min(min_w, s.corridor_width_m);
    max_w = std::max(max_w, s.corridor_width_m);
  }
  EXPECT_LT(min_w, max_w);  // width feature must carry signal
}

TEST(OpenSpace, AllOutdoor) {
  const Place p = open_space_place();
  for (const Walkway& w : p.walkways()) {
    EXPECT_DOUBLE_EQ(w.length_where(is_indoor), 0.0);
  }
}

TEST(Mall, AllIndoorAisles) {
  const Place m = mall_place();
  for (const Walkway& w : m.walkways()) {
    for (const PathSegment& s : w.segments) {
      EXPECT_EQ(s.type, SegmentType::kMallAisle);
    }
  }
}

TEST(Mall, TwoBasementReachableTowers) {
  const Place m = mall_place();
  int reachable = 0;
  for (const CellTower& t : m.cell_towers()) {
    if (t.basement_reachable) ++reachable;
  }
  EXPECT_EQ(reachable, 2);
}

TEST(AddRandomWalkways, CountAndLength) {
  Place m = mall_place();
  const std::size_t before = m.walkways().size();
  const auto idx =
      add_random_walkways(m, 5, 150.0, SegmentType::kMallAisle, 3);
  EXPECT_EQ(idx.size(), 5u);
  EXPECT_EQ(m.walkways().size(), before + 5);
  for (std::size_t i : idx) {
    EXPECT_NEAR(m.walkways()[i].line.length(), 150.0, 30.0);
  }
}

TEST(CampusB, ThreePathsAllSegmentKindsCovered) {
  const Place c = campus_b();
  EXPECT_EQ(c.walkways().size(), 3u);
  bool has[6] = {};
  for (const Walkway& w : c.walkways()) {
    for (const PathSegment& s : w.segments) {
      has[static_cast<int>(s.type)] = true;
    }
  }
  EXPECT_TRUE(has[static_cast<int>(SegmentType::kOffice)]);
  EXPECT_TRUE(has[static_cast<int>(SegmentType::kCorridor)]);
  EXPECT_TRUE(has[static_cast<int>(SegmentType::kBasement)]);
  EXPECT_TRUE(has[static_cast<int>(SegmentType::kCarPark)]);
  EXPECT_TRUE(has[static_cast<int>(SegmentType::kOpenSpace)]);
  EXPECT_GT(c.access_points().size(), 10u);
  EXPECT_EQ(c.cell_towers().size(), 5u);
}

TEST(CampusB, GeometryDiffersFromMainCampus) {
  const Place a = campus(), b = campus_b();
  EXPECT_NE(a.walkways().size(), b.walkways().size());
  EXPECT_NE(a.access_points().size(), b.access_points().size());
}

TEST(AddRandomWalkways, StaysInsideVenue) {
  Place m = mall_place();
  const geo::BBox bounds = m.bounds().inflated(5.0);
  const auto idx =
      add_random_walkways(m, 5, 200.0, SegmentType::kMallAisle, 11);
  for (std::size_t i : idx) {
    for (const geo::Vec2& p : m.walkways()[i].line.points()) {
      EXPECT_TRUE(bounds.contains(p));
    }
  }
}

}  // namespace
}  // namespace uniloc::sim
