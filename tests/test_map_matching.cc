#include "core/map_matching.h"

#include <gtest/gtest.h>

#include "sim/builders.h"
#include "stats/rng.h"

namespace uniloc::core {
namespace {

sim::Place straight_place() {
  sim::Place p("line", {1.35, 103.68});
  p.add_walkway(sim::make_walkway(
      "main", {0.0, 0.0}, 0.0, {{sim::SegmentType::kCorridor, 60.0, 0.0}}));
  return p;
}

TEST(MapMatcher, StatesCoverWalkways) {
  const sim::Place p = straight_place();
  MapMatcher m(&p);
  // 60 m at 2 m bins -> ~31 states.
  EXPECT_NEAR(static_cast<double>(m.num_states()), 31.0, 2.0);
}

TEST(MapMatcher, SnapsOffPathEstimateOntoPath) {
  const sim::Place p = straight_place();
  MapMatcher m(&p);
  const geo::Vec2 snapped = m.update({20.0, 5.0});  // 5 m off the corridor
  EXPECT_NEAR(snapped.y, 0.0, 1e-9);   // on the path
  EXPECT_NEAR(snapped.x, 20.0, 2.1);   // at the right position along it
}

TEST(MapMatcher, TracksNoisyWalk) {
  const sim::Place p = straight_place();
  MapMatcher m(&p);
  stats::Rng rng(3);
  double worst = 0.0;
  for (int step = 0; step < 70; ++step) {
    const geo::Vec2 truth{0.7 * step, 0.0};
    const geo::Vec2 noisy{truth.x + rng.normal(0.0, 3.0),
                          truth.y + rng.normal(0.0, 3.0)};
    const geo::Vec2 matched = m.update(noisy);
    if (step > 10) {
      worst = std::max(worst, geo::distance(matched, truth));
    }
  }
  // Continuity smooths the 3 m observation noise.
  EXPECT_LT(worst, 7.0);
}

TEST(MapMatcher, SmootherThanRawEstimates) {
  const sim::Place p = straight_place();
  MapMatcher m(&p);
  stats::Rng rng(4);
  double raw_err = 0.0, matched_err = 0.0;
  int n = 0;
  for (int step = 0; step < 80; ++step) {
    const geo::Vec2 truth{0.7 * step, 0.0};
    const geo::Vec2 noisy{truth.x + rng.normal(0.0, 4.0),
                          truth.y + rng.normal(0.0, 4.0)};
    const geo::Vec2 matched = m.update(noisy);
    if (step > 10) {
      raw_err += geo::distance(noisy, truth);
      matched_err += geo::distance(matched, truth);
      ++n;
    }
  }
  EXPECT_LT(matched_err / n, raw_err / n);
}

TEST(MapMatcher, SwitchesWalkwaysAtJunction) {
  sim::Place p("cross", {1.35, 103.68});
  p.add_walkway(sim::make_walkway(
      "ew", {0.0, 0.0}, 0.0, {{sim::SegmentType::kCorridor, 40.0, 0.0}}));
  p.add_walkway(sim::make_walkway(
      "ns", {20.0, -20.0}, 90.0, {{sim::SegmentType::kCorridor, 40.0, 0.0}}));
  MapMatcher m(&p);
  // Walk east to the junction, then north along the second walkway.
  geo::Vec2 matched{};
  for (double x = 0.0; x <= 20.0; x += 0.7) matched = m.update({x, 0.0});
  for (double y = 0.7; y <= 15.0; y += 0.7) matched = m.update({20.0, y});
  EXPECT_NEAR(matched.x, 20.0, 2.1);
  EXPECT_NEAR(matched.y, 15.0, 4.0);
}

TEST(MapMatcher, RecoversFromFarOffEstimate) {
  const sim::Place p = straight_place();
  MapMatcher m(&p);
  for (double x = 0.0; x <= 10.0; x += 0.7) m.update({x, 0.0});
  // A wild outlier far from every path must not produce NaNs or a stuck
  // belief.
  const geo::Vec2 after_outlier = m.update({500.0, 500.0});
  EXPECT_TRUE(std::isfinite(after_outlier.x));
  geo::Vec2 recovered{};
  for (int k = 0; k < 3; ++k) recovered = m.update({12.0, 0.0});
  EXPECT_NEAR(recovered.x, 12.0, 6.0);
}

TEST(MapMatcher, ResetRestoresUniformStart) {
  const sim::Place p = straight_place();
  MapMatcher m(&p);
  m.update({50.0, 0.0});
  m.reset();
  const geo::Vec2 fresh = m.update({5.0, 0.0});
  EXPECT_NEAR(fresh.x, 5.0, 2.1);  // no memory of the previous walk
}

}  // namespace
}  // namespace uniloc::core
