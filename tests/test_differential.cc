// Differential harness: fast path vs reference pipeline, bit-for-bit.
//
// The fast epoch pipeline (Uniloc::update_fast + scheme update_into + the
// fingerprint likelihood cache + the SoA particle filter) claims to be a
// pure optimization: same RNG stream, same floating-point summation
// orders, same decisions. These tests hold it to that claim with
// tolerance-free comparisons -- EXPECT_EQ on doubles, never EXPECT_NEAR:
//
//   * every one of the eight campus paths, fault-free, core runner level;
//   * a 32-seed sweep on the office venue;
//   * service level under seeded chaos (drops, corruption, a blackout),
//     at workers 0 and 4, on the campus deployment covering all paths.
//
// If an optimization ever reorders an FP sum or consumes one extra RNG
// draw, the first diverging epoch is reported here, not as a mysterious
// accuracy regression three benches later.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/runner.h"
#include "core/trainer.h"
#include "fault/crash.h"
#include "fault/link.h"
#include "fault/plan.h"
#include "shard/router.h"
#include "sim/builders.h"
#include "svc/loadgen.h"
#include "svc/server.h"
#include "testing_util.h"

namespace uniloc {
namespace {

const core::TrainedModels& test_models() { return testing_util::standard_models(100); }

const core::Deployment& campus_deployment() {
  static const core::Deployment d = core::make_deployment(
      sim::campus(42), core::DeploymentOptions{.seed = 42});
  return d;
}

const core::Deployment& office_deployment() {
  return testing_util::office_deployment();
}

/// Bitwise double equality, treating NaN == NaN (scheme_err is NaN where
/// a scheme was unavailable).
void expect_same(double a, double b, const std::string& what) {
  if (std::isnan(a) && std::isnan(b)) return;
  EXPECT_EQ(a, b) << what;
}

void expect_identical_runs(const core::RunResult& ref,
                           const core::RunResult& fast,
                           const std::string& label) {
  ASSERT_EQ(ref.epochs.size(), fast.epochs.size()) << label;
  ASSERT_EQ(ref.scheme_names, fast.scheme_names) << label;
  for (std::size_t e = 0; e < ref.epochs.size(); ++e) {
    const core::EpochRecord& r = ref.epochs[e];
    const core::EpochRecord& f = fast.epochs[e];
    const std::string at = label + " epoch " + std::to_string(e);
    EXPECT_EQ(r.indoor_detected, f.indoor_detected) << at;
    EXPECT_EQ(r.gps_was_enabled, f.gps_was_enabled) << at;
    EXPECT_EQ(r.uniloc1_choice, f.uniloc1_choice) << at;
    EXPECT_EQ(r.oracle_choice, f.oracle_choice) << at;
    expect_same(r.uniloc1_err, f.uniloc1_err, at + " uniloc1_err");
    expect_same(r.uniloc2_err, f.uniloc2_err, at + " uniloc2_err");
    expect_same(r.oracle_err, f.oracle_err, at + " oracle_err");
    ASSERT_EQ(r.scheme_available.size(), f.scheme_available.size()) << at;
    for (std::size_t i = 0; i < r.scheme_available.size(); ++i) {
      const std::string si = at + " scheme " + ref.scheme_names[i];
      EXPECT_EQ(r.scheme_available[i], f.scheme_available[i]) << si;
      expect_same(r.scheme_err[i], f.scheme_err[i], si + " err");
      expect_same(r.predicted_mu[i], f.predicted_mu[i], si + " mu");
      expect_same(r.confidence[i], f.confidence[i], si + " confidence");
      expect_same(r.weight[i], f.weight[i], si + " weight");
    }
  }
}

/// One walk, reference vs fast, on freshly built (identically seeded)
/// ensembles.
void run_differential_walk(const core::Deployment& d, std::size_t walkway,
                           std::uint64_t walk_seed,
                           const std::string& label) {
  core::RunOptions opts;
  opts.walk.seed = walk_seed;

  core::Uniloc ref_uniloc = core::make_uniloc(d, test_models());
  opts.use_fast_path = false;
  const core::RunResult ref = core::run_walk(ref_uniloc, d, walkway, opts);

  core::Uniloc fast_uniloc = core::make_uniloc(d, test_models());
  opts.use_fast_path = true;
  const core::RunResult fast = core::run_walk(fast_uniloc, d, walkway, opts);

  ASSERT_FALSE(ref.epochs.empty()) << label;
  expect_identical_runs(ref, fast, label);
}

TEST(DifferentialCore, AllEightCampusPathsBitIdentical) {
  const core::Deployment& d = campus_deployment();
  ASSERT_EQ(d.place->walkways().size(), 8u)
      << "campus venue is expected to carry the paper's eight daily paths";
  for (std::size_t w = 0; w < d.place->walkways().size(); ++w) {
    run_differential_walk(d, w, /*walk_seed=*/1000 + w,
                          "campus path " + std::to_string(w));
  }
}

TEST(DifferentialCore, SeedSweepBitIdentical) {
  const core::Deployment& d = office_deployment();
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    run_differential_walk(d, seed % d.place->walkways().size(), 7'000 + seed,
                          "office seed " + std::to_string(seed));
  }
}

// ---------------------------------------------------------------- service

svc::UnilocFactory factory_for(const core::Deployment& d) {
  return [&d](std::uint64_t sid) {
    return std::make_unique<core::Uniloc>(core::make_uniloc(
        d, test_models(), {}, false, /*seed=*/7 + sid));
  };
}

svc::LoadGenConfig load_cfg_for(const fault::FaultPlan* plan,
                                std::uint64_t seed) {
  svc::LoadGenConfig lg;
  lg.walkers = 8;  // round-robin: one per campus path
  lg.max_epochs_per_walker = 24;
  lg.seed = seed;
  lg.resilience.retry.max_retries = 1;
  lg.resilience.probe_period = 2;
  lg.resilience.record_timeline = true;
  if (plan != nullptr) {
    // The chaos schedule is a pure function of (seed, session, send
    // index), so it hits the same frames whether `s` is one server or a
    // whole fleet behind a router.
    lg.make_link = [plan](svc::Endpoint& s, std::uint64_t sid) {
      return std::make_unique<fault::FaultyLink>(
          std::make_unique<svc::DirectLink>(&s), plan, sid);
    };
  }
  return lg;
}

svc::LoadReport run_load_scenario(const core::Deployment& d,
                                  const fault::FaultPlan* plan,
                                  bool use_fast_path, int workers,
                                  std::uint64_t seed) {
  svc::ServerConfig cfg;
  cfg.workers = workers;
  cfg.use_fast_path = use_fast_path;
  svc::LocalizationServer server(cfg, factory_for(d), nullptr);
  return run_load(server, d, load_cfg_for(plan, seed), nullptr);
}

/// Same walkers, same link chaos, but the endpoint is a ShardRouter over
/// `shards` deterministic (workers=0) servers. `wrench` optionally throws
/// fleet-side chaos (migrations, shard crashes) between rounds.
svc::LoadReport run_fleet_scenario(
    const core::Deployment& d, const fault::FaultPlan* plan,
    std::size_t shards, std::uint64_t seed,
    const std::function<void(shard::ShardRouter&, std::size_t)>& wrench = {}) {
  shard::RouterConfig cfg;
  cfg.shards = shards;
  cfg.server.workers = 0;
  shard::ShardRouter router(cfg, factory_for(d), nullptr);
  svc::LoadGenConfig lg = load_cfg_for(plan, seed);
  if (wrench) {
    lg.on_round = [&](std::size_t round) { wrench(router, round); };
  }
  return run_load(router, d, lg, nullptr);
}

void expect_identical_reports(const svc::LoadReport& ref,
                              const svc::LoadReport& fast,
                              const std::string& label) {
  ASSERT_EQ(ref.walkers.size(), fast.walkers.size()) << label;
  EXPECT_EQ(ref.total_epochs, fast.total_epochs) << label;
  for (std::size_t w = 0; w < ref.walkers.size(); ++w) {
    const svc::WalkerOutcome& r = ref.walkers[w];
    const svc::WalkerOutcome& f = fast.walkers[w];
    const std::string at = label + " walker " + std::to_string(w);
    EXPECT_EQ(r.session_id, f.session_id) << at;
    EXPECT_EQ(r.walkway, f.walkway) << at;
    EXPECT_EQ(r.epochs_accepted, f.epochs_accepted) << at;
    EXPECT_EQ(r.local_epochs, f.local_epochs) << at;
    EXPECT_EQ(r.rehellos, f.rehellos) << at;
    ASSERT_EQ(r.timeline.size(), f.timeline.size()) << at;
    for (std::size_t e = 0; e < r.timeline.size(); ++e) {
      const svc::EpochEvent& re = r.timeline[e];
      const svc::EpochEvent& fe = f.timeline[e];
      const std::string ep = at + " epoch " + std::to_string(e);
      EXPECT_EQ(re.epoch, fe.epoch) << ep;
      EXPECT_EQ(re.source, fe.source) << ep;
      EXPECT_EQ(re.attempts, fe.attempts) << ep;
      EXPECT_EQ(re.degraded_after, fe.degraded_after) << ep;
      EXPECT_EQ(re.rehello, fe.rehello) << ep;
      expect_same(re.estimate.x, fe.estimate.x, ep + " x");
      expect_same(re.estimate.y, fe.estimate.y, ep + " y");
      expect_same(re.error_m, fe.error_m, ep + " err");
    }
  }
}

TEST(DifferentialSvc, FaultFreeCampusServiceBitIdentical) {
  const core::Deployment& d = campus_deployment();
  const svc::LoadReport ref =
      run_load_scenario(d, nullptr, /*fast=*/false, /*workers=*/0, 2024);
  const svc::LoadReport fast =
      run_load_scenario(d, nullptr, /*fast=*/true, /*workers=*/0, 2024);
  expect_identical_reports(ref, fast, "clean");
}

TEST(DifferentialSvc, ChaosCampusServiceBitIdenticalAtWorkers0And4) {
  const core::Deployment& d = campus_deployment();
  fault::FaultRates rates;
  rates.drop = 0.10;
  rates.corrupt = 0.05;
  rates.base_delay_us = 20'000;
  fault::FaultPlan plan(5, rates);
  plan.add_blackout(6, 9);

  const svc::LoadReport ref =
      run_load_scenario(d, &plan, /*fast=*/false, /*workers=*/0, 2024);
  const svc::LoadReport fast0 =
      run_load_scenario(d, &plan, /*fast=*/true, /*workers=*/0, 2024);
  const svc::LoadReport fast4 =
      run_load_scenario(d, &plan, /*fast=*/true, /*workers=*/4, 2024);
  expect_identical_reports(ref, fast0, "chaos workers=0");
  expect_identical_reports(ref, fast4, "chaos workers=4");
}

TEST(DifferentialSvc, ChaosSeedSweepBitIdentical) {
  // Smaller venue, more seeds: the fault schedule, retry timing, and
  // fallback transitions all re-randomize per seed.
  const core::Deployment& d = office_deployment();
  fault::FaultRates rates;
  rates.drop = 0.15;
  rates.corrupt = 0.05;
  fault::FaultPlan plan(11, rates);
  for (std::uint64_t seed = 100; seed < 132; ++seed) {
    const svc::LoadReport ref =
        run_load_scenario(d, &plan, /*fast=*/false, /*workers=*/0, seed);
    const svc::LoadReport fast =
        run_load_scenario(d, &plan, /*fast=*/true, /*workers=*/4, seed);
    expect_identical_reports(ref, fast, "seed " + std::to_string(seed));
  }
}

// ------------------------------------------------------------------ fleet
//
// The sharded fleet (src/shard) claims wire transparency: a ShardRouter
// over N workers=0 servers serves the exact epoch stream of one server,
// through live migrations and whole-shard crashes. Held to bit-for-bit
// here, against the single-server reference.

TEST(DifferentialShard, FaultFreeFleetWithMigrationChurnBitIdentical) {
  const core::Deployment& d = campus_deployment();
  const svc::LoadReport ref =
      run_load_scenario(d, nullptr, /*fast=*/true, /*workers=*/0, 2024);
  // Every session hops one shard over every round: ~23 migrations per
  // walker over the run, none of them visible in a single reply bit.
  const svc::LoadReport fleet = run_fleet_scenario(
      d, nullptr, /*shards=*/3, 2024,
      [](shard::ShardRouter& r, std::size_t) {
        for (std::uint64_t sid = 1; sid <= 8; ++sid) {
          r.migrate(sid, (r.shard_of(sid) + 1) % r.shard_count());
        }
      });
  expect_identical_reports(ref, fleet, "fleet churn");
}

TEST(DifferentialShard, ChaosSeedSweepFleetBitIdentical) {
  // The acceptance sweep: 32 seeds, link chaos on, a migration rotation
  // every round -- fleet vs single server, tolerance-free.
  const core::Deployment& d = office_deployment();
  fault::FaultRates rates;
  rates.drop = 0.15;
  rates.corrupt = 0.05;
  fault::FaultPlan plan(11, rates);
  for (std::uint64_t seed = 100; seed < 132; ++seed) {
    const svc::LoadReport ref =
        run_load_scenario(d, &plan, /*fast=*/true, /*workers=*/0, seed);
    const svc::LoadReport fleet = run_fleet_scenario(
        d, &plan, /*shards=*/3, seed,
        [](shard::ShardRouter& r, std::size_t round) {
          // Rotate a different third of the fleet each round.
          for (std::uint64_t sid = 1 + round % 3; sid <= 8; sid += 3) {
            r.migrate(sid, (r.shard_of(sid) + 1) % r.shard_count());
          }
        });
    expect_identical_reports(ref, fleet, "fleet seed " + std::to_string(seed));
  }
}

TEST(DifferentialShard, ShardCrashRecoveryBitIdenticalUnderLinkChaos) {
  // Shard crashes and link chaos together: checkpoints every round, two
  // scripted whole-shard losses, every session resurrected from its
  // checkpoint on a survivor -- and the client-visible stream still
  // matches a run where neither the fleet nor the faults existed... the
  // faults do exist client-side, so the reference runs the same link
  // plan against one server.
  const core::Deployment& d = campus_deployment();
  fault::FaultRates rates;
  rates.drop = 0.10;
  rates.corrupt = 0.05;
  fault::FaultPlan link_plan(5, rates);

  const svc::LoadReport ref =
      run_load_scenario(d, &link_plan, /*fast=*/true, /*workers=*/0, 3030);

  fault::FaultPlan crash_plan(0, {});
  crash_plan.script_crash(5);
  crash_plan.script_crash(13);
  shard::RouterConfig cfg;
  cfg.shards = 4;
  cfg.server.workers = 0;
  shard::ShardRouter router(cfg, factory_for(d), nullptr);
  fault::ShardCrashInjector injector(&router, &crash_plan, /*revive=*/true);
  svc::LoadGenConfig lg = load_cfg_for(&link_plan, 3030);
  lg.on_round = [&](std::size_t round) { injector.on_round(round); };
  const svc::LoadReport fleet = run_load(router, d, lg, nullptr);

  EXPECT_EQ(injector.crashes(), 2u);
  expect_identical_reports(ref, fleet, "crash chaos fleet");
}

}  // namespace
}  // namespace uniloc
