#include "sim/walker.h"

#include <gtest/gtest.h>

#include "sim/builders.h"

namespace uniloc::sim {
namespace {

class WalkerTest : public ::testing::Test {
 protected:
  WalkerTest()
      : place_(campus(42)),
        radio_(&place_, RadioParams{}, CellRadioParams{}, 42) {}

  Walker make_walker(std::uint64_t seed = 1, std::size_t walkway = 0) {
    WalkConfig cfg;
    cfg.seed = seed;
    return Walker(&place_, &radio_, walkway, cfg);
  }

  Place place_;
  RadioEnvironment radio_;
};

TEST_F(WalkerTest, StartsAtWalkwayOrigin) {
  Walker w = make_walker();
  EXPECT_EQ(w.start_position(), place_.walkways()[0].line.point_at(0.0));
  EXPECT_FALSE(w.done());
}

TEST_F(WalkerTest, AdvancesByStepsUntilDone) {
  Walker w = make_walker();
  int steps = 0;
  double prev_arclen = 0.0;
  while (!w.done()) {
    const SensorFrame f = w.step();
    EXPECT_GT(f.truth_arclen, prev_arclen);
    prev_arclen = f.truth_arclen;
    ++steps;
    ASSERT_LT(steps, 2000) << "walker never finished";
  }
  // 320 m at ~0.7 m/step.
  EXPECT_NEAR(steps, 457, 60);
}

TEST_F(WalkerTest, TruthStaysInsideCorridor) {
  Walker w = make_walker();
  const geo::Polyline& line = place_.walkways()[0].line;
  while (!w.done()) {
    const SensorFrame f = w.step();
    const geo::Projection proj = line.project(f.truth_pos);
    const PathSegment& seg = place_.walkways()[0].segment_at(proj.arclen);
    EXPECT_LE(proj.distance, seg.corridor_width_m / 2.0 + 0.2);
  }
}

TEST_F(WalkerTest, FrameCarriesEnvironmentTruth) {
  Walker w = make_walker();
  bool saw_office = false, saw_basement = false, saw_open = false;
  while (!w.done()) {
    const SensorFrame f = w.step();
    saw_office |= f.truth_env == SegmentType::kOffice;
    saw_basement |= f.truth_env == SegmentType::kBasement;
    saw_open |= f.truth_env == SegmentType::kOpenSpace;
  }
  EXPECT_TRUE(saw_office);
  EXPECT_TRUE(saw_basement);
  EXPECT_TRUE(saw_open);
}

TEST_F(WalkerTest, GpsAbsentWhenDisabled) {
  Walker w = make_walker();
  while (!w.done()) {
    const SensorFrame f = w.step(/*gps_enabled=*/false);
    EXPECT_FALSE(f.gps.has_value());
    EXPECT_FALSE(f.gps_enabled);
  }
}

TEST_F(WalkerTest, GpsAppearsOutdoorsWhenEnabled) {
  Walker w = make_walker();
  int outdoor_fixes = 0, indoor_fixes = 0;
  while (!w.done()) {
    const SensorFrame f = w.step(true);
    if (f.gps.has_value()) {
      (f.truth_env == SegmentType::kOpenSpace ? outdoor_fixes : indoor_fixes)++;
    }
  }
  EXPECT_GT(outdoor_fixes, 50);
  EXPECT_EQ(indoor_fixes, 0);  // no sky under roofs on this campus
}

TEST_F(WalkerTest, WifiSilentInBasement) {
  Walker w = make_walker();
  while (!w.done()) {
    const SensorFrame f = w.step();
    if (f.truth_env == SegmentType::kBasement && f.truth_arclen > 135.0 &&
        f.truth_arclen < 175.0) {
      EXPECT_TRUE(f.wifi.empty()) << "at arclen " << f.truth_arclen;
    }
  }
}

TEST_F(WalkerTest, ImuSamplesEveryStep) {
  Walker w = make_walker();
  while (!w.done()) {
    const SensorFrame f = w.step();
    EXPECT_GE(f.imu.size(), 20u);  // ~27 samples at 50 Hz per 0.55 s step
    EXPECT_LE(f.imu.size(), 40u);
  }
}

TEST_F(WalkerTest, LandmarksTriggerOncePerPass) {
  Walker w = make_walker();
  // A landmark may re-trigger if the walker wanders out of and back into
  // its radius, but never on back-to-back epochs (hysteresis).
  std::vector<std::pair<geo::Vec2, int>> seen;  // position, epoch
  int epoch = 0;
  std::size_t triggers = 0;
  while (!w.done()) {
    const SensorFrame f = w.step();
    ++epoch;
    for (const LandmarkObservation& lm : f.landmarks) {
      ++triggers;
      for (const auto& [pos, when] : seen) {
        if (geo::distance(pos, lm.map_pos) < 0.1) {
          EXPECT_GT(epoch - when, 1) << "landmark re-fired immediately";
        }
      }
      seen.emplace_back(lm.map_pos, epoch);
    }
  }
  EXPECT_GT(triggers, 2u);  // some landmarks recognized along Path 1
}

TEST_F(WalkerTest, DeterministicForSeed) {
  Walker a = make_walker(7), b = make_walker(7);
  for (int i = 0; i < 50; ++i) {
    const SensorFrame fa = a.step(), fb = b.step();
    EXPECT_EQ(fa.truth_pos, fb.truth_pos);
    ASSERT_EQ(fa.wifi.size(), fb.wifi.size());
    for (std::size_t j = 0; j < fa.wifi.size(); ++j) {
      EXPECT_DOUBLE_EQ(fa.wifi[j].rssi_dbm, fb.wifi[j].rssi_dbm);
    }
  }
}

TEST_F(WalkerTest, SeedsProduceDifferentNoise) {
  Walker a = make_walker(7), b = make_walker(8);
  a.step();
  b.step();
  const SensorFrame fa = a.step(), fb = b.step();
  EXPECT_NE(fa.truth_pos, fb.truth_pos);  // lateral wander differs
}

TEST_F(WalkerTest, InvalidWalkwayThrows) {
  WalkConfig cfg;
  EXPECT_THROW(Walker(&place_, &radio_, 99, cfg), std::out_of_range);
}

TEST_F(WalkerTest, TimeAdvancesByStepPeriod) {
  Walker w = make_walker();
  const SensorFrame f1 = w.step();
  const SensorFrame f2 = w.step();
  EXPECT_NEAR(f2.t - f1.t, 0.55, 1e-9);
}

}  // namespace
}  // namespace uniloc::sim
