// Golden-trace regression tests.
//
// A fault-free run and a seeded-chaos run are rendered to a canonical
// JSONL trace (one line per epoch per session: source, attempts, fix,
// error) and diffed field-by-field against fixtures checked into
// tests/golden/. Any change to the walker simulation, the wire protocol,
// the retry/fallback state machine, or the fault schedule shows up as a
// one-line diff with the epoch that moved.
//
// To regenerate after an intentional behavior change:
//
//   UNILOC_UPDATE_GOLDEN=1 ./tests/test_golden
//
// then review the fixture diff like any other code change.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/runner.h"
#include "core/trainer.h"
#include "fault/link.h"
#include "fault/plan.h"
#include "svc/loadgen.h"
#include "svc/server.h"
#include "testing_util.h"

#ifndef UNILOC_GOLDEN_DIR
#define UNILOC_GOLDEN_DIR "tests/golden"
#endif

namespace uniloc {
namespace {

const core::TrainedModels& test_models() {
  return testing_util::standard_models(100);
}

struct GoldenFixture {
  const core::Deployment& office = testing_util::office_deployment();

  svc::UnilocFactory factory() {
    return [this](std::uint64_t sid) {
      return std::make_unique<core::Uniloc>(core::make_uniloc(
          office, test_models(), {}, false, /*seed=*/7 + sid));
    };
  }
};

const char* source_name(svc::EpochEvent::Source s) {
  switch (s) {
    case svc::EpochEvent::Source::kServer:
      return "server";
    case svc::EpochEvent::Source::kLocal:
      return "local";
    case svc::EpochEvent::Source::kSkipped:
      return "skipped";
  }
  return "?";
}

/// Canonical rendering: quantized to 0.1 mm, stable field order.
std::vector<std::string> render_trace(const svc::LoadReport& report) {
  std::vector<std::string> lines;
  for (const svc::WalkerOutcome& w : report.walkers) {
    for (const svc::EpochEvent& ev : w.timeline) {
      char buf[256];
      std::snprintf(
          buf, sizeof(buf),
          "{\"session\":%llu,\"epoch\":%zu,\"source\":\"%s\","
          "\"attempts\":%zu,\"degraded\":%d,\"rehello\":%d,"
          "\"x\":%.4f,\"y\":%.4f,\"err\":%.4f}",
          static_cast<unsigned long long>(w.session_id), ev.epoch,
          source_name(ev.source), ev.attempts, ev.degraded_after ? 1 : 0,
          ev.rehello ? 1 : 0, ev.estimate.x, ev.estimate.y, ev.error_m);
      lines.emplace_back(buf);
    }
  }
  return lines;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

void check_against_golden(const std::vector<std::string>& lines,
                          const std::string& name) {
  const std::string path = std::string(UNILOC_GOLDEN_DIR) + "/" + name;
  if (std::getenv("UNILOC_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    for (const std::string& line : lines) out << line << "\n";
    GTEST_SKIP() << "regenerated " << path;
  }
  const std::vector<std::string> golden = read_lines(path);
  ASSERT_FALSE(golden.empty())
      << path << " missing or empty; run with UNILOC_UPDATE_GOLDEN=1";
  ASSERT_EQ(lines.size(), golden.size()) << "trace length changed";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i], golden[i]) << name << " line " << (i + 1);
  }
}

svc::LoadReport run_scenario(GoldenFixture& fx, const fault::FaultPlan* plan,
                             std::size_t walkers, std::size_t epochs,
                             bool use_fast_path = true) {
  svc::ServerConfig cfg;
  cfg.use_fast_path = use_fast_path;
  svc::LocalizationServer server(cfg, fx.factory(), nullptr);
  svc::LoadGenConfig lg;
  lg.walkers = walkers;
  lg.max_epochs_per_walker = epochs;
  lg.resilience.retry.max_retries = 1;
  lg.resilience.probe_period = 2;
  lg.resilience.record_timeline = true;
  if (plan != nullptr) {
    lg.make_link = [plan](svc::Endpoint& s, std::uint64_t sid) {
      return std::make_unique<fault::FaultyLink>(
          std::make_unique<svc::DirectLink>(&s), plan, sid);
    };
  }
  return run_load(server, fx.office, lg, nullptr);
}

TEST(Golden, FaultFreeTraceMatchesFixture) {
  GoldenFixture fx;
  const svc::LoadReport report =
      run_scenario(fx, nullptr, /*walkers=*/1, /*epochs=*/10);
  ASSERT_EQ(report.total_epochs, 10u);
  check_against_golden(render_trace(report), "trace_clean.jsonl");
}

TEST(Golden, SeededChaosTraceMatchesFixture) {
  GoldenFixture fx;
  fault::FaultRates rates;
  rates.drop = 0.10;
  rates.corrupt = 0.05;
  rates.base_delay_us = 20'000;
  fault::FaultPlan plan(5, rates);
  plan.add_blackout(6, 9);  // short outage: fallback entry + exit on tape
  const svc::LoadReport report =
      run_scenario(fx, &plan, /*walkers=*/2, /*epochs=*/12);
  check_against_golden(render_trace(report), "trace_chaos.jsonl");
}

// The two tests above run the default (fast) epoch pipeline; the two
// below replay the SAME fixtures through the reference pipeline. The
// fixtures were recorded once -- both pipelines matching them is a
// golden-anchored restatement of the differential guarantee: neither
// pipeline may drift, separately or together.

TEST(Golden, ReferencePipelineMatchesSameFaultFreeFixture) {
  GoldenFixture fx;
  const svc::LoadReport report = run_scenario(
      fx, nullptr, /*walkers=*/1, /*epochs=*/10, /*use_fast_path=*/false);
  ASSERT_EQ(report.total_epochs, 10u);
  check_against_golden(render_trace(report), "trace_clean.jsonl");
}

TEST(Golden, ReferencePipelineMatchesSameChaosFixture) {
  GoldenFixture fx;
  fault::FaultRates rates;
  rates.drop = 0.10;
  rates.corrupt = 0.05;
  rates.base_delay_us = 20'000;
  fault::FaultPlan plan(5, rates);
  plan.add_blackout(6, 9);
  const svc::LoadReport report = run_scenario(
      fx, &plan, /*walkers=*/2, /*epochs=*/12, /*use_fast_path=*/false);
  check_against_golden(render_trace(report), "trace_chaos.jsonl");
}

// Golden traces cover two scenarios deeply; the seed sweep covers many
// shallowly. For 32 seeds, the fast pipeline's rendered trace must equal
// the reference pipeline's rendered trace line for line (the fixtures
// cannot enumerate seeds, so the reference run IS the golden here).

TEST(Golden, SeedSweepFastTraceEqualsReferenceTrace) {
  GoldenFixture fx;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    const auto run = [&fx, seed](bool fast) {
      svc::ServerConfig cfg;
      cfg.use_fast_path = fast;
      svc::LocalizationServer server(cfg, fx.factory(), nullptr);
      svc::LoadGenConfig lg;
      lg.walkers = 2;
      lg.max_epochs_per_walker = 8;
      lg.seed = seed;
      lg.resilience.retry.max_retries = 1;
      lg.resilience.probe_period = 2;
      lg.resilience.record_timeline = true;
      return render_trace(run_load(server, fx.office, lg, nullptr));
    };
    const std::vector<std::string> ref = run(false);
    const std::vector<std::string> fast = run(true);
    ASSERT_FALSE(ref.empty()) << "seed " << seed;
    ASSERT_EQ(ref.size(), fast.size()) << "seed " << seed;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(ref[i], fast[i]) << "seed " << seed << " line " << (i + 1);
    }
  }
}

}  // namespace
}  // namespace uniloc
