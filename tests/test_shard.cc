// Tests for the src/shard fleet layer: consistent-hash routing,
// live session migration (buffering, replay, rollback), hot-shard
// rebalancing, and whole-shard crash recovery.
//
// The load-bearing claims (ISSUE 7 acceptance criteria) pinned here:
//   * a fleet at workers=0 per shard is wire-transparent: run_load
//     against a ShardRouter is bit-identical to the same run against a
//     single LocalizationServer;
//   * a session migrated mid-walk serves the exact reply bytes of an
//     unmigrated run;
//   * killing one shard of four loses zero sessions (every one resumes
//     from its checkpoint, and the epoch stream stays bit-identical).
//
// Concurrency tests run real worker threads and a live rebalancer and
// are gated under TSan by scripts/check.sh (ctest -L '^shard$').
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/runner.h"
#include "core/trainer.h"
#include "fault/crash.h"
#include "fault/plan.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "shard/migrate.h"
#include "shard/router.h"
#include "sim/virtual_clock.h"
#include "svc/epoch_codec.h"
#include "svc/loadgen.h"
#include "svc/server.h"
#include "svc/wire.h"
#include "testing_util.h"

namespace uniloc {
namespace {

// One trained model set for every fleet test (training is the slow part).
const core::TrainedModels& test_models() {
  return testing_util::standard_models(100);
}

struct FleetFixture {
  const core::Deployment& office = testing_util::office_deployment();

  // Same seeding discipline as the server tests: a session rebuilt by any
  // shard's factory is identical to the one the original shard built.
  svc::UnilocFactory factory() {
    return [this](std::uint64_t sid) {
      return std::make_unique<core::Uniloc>(core::make_uniloc(
          office, test_models(), {}, false, /*seed=*/7 + sid));
    };
  }
};

std::vector<std::uint8_t> hello_frame(std::uint64_t sid, geo::Vec2 start,
                                      double heading) {
  svc::Frame f;
  f.type = svc::FrameType::kHello;
  f.session_id = sid;
  f.payload = svc::encode_hello({start, heading});
  return svc::encode_frame(f);
}

std::vector<std::uint8_t> epoch_frame(std::uint64_t sid) {
  svc::Frame f;
  f.type = svc::FrameType::kEpoch;
  f.session_id = sid;
  f.payload = svc::encode_epoch({}, sim::SensorFrame{});
  return svc::encode_frame(f);
}

std::vector<std::uint8_t> migrate_frame(
    std::uint64_t sid, const std::vector<std::uint8_t>& payload) {
  svc::Frame f;
  f.type = svc::FrameType::kMigrate;
  f.session_id = sid;
  f.payload = payload;
  return svc::encode_frame(f);
}

svc::Frame get_reply(svc::Endpoint& ep, std::vector<std::uint8_t> req) {
  const svc::DecodeResult r =
      svc::decode_frame(ep.submit(std::move(req)).get());
  EXPECT_EQ(r.error, svc::WireError::kNone);
  return r.frame.value();
}

/// Lowest session id >= `from` the router would place on `shard`.
std::uint64_t sid_on_shard(const shard::ShardRouter& router,
                           std::size_t shard, std::uint64_t from = 1) {
  for (std::uint64_t sid = from; sid < from + 100'000; ++sid) {
    if (router.shard_of(sid) == shard) return sid;
  }
  ADD_FAILURE() << "no session id maps to shard " << shard;
  return 0;
}

shard::RouterConfig fleet_cfg(std::size_t shards) {
  shard::RouterConfig cfg;
  cfg.shards = shards;
  cfg.server.workers = 0;  // deterministic inline mode
  return cfg;
}

svc::LoadGenConfig load_cfg(std::size_t walkers, std::size_t epochs,
                            std::uint64_t seed) {
  svc::LoadGenConfig lg;
  lg.walkers = walkers;
  lg.max_epochs_per_walker = epochs;
  lg.seed = seed;
  lg.resilience.retry.max_retries = 1;
  lg.resilience.probe_period = 2;
  lg.resilience.record_timeline = true;
  return lg;
}

/// Bit-level comparison of two load reports, timeline included (same
/// contract as the differential harness).
void expect_identical_reports(const svc::LoadReport& ref,
                              const svc::LoadReport& other,
                              const std::string& label) {
  ASSERT_EQ(ref.walkers.size(), other.walkers.size()) << label;
  EXPECT_EQ(ref.total_epochs, other.total_epochs) << label;
  for (std::size_t w = 0; w < ref.walkers.size(); ++w) {
    const svc::WalkerOutcome& r = ref.walkers[w];
    const svc::WalkerOutcome& f = other.walkers[w];
    const std::string at = label + " walker " + std::to_string(w);
    EXPECT_EQ(r.session_id, f.session_id) << at;
    EXPECT_EQ(r.walkway, f.walkway) << at;
    EXPECT_EQ(r.epochs_accepted, f.epochs_accepted) << at;
    EXPECT_EQ(r.local_epochs, f.local_epochs) << at;
    EXPECT_EQ(r.rehellos, f.rehellos) << at;
    EXPECT_EQ(r.mean_error_m, f.mean_error_m) << at;
    EXPECT_EQ(r.final_estimate.x, f.final_estimate.x) << at;
    EXPECT_EQ(r.final_estimate.y, f.final_estimate.y) << at;
    ASSERT_EQ(r.timeline.size(), f.timeline.size()) << at;
    for (std::size_t e = 0; e < r.timeline.size(); ++e) {
      const svc::EpochEvent& re = r.timeline[e];
      const svc::EpochEvent& fe = f.timeline[e];
      const std::string ep = at + " epoch " + std::to_string(e);
      EXPECT_EQ(re.epoch, fe.epoch) << ep;
      EXPECT_EQ(re.source, fe.source) << ep;
      EXPECT_EQ(re.attempts, fe.attempts) << ep;
      EXPECT_EQ(re.degraded_after, fe.degraded_after) << ep;
      EXPECT_EQ(re.rehello, fe.rehello) << ep;
      EXPECT_EQ(re.estimate.x, fe.estimate.x) << ep;
      EXPECT_EQ(re.estimate.y, fe.estimate.y) << ep;
      EXPECT_EQ(re.error_m, fe.error_m) << ep;
    }
  }
}

// ----------------------------------------------------------------- routing

TEST(Router, FleetIsWireTransparentToClients) {
  FleetFixture fx;
  svc::LocalizationServer single({}, fx.factory(), nullptr);
  const svc::LoadReport ref =
      run_load(single, fx.office, load_cfg(8, 16, 2024), nullptr);

  shard::ShardRouter router(fleet_cfg(3), fx.factory(), nullptr);
  const svc::LoadReport fleet =
      run_load(router, fx.office, load_cfg(8, 16, 2024), nullptr);

  expect_identical_reports(ref, fleet, "fleet vs single");
  EXPECT_EQ(router.live_sessions(), 0u);  // every walker said bye
}

TEST(Router, HellosSpreadAcrossShards) {
  FleetFixture fx;
  shard::ShardRouter router(fleet_cfg(4), fx.factory(), nullptr);
  for (std::uint64_t sid = 1; sid <= 32; ++sid) {
    ASSERT_EQ(get_reply(router, hello_frame(sid, {0, 0}, 0.0)).type,
              svc::FrameType::kReply);
  }
  std::size_t populated = 0;
  std::size_t total = 0;
  for (std::size_t k = 0; k < router.shard_count(); ++k) {
    total += router.server(k).live_sessions();
    if (router.server(k).live_sessions() > 0) ++populated;
  }
  EXPECT_EQ(total, 32u);
  EXPECT_GE(populated, 2u) << "consistent hashing left the fleet lopsided";
  // Routing is consistent: every session's frames land on its own shard.
  for (std::uint64_t sid = 1; sid <= 32; ++sid) {
    EXPECT_EQ(get_reply(router, epoch_frame(sid)).type,
              svc::FrameType::kReply);
  }
}

TEST(Router, StatusIsPerShardAdmin) {
  FleetFixture fx;
  shard::ShardRouter router(fleet_cfg(2), fx.factory(), nullptr);
  get_reply(router, hello_frame(1, {0, 0}, 0.0));

  for (std::uint64_t k = 0; k < 2; ++k) {
    svc::Frame req;
    req.type = svc::FrameType::kStatus;
    req.session_id = k;  // admin: names the shard, not a session
    req.payload = svc::encode_status_request(svc::StatusFormat::kJson);
    const svc::Frame reply = get_reply(router, svc::encode_frame(req));
    ASSERT_EQ(reply.type, svc::FrameType::kReply);
    const std::string text(reply.payload.begin(), reply.payload.end());
    EXPECT_NE(text.find("sessions"), std::string::npos) << "shard " << k;
  }

  svc::Frame bad;
  bad.type = svc::FrameType::kStatus;
  bad.session_id = 9;
  bad.payload = svc::encode_status_request(svc::StatusFormat::kJson);
  EXPECT_EQ(svc::error_code(get_reply(router, svc::encode_frame(bad))),
            svc::ErrorCode::kUnknownSession);

  router.crash_shard(1);
  svc::Frame dead;
  dead.type = svc::FrameType::kStatus;
  dead.session_id = 1;
  dead.payload = svc::encode_status_request(svc::StatusFormat::kJson);
  EXPECT_EQ(svc::error_code(get_reply(router, svc::encode_frame(dead))),
            svc::ErrorCode::kShuttingDown);
}

TEST(Router, MalformedBytesAreRejectedBeforeRouting) {
  FleetFixture fx;
  shard::ShardRouter router(fleet_cfg(2), fx.factory(), nullptr);
  const svc::Frame reply = get_reply(router, {0x01, 0x02, 0x03});
  EXPECT_EQ(svc::error_code(reply), svc::ErrorCode::kMalformed);
  // Nothing reached a shard: the fleet is still empty.
  EXPECT_EQ(router.live_sessions(), 0u);
}

// --------------------------------------------------------------- migration

TEST(Migration, MidWalkIsBitIdenticalToUnmigratedRun) {
  FleetFixture fx;
  svc::LocalizationServer control({}, fx.factory(), nullptr);
  obs::MetricsRegistry reg;
  shard::ShardRouter fleet(fleet_cfg(3), fx.factory(), &reg);

  sim::WalkConfig wc;
  wc.seed = 11;
  sim::Walker walker(fx.office.place.get(), fx.office.radio.get(), 0, wc);
  offload::PhoneAgent phone;
  phone.reset(walker.start_heading());

  const std::vector<std::uint8_t> hello =
      hello_frame(1, walker.start_position(), walker.start_heading());
  ASSERT_EQ(control.submit(hello).get(), fleet.submit(hello).get());

  bool gps = true;
  std::size_t migrations = 0;
  for (std::size_t e = 0; !walker.done() && e < 30; ++e) {
    if (e > 0 && e % 5 == 0) {
      // Rotate the session one shard over, mid-walk.
      const std::size_t to = (fleet.shard_of(1) + 1) % fleet.shard_count();
      ASSERT_TRUE(fleet.migrate(1, to)) << "epoch " << e;
      ASSERT_EQ(fleet.shard_of(1), to);
      ++migrations;
    }
    const sim::SensorFrame f = walker.step(gps);
    svc::Frame req;
    req.type = svc::FrameType::kEpoch;
    req.session_id = 1;
    req.payload = svc::encode_epoch(phone.reduce(f), f);
    const std::vector<std::uint8_t> bytes = svc::encode_frame(req);
    const std::vector<std::uint8_t> want = control.submit(bytes).get();
    const std::vector<std::uint8_t> got = fleet.submit(bytes).get();
    ASSERT_EQ(want, got) << "reply diverged at epoch " << e << " after "
                         << migrations << " migrations";
    const svc::DecodeResult r = svc::decode_frame(want);
    ASSERT_EQ(r.frame->type, svc::FrameType::kReply);
    gps = svc::parse_epoch_reply(r.frame->payload)->gps_enable_next;
  }
  ASSERT_GE(migrations, 4u);
  EXPECT_EQ(reg.counter("shard.migrations").value(), migrations);
}

TEST(Migration, RotationUnderLoadIsBitIdentical) {
  FleetFixture fx;
  svc::LocalizationServer single({}, fx.factory(), nullptr);
  const svc::LoadReport ref =
      run_load(single, fx.office, load_cfg(6, 18, 404), nullptr);

  shard::ShardRouter router(fleet_cfg(3), fx.factory(), nullptr);
  svc::LoadGenConfig lg = load_cfg(6, 18, 404);
  std::size_t moved = 0;
  lg.on_round = [&](std::size_t) {
    // Every round, every session hops one shard over -- maximal churn.
    for (std::uint64_t sid = 1; sid <= 6; ++sid) {
      const std::size_t to = (router.shard_of(sid) + 1) % router.shard_count();
      if (router.migrate(sid, to)) ++moved;
    }
  };
  const svc::LoadReport fleet = run_load(router, fx.office, lg, nullptr);

  EXPECT_GE(moved, 6u * 17u);  // sessions are gone by the bye round
  expect_identical_reports(ref, fleet, "migration rotation");
}

TEST(Migration, ParkedFramesReplayAfterAdoption) {
  FleetFixture fx;
  obs::MetricsRegistry reg;
  shard::RouterConfig cfg = fleet_cfg(2);
  std::function<void(std::uint64_t, std::size_t, std::size_t)> hook;
  cfg.on_migration_extracted = [&hook](std::uint64_t sid, std::size_t from,
                                       std::size_t to) {
    if (hook) hook(sid, from, to);
  };
  shard::ShardRouter router(cfg, fx.factory(), &reg);

  const std::uint64_t sid = sid_on_shard(router, 0);
  const std::uint64_t other = sid_on_shard(router, 1);
  get_reply(router, hello_frame(sid, {0, 0}, 0.0));
  get_reply(router, hello_frame(other, {0, 0}, 0.0));

  std::vector<std::future<std::vector<std::uint8_t>>> parked;
  hook = [&](std::uint64_t, std::size_t, std::size_t) {
    // The session exists on no shard right now. Frames submitted here
    // must park in the router, not fail.
    parked.push_back(router.submit(epoch_frame(sid)));
    parked.push_back(router.submit(epoch_frame(sid)));
    for (const auto& f : parked) {
      EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
                std::future_status::timeout);
    }
    // An unrelated session is not buffered: served inline as usual.
    EXPECT_EQ(get_reply(router, epoch_frame(other)).type,
              svc::FrameType::kReply);
  };
  ASSERT_TRUE(router.migrate(sid, 1));
  ASSERT_EQ(parked.size(), 2u);
  for (auto& f : parked) {
    const svc::DecodeResult r = svc::decode_frame(f.get());
    ASSERT_TRUE(r.frame.has_value());
    EXPECT_EQ(r.frame->type, svc::FrameType::kReply);
  }
  EXPECT_EQ(reg.counter("shard.buffered_frames").value(), 2u);
  EXPECT_EQ(router.shard_of(sid), 1u);
  EXPECT_EQ(get_reply(router, epoch_frame(sid)).type, svc::FrameType::kReply);
}

TEST(Migration, ConcurrentUplinkToStaleSourceReconciles) {
  // A client that keeps talking to the session's old shard (stale route)
  // sees kUnknownSession -- the reconcile signal -- while the router
  // itself keeps serving the session at its new home.
  FleetFixture fx;
  shard::RouterConfig cfg = fleet_cfg(2);
  std::function<void(std::uint64_t, std::size_t, std::size_t)> hook;
  cfg.on_migration_extracted = [&hook](std::uint64_t sid, std::size_t from,
                                       std::size_t to) {
    if (hook) hook(sid, from, to);
  };
  shard::ShardRouter router(cfg, fx.factory(), nullptr);

  const std::uint64_t sid = sid_on_shard(router, 0);
  get_reply(router, hello_frame(sid, {0, 0}, 0.0));

  bool checked = false;
  hook = [&](std::uint64_t s, std::size_t from, std::size_t) {
    // Directly at the source shard (bypassing the router, as a stale
    // client connection would): the session is already extracted.
    EXPECT_EQ(svc::error_code(get_reply(router.server(from), epoch_frame(s))),
              svc::ErrorCode::kUnknownSession);
    checked = true;
  };
  ASSERT_TRUE(router.migrate(sid, 1));
  ASSERT_TRUE(checked);
  // Through the router the session never skipped a beat.
  EXPECT_EQ(get_reply(router, epoch_frame(sid)).type, svc::FrameType::kReply);
}

TEST(Migration, AdoptFailureRollsBackToSource) {
  FleetFixture fx;
  obs::MetricsRegistry reg;
  shard::ShardRouter router(fleet_cfg(2), fx.factory(), &reg);
  const std::uint64_t sid = sid_on_shard(router, 0);
  get_reply(router, hello_frame(sid, {0, 0}, 0.0));

  // Plant a doppelganger with the same id directly on the target shard
  // (bypassing the router): adoption there must refuse with
  // kSessionExists and the migration must roll back.
  ASSERT_EQ(get_reply(router.server(1), hello_frame(sid, {1, 1}, 0.0)).type,
            svc::FrameType::kReply);
  EXPECT_FALSE(router.migrate(sid, 1));
  EXPECT_EQ(reg.counter("shard.migration_failures").value(), 1u);
  EXPECT_EQ(reg.counter("shard.migrations").value(), 0u);

  // The session still lives on its source shard and still serves.
  EXPECT_EQ(router.shard_of(sid), 0u);
  EXPECT_EQ(router.server(0).live_sessions(), 1u);
  EXPECT_EQ(get_reply(router, epoch_frame(sid)).type, svc::FrameType::kReply);
}

TEST(Migration, InvalidTargetsAreRefused) {
  FleetFixture fx;
  shard::ShardRouter router(fleet_cfg(3), fx.factory(), nullptr);
  const std::uint64_t sid = sid_on_shard(router, 0);
  get_reply(router, hello_frame(sid, {0, 0}, 0.0));

  EXPECT_FALSE(router.migrate(999'999, 1)) << "unknown session";
  EXPECT_FALSE(router.migrate(sid, 7)) << "shard index out of range";
  EXPECT_TRUE(router.migrate(sid, 0)) << "same-shard move is a no-op";
  router.crash_shard(1);
  EXPECT_FALSE(router.migrate(sid, 1)) << "dead target";
  // The refused moves left the session serving in place.
  EXPECT_EQ(get_reply(router, epoch_frame(sid)).type, svc::FrameType::kReply);
}

// -------------------------------------------------------------- rebalance

TEST(Rebalance, DrainsHotShardOntoCold) {
  FleetFixture fx;
  obs::MetricsRegistry reg;
  shard::RouterConfig cfg = fleet_cfg(2);
  cfg.rebalance.hot_factor = 1.1;
  cfg.rebalance.min_gap = 2;
  cfg.rebalance.max_moves = 2;
  shard::ShardRouter router(cfg, fx.factory(), &reg);

  // Pile six sessions onto shard 0 (ids chosen by the ring itself).
  std::uint64_t sid = 1;
  for (int i = 0; i < 6; ++i) {
    sid = sid_on_shard(router, 0, sid);
    get_reply(router, hello_frame(sid, {0, 0}, 0.0));
    ++sid;
  }
  ASSERT_EQ(router.server(0).live_sessions(), 6u);
  ASSERT_EQ(router.server(1).live_sessions(), 0u);

  std::size_t total = 0;
  std::size_t passes = 0;
  for (std::size_t m = router.rebalance(); m > 0; m = router.rebalance()) {
    total += m;
    ++passes;
    ASSERT_LT(passes, 10u) << "rebalance does not converge";
  }
  EXPECT_EQ(total, 3u);  // 6/0 -> 4/2 -> 3/3
  EXPECT_EQ(router.server(0).live_sessions(), 3u);
  EXPECT_EQ(router.server(1).live_sessions(), 3u);
  EXPECT_EQ(reg.counter("shard.rebalances").value(), passes);
  EXPECT_EQ(reg.counter("shard.migrations").value(), total);
  // Balanced fleet: another pass must not ping-pong sessions back.
  EXPECT_EQ(router.rebalance(), 0u);
}

TEST(Rebalance, SloBreachEscalatesToAnyImbalance) {
  FleetFixture fx;
  obs::SloConfig slo_cfg;
  slo_cfg.window = 64;
  slo_cfg.min_samples = 8;
  slo_cfg.error_budget = 0.01;
  obs::SloMonitor slo(slo_cfg, nullptr);

  shard::RouterConfig cfg = fleet_cfg(2);
  // Count-based trigger effectively off: only the SLO escalation path
  // can justify a move.
  cfg.rebalance.hot_factor = 100.0;
  cfg.rebalance.min_gap = 99;
  cfg.server.slo = &slo;
  shard::ShardRouter router(cfg, fx.factory(), nullptr);

  std::uint64_t sid = 1;
  for (int i = 0; i < 3; ++i) {
    sid = sid_on_shard(router, 0, sid);
    get_reply(router, hello_frame(sid, {0, 0}, 0.0));
    ++sid;
  }
  get_reply(router, hello_frame(sid_on_shard(router, 1), {0, 0}, 0.0));

  // Healthy SLO: the 3-vs-1 gap alone is not worth a migration.
  EXPECT_EQ(router.rebalance(), 0u);

  for (int i = 0; i < 16; ++i) slo.observe(1'000.0, /*error=*/true);
  ASSERT_TRUE(slo.breached());
  // Burning error budget: the same gap now triggers a move.
  EXPECT_GE(router.rebalance(), 1u);
  EXPECT_EQ(router.server(0).live_sessions() +
                router.server(1).live_sessions(),
            4u);
}

// ------------------------------------------------------------ shard crash

TEST(Crash, WholeShardCrashLosesZeroSessions) {
  // THE fleet disaster drill: 4 shards, 8 walkers, two scripted
  // whole-shard crashes mid-run. Every session must resurrect from its
  // checkpoint on a survivor and the served epoch stream must stay
  // bit-identical to a run where nothing ever crashed.
  FleetFixture fx;
  svc::LocalizationServer single({}, fx.factory(), nullptr);
  const svc::LoadReport ref =
      run_load(single, fx.office, load_cfg(8, 20, 777), nullptr);

  shard::ShardRouter router(fleet_cfg(4), fx.factory(), nullptr);
  fault::FaultPlan plan(0, {});
  plan.script_crash(4);
  plan.script_crash(9);
  fault::ShardCrashInjector injector(&router, &plan, /*revive=*/true);
  svc::LoadGenConfig lg = load_cfg(8, 20, 777);
  lg.on_round = [&](std::size_t round) { injector.on_round(round); };
  const svc::LoadReport fleet = run_load(router, fx.office, lg, nullptr);

  EXPECT_EQ(injector.crashes(), 2u);
  EXPECT_GE(injector.sessions_recovered(), 1u);
  for (const svc::WalkerOutcome& w : fleet.walkers) {
    EXPECT_EQ(w.rehellos, 0u) << "a client noticed the crash";
    EXPECT_EQ(w.errors, 0u);
  }
  expect_identical_reports(ref, fleet, "shard crash chaos");
}

TEST(Crash, UnrecoveredCrashForcesRehelloOntoSurvivors) {
  // Without recovery the dead shard's sessions ARE lost server-side; the
  // client-side reconcile (kUnknownSession -> re-hello seeded at the
  // local estimate) must carry every walker to the end of its walk.
  FleetFixture fx;
  shard::ShardRouter router(fleet_cfg(2), fx.factory(), nullptr);
  svc::LoadGenConfig lg = load_cfg(6, 16, 909);
  lg.on_round = [&](std::size_t round) {
    if (round == 5) router.crash_shard(router.shard_of(1));
  };
  const svc::LoadReport report = run_load(router, fx.office, lg, nullptr);

  std::size_t rehellos = 0;
  for (const svc::WalkerOutcome& w : report.walkers) {
    rehellos += w.rehellos;
    EXPECT_GT(w.epochs_accepted, 0u) << "walker " << w.session_id;
    // Timeline complete: no epoch was silently dropped.
    EXPECT_EQ(w.timeline.size(), 16u) << "walker " << w.session_id;
  }
  EXPECT_GE(rehellos, 1u) << "the crash was invisible -- it should not be";
  EXPECT_EQ(router.live_sessions(), 0u);  // every survivor session said bye
}

TEST(Crash, LastShardStandingRefusesToDie) {
  FleetFixture fx;
  shard::ShardRouter router(fleet_cfg(2), fx.factory(), nullptr);
  router.crash_shard(0);
  EXPECT_FALSE(router.alive(0));
  // The fleet never goes dark: the last alive shard cannot be crashed.
  router.crash_shard(1);
  EXPECT_TRUE(router.alive(1));
  const std::uint64_t sid = 4242;
  EXPECT_EQ(get_reply(router, hello_frame(sid, {0, 0}, 0.0)).type,
            svc::FrameType::kReply);
  EXPECT_EQ(router.shard_of(sid), 1u);

  // A revived shard rejoins empty and accepts migrations again.
  router.revive_shard(0);
  EXPECT_TRUE(router.alive(0));
  EXPECT_EQ(router.server(0).live_sessions(), 0u);
  EXPECT_TRUE(router.migrate(sid, 0));
  EXPECT_EQ(get_reply(router, epoch_frame(sid)).type, svc::FrameType::kReply);
}

TEST(Crash, RecoverySkipsSessionsThatAlreadyRehelloed) {
  FleetFixture fx;
  shard::ShardRouter router(fleet_cfg(2), fx.factory(), nullptr);
  const std::uint64_t sid = sid_on_shard(router, 0);
  get_reply(router, hello_frame(sid, {0, 0}, 0.0));
  router.checkpoint_all();
  router.crash_shard(0);

  // The client wins the race: it re-hellos (onto the survivor) before
  // the operator runs recovery.
  ASSERT_EQ(get_reply(router, hello_frame(sid, {2, 2}, 0.0)).type,
            svc::FrameType::kReply);
  ASSERT_EQ(router.server(1).live_sessions(), 1u);

  // Recovery must keep the live (newer) session, not clobber it with
  // the checkpointed one.
  EXPECT_EQ(router.recover_shard(0), 0u);
  EXPECT_EQ(router.server(1).live_sessions(), 1u);
  EXPECT_EQ(get_reply(router, epoch_frame(sid)).type, svc::FrameType::kReply);
}

// ------------------------------------------------- checkpoint splitting

TEST(Split, SnapshotSplitsIntoStandaloneAdoptablePayloads) {
  FleetFixture fx;
  svc::LocalizationServer source({}, fx.factory(), nullptr);
  get_reply(source, hello_frame(1, {0, 0}, 0.0));
  get_reply(source, hello_frame(2, {1, 1}, 0.5));
  get_reply(source, epoch_frame(1));
  const std::vector<std::uint8_t> snapshot = source.snapshot();

  const auto records = shard::split_snapshot_sessions(snapshot);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].first, 1u);
  EXPECT_EQ(records[1].first, 2u);

  // Each record is a complete kMigrate payload on its own.
  svc::LocalizationServer target({}, fx.factory(), nullptr);
  for (const auto& [sid, payload] : records) {
    ASSERT_EQ(get_reply(target, migrate_frame(sid, payload)).type,
              svc::FrameType::kReply)
        << "session " << sid;
  }
  EXPECT_EQ(target.live_sessions(), 2u);
  EXPECT_EQ(get_reply(target, epoch_frame(1)).type, svc::FrameType::kReply);
}

TEST(Split, HostileSnapshotsYieldNothing) {
  FleetFixture fx;
  svc::LocalizationServer source({}, fx.factory(), nullptr);
  get_reply(source, hello_frame(1, {0, 0}, 0.0));
  get_reply(source, hello_frame(2, {1, 1}, 0.0));
  const std::vector<std::uint8_t> snapshot = source.snapshot();

  EXPECT_TRUE(shard::split_snapshot_sessions({}).empty());
  EXPECT_TRUE(shard::split_snapshot_sessions({0xDE, 0xAD}).empty());

  // A torn tail invalidates the whole split: recovery must not resurrect
  // half a population and silently drop the rest.
  std::vector<std::uint8_t> torn = snapshot;
  torn.resize(torn.size() - 3);
  EXPECT_TRUE(shard::split_snapshot_sessions(torn).empty());

  // Trailing garbage is equally fatal.
  std::vector<std::uint8_t> padded = snapshot;
  padded.push_back(0x00);
  EXPECT_TRUE(shard::split_snapshot_sessions(padded).empty());
}

// ------------------------------------------------------------ concurrency

TEST(Concurrency, RebalanceAndCheckpointDuringLiveTraffic) {
  // TSan target: real worker threads on every shard, a control loop
  // rebalancing/checkpointing from another thread, live client traffic
  // throughout. No frame may be lost or mis-answered.
  FleetFixture fx;
  shard::RouterConfig cfg = fleet_cfg(3);
  cfg.server.workers = 2;
  cfg.rebalance.hot_factor = 1.1;
  cfg.rebalance.min_gap = 1;
  shard::ShardRouter router(cfg, fx.factory(), nullptr);

  std::atomic<bool> done{false};
  std::atomic<std::size_t> control_passes{0};
  std::thread control([&] {
    while (!done.load()) {
      router.rebalance();
      router.checkpoint_all();
      (void)router.live_sessions();
      control_passes.fetch_add(1);
      std::this_thread::yield();
    }
  });

  svc::LoadGenConfig lg = load_cfg(9, 12, 313);
  lg.resilience.record_timeline = false;
  const svc::LoadReport report = run_load(router, fx.office, lg, nullptr);
  done.store(true);
  control.join();

  EXPECT_GE(control_passes.load(), 1u);
  EXPECT_EQ(report.error_total, 0u);
  for (const svc::WalkerOutcome& w : report.walkers) {
    EXPECT_EQ(w.epochs_accepted, 12u) << "walker " << w.session_id;
    EXPECT_EQ(w.rehellos, 0u) << "walker " << w.session_id;
  }
  EXPECT_EQ(router.live_sessions(), 0u);
}

TEST(Eviction, TtlSweepKeepsRouterOverridesBounded) {
  // Regression for the unbounded-overrides leak: kHello pins sid->shard
  // in the router's override map, and before the router chained its own
  // eviction hook a TTL sweep on a shard silently dropped the session
  // while the override entry lived forever -- at city scale (millions of
  // short-lived sessions per day) an unbounded leak. The sweep must now
  // shrink the map in lockstep with the sessions it evicts.
  FleetFixture fx;
  sim::VirtualClock clock;
  shard::RouterConfig cfg = fleet_cfg(3);
  cfg.server.now_us = clock.now_fn();
  cfg.server.idle_ttl_s = 10.0;
  shard::ShardRouter router(cfg, fx.factory(), nullptr);

  constexpr std::uint64_t kSessions = 24;
  for (std::uint64_t sid = 1; sid <= kSessions; ++sid) {
    get_reply(router, hello_frame(sid, {2, 2}, 0.0));
  }
  EXPECT_EQ(router.live_sessions(), kSessions);
  EXPECT_EQ(router.override_count(), kSessions);

  // A polite goodbye erases its override immediately (the old path).
  svc::Frame bye;
  bye.type = svc::FrameType::kBye;
  bye.session_id = 1;
  get_reply(router, svc::encode_frame(bye));
  EXPECT_EQ(router.override_count(), kSessions - 1);

  // Everyone else goes idle past the TTL; the sweep evicts them and the
  // chained hook must erase every override along the way.
  clock.advance_s(11.0);
  std::size_t evicted = 0;
  for (std::size_t k = 0; k < router.shard_count(); ++k) {
    evicted += router.server(k).evict_idle();
  }
  EXPECT_EQ(evicted, kSessions - 1);
  EXPECT_EQ(router.live_sessions(), 0u);
  EXPECT_EQ(router.override_count(), 0u);

  // Churn proof: repeat arrivals + sweeps and the map stays bounded by
  // the live population instead of growing with the historical one.
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t sid = 100 + 50 * round; sid < 110 + 50 * round;
         ++sid) {
      get_reply(router, hello_frame(sid, {2, 2}, 0.0));
    }
    EXPECT_EQ(router.override_count(), 10u);
    clock.advance_s(11.0);
    for (std::size_t k = 0; k < router.shard_count(); ++k) {
      router.server(k).evict_idle();
    }
    EXPECT_EQ(router.override_count(), 0u);
  }
}

}  // namespace
}  // namespace uniloc
