// Durable delta-checkpoint suite: wave codec, chain collapse, torn-write
// fault injection, the async group committer, and the quantized particle
// codec (snapshot version 2).
//
// The load-bearing claims pinned here:
//   * a chain (keyframe + deltas of dirty sessions only) collapses to
//     the exact full snapshot -- a server restored through the chain
//     re-snapshots bit-identically and serves the same continuation;
//   * damage anywhere in the chain -- corrupt, truncated or missing
//     middle delta, a crash between any two steps of the publish
//     sequence -- fails LOUDLY (non-zero reject count) and falls back to
//     the longest valid prefix, never interleaving stale and fresh
//     state;
//   * the group committer batches publishes into one directory fsync,
//     reports backpressure without consuming the request, and demotes a
//     whole batch when the directory sync fails;
//   * the quantized codec restores within its error budget and is
//     requantization-exact: restore-then-resnapshot is byte-stable, so
//     chains may mix quantized keyframes and deltas indefinitely.
//
// scripts/check.sh runs this suite under ASan+UBSan (label `delta`) as
// the decoder-fuzz gate.
#include <gtest/gtest.h>

#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <numbers>
#include <random>
#include <string>
#include <vector>

#include "core/runner.h"
#include "core/trainer.h"
#include "filter/particle_filter.h"
#include "geo/bbox.h"
#include "offload/bytes.h"
#include "sim/builders.h"
#include "sim/virtual_clock.h"
#include "svc/checkpoint.h"
#include "svc/committer.h"
#include "svc/delta.h"
#include "svc/epoch_codec.h"
#include "svc/fsio.h"
#include "svc/server.h"
#include "svc/wire.h"
#include "shard/migrate.h"
#include "testing_util.h"

namespace uniloc {
namespace {

const core::TrainedModels& test_models() {
  return testing_util::standard_models(100);
}

const core::Deployment& campus_deployment() {
  static const core::Deployment d = core::make_deployment(
      sim::campus(42), core::DeploymentOptions{.seed = 42});
  return d;
}

svc::UnilocFactory factory_for(const core::Deployment& d) {
  return [&d](std::uint64_t sid) {
    return std::make_unique<core::Uniloc>(core::make_uniloc(
        d, test_models(), {}, false, /*seed=*/7 + sid));
  };
}

std::vector<std::uint8_t> hello_frame(std::uint64_t sid, geo::Vec2 start,
                                      double heading) {
  svc::Frame f;
  f.type = svc::FrameType::kHello;
  f.session_id = sid;
  f.payload = svc::encode_hello({start, heading});
  return svc::encode_frame(f);
}

std::vector<std::uint8_t> epoch_frame(std::uint64_t sid) {
  svc::Frame f;
  f.type = svc::FrameType::kEpoch;
  f.session_id = sid;
  f.payload = svc::encode_epoch({}, sim::SensorFrame{});
  return svc::encode_frame(f);
}

std::unique_ptr<svc::LocalizationServer> warm_server(
    svc::ServerConfig cfg = {}, std::size_t sessions = 2) {
  auto server = std::make_unique<svc::LocalizationServer>(
      std::move(cfg), factory_for(campus_deployment()), nullptr);
  for (std::uint64_t sid = 1; sid <= sessions; ++sid) {
    server->submit(hello_frame(sid, {1.0, 2.0}, 0.3)).get();
    for (int e = 0; e < 3; ++e) server->submit(epoch_frame(sid)).get();
  }
  return server;
}

/// Temp directory that cleans up after itself.
struct TempDir {
  std::string path;
  explicit TempDir(const std::string& name)
      : path("/tmp/uniloc_" + name + "_test") {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

// ------------------------------------------------------------- wave codec

TEST(WaveCodec, BuildDecodeRoundTrip) {
  svc::WaveHeader h;
  h.kind = svc::kWaveDelta;
  h.payload_version = svc::kSnapshotVersion;
  h.seq = 9;
  h.parent_seq = 8;
  h.accepted_since_scan = 5;
  svc::WaveBuilder b(h, {3, 7, 11});
  offload::ByteWriter& w = b.begin_session(7, 1000, 4);
  w.put_u32(0xDEADBEEF);
  b.end_session();
  const std::vector<std::uint8_t> bytes = b.finish();

  svc::WaveView v;
  ASSERT_TRUE(svc::decode_wave(bytes, v));
  EXPECT_EQ(v.header.kind, svc::kWaveDelta);
  EXPECT_EQ(v.header.seq, 9u);
  EXPECT_EQ(v.header.parent_seq, 8u);
  EXPECT_EQ(v.header.accepted_since_scan, 5u);
  EXPECT_EQ(v.members, (std::vector<std::uint64_t>{3, 7, 11}));
  ASSERT_EQ(v.records.size(), 1u);
  EXPECT_EQ(v.records[0].h.id, 7u);
  EXPECT_EQ(v.records[0].h.last_active_us, 1000u);
  EXPECT_EQ(v.records[0].h.epochs_served, 4u);
  EXPECT_EQ(v.records[0].h.payload_len, 4u);
}

TEST(WaveCodec, RejectsStructuralDamage) {
  svc::WaveHeader h;
  h.kind = svc::kWaveKeyframe;
  h.seq = 1;
  svc::WaveBuilder b(h, {5});
  b.begin_session(5, 0, 0).put_u8(1);
  b.end_session();
  const std::vector<std::uint8_t> good = b.finish();
  svc::WaveView v;
  ASSERT_TRUE(svc::decode_wave(good, v));

  // Any flipped bit breaks the CRC.
  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    std::vector<std::uint8_t> bad = good;
    bad[byte] ^= 0x01;
    EXPECT_FALSE(svc::decode_wave(bad, v)) << "byte " << byte;
  }
  // Every truncation is rejected.
  for (std::size_t n = 0; n < good.size(); ++n) {
    EXPECT_FALSE(svc::decode_wave(
        std::vector<std::uint8_t>(good.begin(), good.begin() + n), v))
        << "truncated to " << n;
  }
  EXPECT_FALSE(svc::decode_wave({}, v));
}

TEST(WaveCodec, RejectsInconsistentHeaders) {
  // Consistent CRC but hostile structure: rebuild whole waves.
  const auto build = [](std::uint8_t kind, std::uint64_t seq,
                        std::uint64_t parent,
                        std::vector<std::uint64_t> members,
                        std::vector<std::uint64_t> record_ids) {
    svc::WaveHeader h;
    h.kind = kind;
    h.seq = seq;
    h.parent_seq = parent;
    svc::WaveBuilder b(h, members);
    for (const std::uint64_t id : record_ids) {
      b.begin_session(id, 0, 0).put_u8(9);
      b.end_session();
    }
    return b.finish();
  };
  svc::WaveView v;
  // seq 0 is reserved.
  EXPECT_FALSE(svc::decode_wave(build(svc::kWaveKeyframe, 0, 0, {1}, {1}), v));
  // A keyframe must have parent 0.
  EXPECT_FALSE(svc::decode_wave(build(svc::kWaveKeyframe, 5, 4, {1}, {1}), v));
  // A delta's parent must precede it.
  EXPECT_FALSE(svc::decode_wave(build(svc::kWaveDelta, 5, 5, {1}, {1}), v));
  // A keyframe must carry every member's record.
  EXPECT_FALSE(
      svc::decode_wave(build(svc::kWaveKeyframe, 5, 0, {1, 2}, {1}), v));
  // A record outside the membership would resurrect a departed session.
  EXPECT_FALSE(svc::decode_wave(build(svc::kWaveDelta, 5, 4, {1}, {2}), v));
  // All valid shapes still pass.
  EXPECT_TRUE(svc::decode_wave(build(svc::kWaveDelta, 5, 4, {1, 2}, {2}), v));
}

TEST(WaveCodec, FuzzedBuffersNeverCrashTheDecoder) {
  svc::WaveHeader h;
  h.kind = svc::kWaveKeyframe;
  h.seq = 3;
  svc::WaveBuilder b(h, {1, 2});
  for (const std::uint64_t id : {1ull, 2ull}) {
    offload::ByteWriter& w = b.begin_session(id, 77, 8);
    for (int i = 0; i < 40; ++i) w.put_u8(static_cast<std::uint8_t>(i));
    b.end_session();
  }
  const std::vector<std::uint8_t> good = b.finish();

  std::mt19937_64 rng(11);
  svc::WaveView v;
  for (int trial = 0; trial < 4000; ++trial) {
    std::vector<std::uint8_t> fuzzed;
    if (trial % 2 == 0) {
      // Mutations of a valid wave (1-4 byte edits).
      fuzzed = good;
      const int edits = 1 + static_cast<int>(rng() % 4);
      for (int e = 0; e < edits; ++e) {
        fuzzed[rng() % fuzzed.size()] = static_cast<std::uint8_t>(rng());
      }
    } else {
      // Arbitrary garbage of arbitrary length.
      fuzzed.resize(rng() % 200);
      for (std::uint8_t& byte : fuzzed) {
        byte = static_cast<std::uint8_t>(rng());
      }
    }
    svc::decode_wave(fuzzed, v);  // surviving (no crash/UB) is the assert
  }
  ASSERT_TRUE(svc::decode_wave(good, v));
}

// ---------------------------------------------------------- chain collapse

/// A chain built from a live server: keyframe at seq 1, then `deltas`
/// delta waves with one extra epoch of traffic (session 1 only) before
/// each, so deltas genuinely carry a dirty subset.
struct LiveChain {
  std::unique_ptr<svc::LocalizationServer> server;
  std::vector<std::vector<std::uint8_t>> waves;
};

LiveChain build_live_chain(std::size_t deltas) {
  LiveChain c;
  c.server = warm_server();
  c.waves.push_back(c.server->snapshot_wave(/*keyframe=*/true));
  for (std::size_t i = 0; i < deltas; ++i) {
    c.server->submit(epoch_frame(1)).get();
    c.waves.push_back(c.server->snapshot_wave(/*keyframe=*/false));
  }
  return c;
}

TEST(ChainCollapse, DeltaChainRestoresBitIdentically) {
  LiveChain c = build_live_chain(3);

  // Deltas carry only the dirty session (2 never moved after the
  // keyframe), so the chain is genuinely incremental.
  svc::WaveView v;
  ASSERT_TRUE(svc::decode_wave(c.waves.back(), v));
  EXPECT_EQ(v.members.size(), 2u);
  ASSERT_EQ(v.records.size(), 1u);
  EXPECT_EQ(v.records[0].h.id, 1u);

  const svc::ChainCollapse collapsed = svc::collapse_chain(c.waves);
  ASSERT_TRUE(collapsed.ok);
  EXPECT_EQ(collapsed.deltas_applied, 3u);
  EXPECT_EQ(collapsed.waves_rejected, 0u);
  EXPECT_EQ(collapsed.seq, 4u);

  svc::LocalizationServer b(svc::ServerConfig{},
                            factory_for(campus_deployment()), nullptr);
  ASSERT_TRUE(b.restore(collapsed.snapshot));
  // The collapsed state IS the live state: both servers re-snapshot to
  // the same bytes and serve the same continuation.
  EXPECT_EQ(b.snapshot(), c.server->snapshot());
  for (std::uint64_t sid : {1ull, 2ull}) {
    for (int e = 0; e < 3; ++e) {
      EXPECT_EQ(b.submit(epoch_frame(sid)).get(),
                c.server->submit(epoch_frame(sid)).get())
          << "session " << sid << " epoch " << e;
    }
  }
}

TEST(ChainCollapse, MembershipPrunesDepartedSessions) {
  std::unique_ptr<svc::LocalizationServer> server = warm_server();
  std::vector<std::vector<std::uint8_t>> waves;
  waves.push_back(server->snapshot_wave(true));
  // Session 2 says bye; the next delta's membership drops it.
  svc::Frame bye;
  bye.type = svc::FrameType::kBye;
  bye.session_id = 2;
  server->submit(svc::encode_frame(bye)).get();
  server->submit(epoch_frame(1)).get();
  waves.push_back(server->snapshot_wave(false));

  const svc::ChainCollapse collapsed = svc::collapse_chain(waves);
  ASSERT_TRUE(collapsed.ok);
  svc::LocalizationServer b(svc::ServerConfig{},
                            factory_for(campus_deployment()), nullptr);
  ASSERT_TRUE(b.restore(collapsed.snapshot));
  EXPECT_EQ(b.live_sessions(), 1u);
  EXPECT_EQ(b.snapshot(), server->snapshot());
}

TEST(ChainCollapse, CorruptMiddleDeltaCutsTheChainLoudly) {
  LiveChain c = build_live_chain(3);
  const svc::ChainCollapse full = svc::collapse_chain(c.waves);
  ASSERT_TRUE(full.ok);

  // Corrupt the middle delta (waves[2]): collapse must stop at waves[1]
  // and report BOTH the corrupt wave and the now-unlinked tail.
  auto corrupted = c.waves;
  corrupted[2][corrupted[2].size() / 2] ^= 0xFF;
  const svc::ChainCollapse cut = svc::collapse_chain(corrupted);
  ASSERT_TRUE(cut.ok);
  EXPECT_EQ(cut.deltas_applied, 1u);
  EXPECT_EQ(cut.waves_rejected, 2u);
  EXPECT_EQ(cut.seq, 2u);
  // The fallback state is the honest prefix, not an interleaving.
  const svc::ChainCollapse prefix = svc::collapse_chain(
      {c.waves.begin(), c.waves.begin() + 2});
  EXPECT_EQ(cut.snapshot, prefix.snapshot);
}

TEST(ChainCollapse, TruncatedMiddleDeltaCutsTheChainLoudly) {
  LiveChain c = build_live_chain(2);
  auto torn = c.waves;
  torn[1].resize(torn[1].size() / 2);  // torn write of the first delta
  const svc::ChainCollapse cut = svc::collapse_chain(torn);
  ASSERT_TRUE(cut.ok);
  EXPECT_EQ(cut.deltas_applied, 0u);
  EXPECT_EQ(cut.waves_rejected, 2u);
  EXPECT_EQ(cut.seq, 1u);  // back to the keyframe
}

TEST(ChainCollapse, MissingMiddleDeltaBreaksTheParentLink) {
  LiveChain c = build_live_chain(3);
  // Drop waves[2] entirely (the file vanished): waves[3]'s parent no
  // longer matches, so it must NOT be applied on top of waves[1].
  std::vector<std::vector<std::uint8_t>> gap = {c.waves[0], c.waves[1],
                                                c.waves[3]};
  const svc::ChainCollapse cut = svc::collapse_chain(gap);
  ASSERT_TRUE(cut.ok);
  EXPECT_EQ(cut.deltas_applied, 1u);
  EXPECT_EQ(cut.waves_rejected, 1u);
  EXPECT_EQ(cut.seq, 2u);
}

TEST(ChainCollapse, NoKeyframeMeansNoRestore) {
  LiveChain c = build_live_chain(2);
  const svc::ChainCollapse cut = svc::collapse_chain(
      {c.waves.begin() + 1, c.waves.end()});  // deltas only
  EXPECT_FALSE(cut.ok);
  EXPECT_EQ(svc::collapse_chain({}).ok, false);
}

TEST(ChainCollapse, NewestValidKeyframeWins) {
  std::unique_ptr<svc::LocalizationServer> server = warm_server();
  std::vector<std::vector<std::uint8_t>> waves;
  waves.push_back(server->snapshot_wave(true));
  server->submit(epoch_frame(1)).get();
  waves.push_back(server->snapshot_wave(false));
  server->submit(epoch_frame(2)).get();
  waves.push_back(server->snapshot_wave(true));  // re-anchor
  const svc::ChainCollapse collapsed = svc::collapse_chain(waves);
  ASSERT_TRUE(collapsed.ok);
  EXPECT_EQ(collapsed.seq, 3u);
  EXPECT_EQ(collapsed.deltas_applied, 0u);
  svc::LocalizationServer b(svc::ServerConfig{},
                            factory_for(campus_deployment()), nullptr);
  ASSERT_TRUE(b.restore(collapsed.snapshot));
  EXPECT_EQ(b.snapshot(), server->snapshot());
}

// ----------------------------------------------- publish-sequence crashes

/// FsOps wrapper recording the primitive sequence and optionally failing
/// at one scripted step.
struct RecordingFs {
  std::vector<std::string> ops;
  std::string fail_at;  // "", "write", "rename", "fsync_dir"

  svc::FsOps make() {
    const svc::FsOps real = svc::FsOps::real();
    svc::FsOps fs;
    fs.write_bytes = [this, real](const std::string& path,
                                  const std::uint8_t* data, std::size_t n) {
      ops.push_back("write");
      if (fail_at == "write") return false;
      return real.write_bytes(path, data, n);
    };
    fs.rename_file = [this, real](const std::string& from,
                                  const std::string& to) {
      ops.push_back("rename");
      if (fail_at == "rename") return false;
      return real.rename_file(from, to);
    };
    fs.fsync_dir = [this, real](const std::string& dir) {
      ops.push_back("fsync_dir");
      if (fail_at == "fsync_dir") return false;
      return real.fsync_dir(dir);
    };
    fs.remove_file = [this, real](const std::string& path) {
      ops.push_back("remove");
      return real.remove_file(path);
    };
    return fs;
  }
};

TEST(PublishSequence, DirectoryFsyncFollowsRenameRegression) {
  // The PR-5 write path renamed and returned: a crash after rename could
  // lose the directory entry. Pin the full ordered sequence.
  TempDir dir("fsio_order");
  RecordingFs rec;
  ASSERT_TRUE(svc::atomic_publish(rec.make(), dir.path, "ckpt.bin",
                                  {1, 2, 3}));
  ASSERT_EQ(rec.ops,
            (std::vector<std::string>{"write", "rename", "fsync_dir"}));
}

TEST(PublishSequence, CrashAtEveryStepLeavesARecoverableChain) {
  // Chain of keyframe + 1 delta on disk; publishing delta #2 dies at
  // each primitive in turn. Whatever survives on disk, load + collapse
  // must restore the newest DURABLE state and never a torn one.
  LiveChain c = build_live_chain(2);
  for (const std::string step : {"write", "rename", "fsync_dir"}) {
    TempDir dir("torn_" + step);
    ASSERT_TRUE(svc::write_wave_file(dir.path, 1, c.waves[0]));
    ASSERT_TRUE(svc::write_wave_file(dir.path, 2, c.waves[1]));
    RecordingFs rec;
    rec.fail_at = step;
    EXPECT_FALSE(svc::write_wave_file(dir.path, 3, c.waves[2], rec.make()))
        << step;
    if (step == "fsync_dir") {
      // The rename happened but its durability is unknown: model the
      // worst case (directory entry lost in the crash).
      std::filesystem::remove(dir.path + "/" + svc::wave_file_name(3));
    }
    const svc::ChainCollapse collapsed =
        svc::collapse_chain(svc::load_wave_files(dir.path));
    ASSERT_TRUE(collapsed.ok) << step;
    EXPECT_EQ(collapsed.seq, 2u) << step;
    EXPECT_EQ(collapsed.waves_rejected, 0u) << step;
    svc::LocalizationServer b(svc::ServerConfig{},
                              factory_for(campus_deployment()), nullptr);
    EXPECT_TRUE(b.restore(collapsed.snapshot)) << step;
    // No half-written garbage lingers where a later scan would load it.
    for (const auto& entry :
         std::filesystem::directory_iterator(dir.path)) {
      EXPECT_NE(entry.path().extension(), ".bin.tmp") << step;
    }
  }
}

TEST(PublishSequence, TornFileOnDiskFallsBackToKeyframe) {
  LiveChain c = build_live_chain(1);
  TempDir dir("torn_disk");
  ASSERT_TRUE(svc::write_wave_file(dir.path, 1, c.waves[0]));
  std::vector<std::uint8_t> torn = c.waves[1];
  torn.resize(torn.size() - 7);
  ASSERT_TRUE(svc::write_wave_file(dir.path, 2, torn));
  const svc::ChainCollapse collapsed =
      svc::collapse_chain(svc::load_wave_files(dir.path));
  ASSERT_TRUE(collapsed.ok);
  EXPECT_EQ(collapsed.seq, 1u);
  EXPECT_EQ(collapsed.waves_rejected, 1u);  // loud, not silent
}

// ----------------------------------------------------- server chain e2e

TEST(ServerChain, PeriodicWavesRestoreTheExactServerAcrossRestart) {
  TempDir dir("server_chain");
  sim::VirtualClock clock;
  svc::ServerConfig cfg;
  cfg.now_us = clock.now_fn();
  cfg.checkpoint_period_us = 1;  // every submit round checks the clock
  cfg.checkpoint_dir = dir.path;
  cfg.keyframe_interval = 4;
  svc::LocalizationServer a(cfg, factory_for(campus_deployment()), nullptr);
  for (std::uint64_t sid : {1ull, 2ull, 3ull}) {
    a.submit(hello_frame(sid, {1.0, 2.0}, 0.3)).get();
  }
  for (int e = 0; e < 10; ++e) {
    for (std::uint64_t sid : {1ull, 2ull, 3ull}) {
      a.submit(epoch_frame(sid)).get();
    }
    clock.advance_us(1'000'000);
  }
  const svc::LocalizationServer::CheckpointStats st = a.checkpoint_stats();
  EXPECT_GT(st.waves, 4u);
  EXPECT_GT(st.keyframes, 0u);
  EXPECT_GT(st.delta_records, 0u);
  EXPECT_EQ(st.publish_failures, 0u);

  // Clean shutdown: flush the epochs the periodic path hasn't seen yet
  // (it fires on the NEXT submit, and there is none after the last round).
  a.checkpoint_wave_now();

  // "Restart": a fresh process restores from the directory alone.
  svc::ServerConfig bcfg;
  bcfg.checkpoint_dir = dir.path;
  svc::LocalizationServer b(bcfg, factory_for(campus_deployment()), nullptr);
  const svc::LocalizationServer::ChainRestoreResult r = b.restore_chain();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.waves_rejected, 0u);
  EXPECT_EQ(b.live_sessions(), 3u);
  EXPECT_EQ(b.snapshot(), a.snapshot());
  for (std::uint64_t sid : {1ull, 2ull, 3ull}) {
    EXPECT_EQ(b.submit(epoch_frame(sid)).get(),
              a.submit(epoch_frame(sid)).get());
  }
}

TEST(ServerChain, KeyframePrunesTheSupersededPrefix) {
  TempDir dir("server_prune");
  sim::VirtualClock clock;
  svc::ServerConfig cfg;
  cfg.now_us = clock.now_fn();
  cfg.checkpoint_period_us = 1;
  cfg.checkpoint_dir = dir.path;
  cfg.keyframe_interval = 3;
  svc::LocalizationServer a(cfg, factory_for(campus_deployment()), nullptr);
  a.submit(hello_frame(1, {1.0, 2.0}, 0.3)).get();
  for (int e = 0; e < 12; ++e) {
    a.submit(epoch_frame(1)).get();
    clock.advance_us(1'000'000);
  }
  // Only the newest keyframe and its deltas remain on disk.
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    (void)entry;
    ++files;
  }
  EXPECT_LE(files, cfg.keyframe_interval);
  EXPECT_GE(files, 1u);
  const svc::ChainCollapse collapsed =
      svc::collapse_chain(svc::load_wave_files(dir.path));
  ASSERT_TRUE(collapsed.ok);
  EXPECT_EQ(collapsed.waves_rejected, 0u);
}

TEST(ServerChain, GroupCommitterPathMatchesSynchronousPath) {
  TempDir dir("server_gc");
  sim::VirtualClock clock;
  svc::GroupCommitter committer;
  svc::ServerConfig cfg;
  cfg.now_us = clock.now_fn();
  cfg.checkpoint_period_us = 1;
  cfg.checkpoint_dir = dir.path;
  cfg.keyframe_interval = 4;
  cfg.committer = &committer;
  {
    svc::LocalizationServer a(cfg, factory_for(campus_deployment()),
                              nullptr);
    a.submit(hello_frame(1, {1.0, 2.0}, 0.3)).get();
    for (int e = 0; e < 8; ++e) {
      a.submit(epoch_frame(1)).get();
      clock.advance_us(1'000'000);
    }
    a.checkpoint_wave_now();  // flush the tail epoch onto the chain
    committer.flush();
    const svc::GroupCommitter::Stats st = committer.stats();
    EXPECT_GT(st.committed, 0u);
    EXPECT_EQ(st.failed, 0u);

    svc::ServerConfig bcfg;
    bcfg.checkpoint_dir = dir.path;
    svc::LocalizationServer b(bcfg, factory_for(campus_deployment()),
                              nullptr);
    ASSERT_TRUE(b.restore_chain().ok);
    EXPECT_EQ(b.snapshot(), a.snapshot());
  }
}

// --------------------------------------------------------- group committer

TEST(GroupCommitter, BatchesShareOneDirectoryFsync) {
  TempDir dir("gc_batch");
  std::mutex mu;
  std::condition_variable cv;
  bool first_started = false;
  bool release_first = false;
  int fsyncs = 0;

  const svc::FsOps real = svc::FsOps::real();
  svc::GroupCommitter::Options opts;
  opts.ops.write_bytes = [&](const std::string& path,
                             const std::uint8_t* data, std::size_t n) {
    {
      std::unique_lock<std::mutex> lock(mu);
      if (!first_started) {
        first_started = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release_first; });
      }
    }
    return real.write_bytes(path, data, n);
  };
  opts.ops.fsync_dir = [&](const std::string& d) {
    {
      std::lock_guard<std::mutex> lock(mu);
      ++fsyncs;
    }
    return real.fsync_dir(d);
  };

  svc::GroupCommitter gc(opts);
  const auto req = [&](const std::string& name) {
    svc::GroupCommitter::Request r;
    r.dir = dir.path;
    r.name = name;
    r.bytes = {1, 2, 3};
    return r;
  };
  ASSERT_TRUE(gc.enqueue(req("a.bin")));
  {
    // Wait until the committer is mid-batch on "a", then pile up four
    // more requests behind it.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return first_started; });
  }
  for (const std::string name : {"b.bin", "c.bin", "d.bin", "e.bin"}) {
    ASSERT_TRUE(gc.enqueue(req(name)));
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    release_first = true;
  }
  cv.notify_all();
  gc.flush();

  const svc::GroupCommitter::Stats st = gc.stats();
  EXPECT_EQ(st.committed, 5u);
  EXPECT_EQ(st.batches, 2u);     // "a" alone, then the parked four
  EXPECT_EQ(st.max_batch, 4u);
  EXPECT_EQ(fsyncs, 2);          // ONE dir fsync per batch, not per file
  for (const std::string name : {"a.bin", "b.bin", "c.bin", "d.bin",
                                 "e.bin"}) {
    EXPECT_TRUE(std::filesystem::exists(dir.path + "/" + name)) << name;
  }
}

TEST(GroupCommitter, BackpressureLeavesTheRequestIntact) {
  TempDir dir("gc_bp");
  std::mutex mu;
  std::condition_variable cv;
  bool started = false;
  bool release = false;

  const svc::FsOps real = svc::FsOps::real();
  svc::GroupCommitter::Options opts;
  opts.queue_capacity = 1;
  opts.ops.write_bytes = [&](const std::string& path,
                             const std::uint8_t* data, std::size_t n) {
    {
      std::unique_lock<std::mutex> lock(mu);
      started = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    }
    return real.write_bytes(path, data, n);
  };

  svc::GroupCommitter gc(opts);
  svc::GroupCommitter::Request a;
  a.dir = dir.path;
  a.name = "a.bin";
  a.bytes = {1};
  ASSERT_TRUE(gc.enqueue(std::move(a)));
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return started; });
  }
  svc::GroupCommitter::Request b;
  b.dir = dir.path;
  b.name = "b.bin";
  b.bytes = {2};
  ASSERT_TRUE(gc.enqueue(std::move(b)));  // fills the queue (capacity 1)

  svc::GroupCommitter::Request c;
  c.dir = dir.path;
  c.name = "c.bin";
  c.bytes = {3, 4, 5};
  ASSERT_FALSE(gc.enqueue(std::move(c)));
  // The refused request is untouched: the caller can fall back to a
  // synchronous publish without re-serializing the wave.
  EXPECT_EQ(c.name, "c.bin");
  EXPECT_EQ(c.bytes, (std::vector<std::uint8_t>{3, 4, 5}));
  ASSERT_TRUE(svc::atomic_publish(svc::FsOps{}, c.dir, c.name, c.bytes));

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  gc.flush();
  const svc::GroupCommitter::Stats st = gc.stats();
  EXPECT_EQ(st.committed, 2u);
  EXPECT_EQ(st.rejected, 1u);
  for (const std::string name : {"a.bin", "b.bin", "c.bin"}) {
    EXPECT_TRUE(std::filesystem::exists(dir.path + "/" + name)) << name;
  }
}

TEST(GroupCommitter, FailedDirectorySyncDemotesTheWholeBatch) {
  TempDir dir("gc_demote");
  svc::GroupCommitter::Options opts;
  opts.ops.fsync_dir = [](const std::string&) { return false; };
  std::mutex mu;
  std::vector<bool> outcomes;
  {
    svc::GroupCommitter gc(opts);
    for (int i = 0; i < 3; ++i) {
      svc::GroupCommitter::Request r;
      r.dir = dir.path;
      r.name = "f" + std::to_string(i) + ".bin";
      r.bytes = {9};
      r.done = [&mu, &outcomes](bool ok) {
        std::lock_guard<std::mutex> lock(mu);
        outcomes.push_back(ok);
      };
      ASSERT_TRUE(gc.enqueue(std::move(r)));
    }
    gc.flush();
  }
  ASSERT_EQ(outcomes.size(), 3u);
  for (const bool ok : outcomes) EXPECT_FALSE(ok);
}

TEST(GroupCommitter, DestructorDrainsEverythingAccepted) {
  TempDir dir("gc_drain");
  {
    svc::GroupCommitter gc;
    for (int i = 0; i < 16; ++i) {
      svc::GroupCommitter::Request r;
      r.dir = dir.path;
      r.name = "w" + std::to_string(i) + ".bin";
      r.bytes = {static_cast<std::uint8_t>(i)};
      ASSERT_TRUE(gc.enqueue(std::move(r)));
    }
  }  // destructor joins after draining
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(std::filesystem::exists(dir.path + "/w" + std::to_string(i) +
                                        ".bin"))
        << i;
  }
}

// ------------------------------------------------------- quantized codec

filter::ParticleFilter warm_filter(std::uint64_t seed) {
  filter::ParticleFilter f(128, seed);
  f.init({40.0, 60.0}, 0.7, 0.8, 6.0, 0.4);
  for (int i = 0; i < 5; ++i) f.predict(0.7, 0.1, 0.12, 0.035);
  f.resample(1.0);
  f.predict(0.7, -0.2, 0.12, 0.035);  // leave non-uniform weights behind
  return f;
}

TEST(QuantizedCodec, RoundTripStaysWithinTheErrorBudget) {
  filter::ParticleFilter a = warm_filter(5);
  geo::BBox venue;
  venue.extend({0.0, 0.0});
  venue.extend({100.0, 100.0});

  offload::ByteWriter w;
  a.snapshot_into_quantized(w, venue);
  const std::vector<std::uint8_t> bytes = w.take();
  // ~10 bytes per particle vs ~40 lossless: the 4x comes from here.
  EXPECT_LT(bytes.size(), 128 * 12 + 3000);

  filter::ParticleFilter b(128, 999);
  offload::ByteReader r(bytes.data(), bytes.size());
  ASSERT_TRUE(b.restore_from_quantized(r));
  EXPECT_EQ(r.remaining(), 0u);

  // Grid: venue inflated by 64 m -> 228 m range -> half-step ~1.75 mm.
  const double pos_step = 228.0 / 65536.0;
  const double heading_step = 2.0 * std::numbers::pi / 65536.0;
  double w_max = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    w_max = std::max(w_max, a.particle(i).weight);
  }
  ASSERT_GT(w_max, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const filter::Particle pa = a.particle(i);
    const filter::Particle pb = b.particle(i);
    EXPECT_NEAR(pa.pos.x, pb.pos.x, pos_step) << i;
    EXPECT_NEAR(pa.pos.y, pb.pos.y, pos_step) << i;
    EXPECT_NEAR(pa.heading, pb.heading, heading_step) << i;
    EXPECT_NEAR(pa.weight / w_max, pb.weight / w_max, 1.0 / 65535.0) << i;
  }
}

TEST(QuantizedCodec, RequantizationIsByteStable) {
  filter::ParticleFilter a = warm_filter(6);
  geo::BBox venue;
  venue.extend({0.0, 0.0});
  venue.extend({100.0, 100.0});

  offload::ByteWriter w1;
  a.snapshot_into_quantized(w1, venue);
  const std::vector<std::uint8_t> first = w1.take();

  filter::ParticleFilter b(128, 999);
  offload::ByteReader r(first.data(), first.size());
  ASSERT_TRUE(b.restore_from_quantized(r));

  // Quantize(dequantize(q)) == q for every field, so a chain of
  // quantized waves never drifts: generation 2 equals generation 1.
  offload::ByteWriter w2;
  b.snapshot_into_quantized(w2, venue);
  EXPECT_EQ(w2.take(), first);
}

TEST(QuantizedCodec, MaxWeightParticleRestoresExactly) {
  filter::ParticleFilter a = warm_filter(7);
  double w_max = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    w_max = std::max(w_max, a.particle(i).weight);
  }
  geo::BBox venue;
  venue.extend({0.0, 0.0});
  venue.extend({100.0, 100.0});
  offload::ByteWriter w;
  a.snapshot_into_quantized(w, venue);
  const std::vector<std::uint8_t> bytes = w.take();
  filter::ParticleFilter b(128, 999);
  offload::ByteReader r(bytes.data(), bytes.size());
  ASSERT_TRUE(b.restore_from_quantized(r));
  double restored_max = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    restored_max = std::max(restored_max, b.particle(i).weight);
  }
  // q = 65535 -> ratio exactly 1.0 -> w_max bit-exact; the cloud can
  // never come back all-zero.
  EXPECT_EQ(restored_max, w_max);
}

TEST(QuantizedCodec, HostileInputIsRejectedWithoutTouchingState) {
  filter::ParticleFilter a = warm_filter(8);
  geo::BBox venue;
  venue.extend({0.0, 0.0});
  venue.extend({50.0, 50.0});
  offload::ByteWriter w;
  a.snapshot_into_quantized(w, venue);
  const std::vector<std::uint8_t> good = w.take();

  filter::ParticleFilter b(128, 999);
  b.init({9.0, 9.0}, 1.0, 0.5, 0.05, 0.05);
  const double before_x = b.particle(0).pos.x;

  // Every truncation fails cleanly.
  for (std::size_t n = 0; n < good.size(); n += 3) {
    offload::ByteReader r(good.data(), n);
    EXPECT_FALSE(b.restore_from_quantized(r)) << "truncated to " << n;
  }
  // Non-finite grid parameters are hostile (they would denormalize every
  // particle): x_lo lives right after the u32 count.
  std::vector<std::uint8_t> bad = good;
  for (int i = 0; i < 8; ++i) bad[4 + i] = 0xFF;  // x_lo = NaN pattern
  {
    offload::ByteReader r(bad.data(), bad.size());
    EXPECT_FALSE(b.restore_from_quantized(r));
  }
  // Count mismatch (filter has 128 particles, stream says 127).
  bad = good;
  bad[0] = 127;
  {
    offload::ByteReader r(bad.data(), bad.size());
    EXPECT_FALSE(b.restore_from_quantized(r));
  }
  EXPECT_EQ(b.particle(0).pos.x, before_x);  // rejected without commit

  // Bit-flip fuzz: never crash, state only replaced on full success.
  std::mt19937_64 rng(13);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> fuzzed = good;
    fuzzed[rng() % fuzzed.size()] ^=
        static_cast<std::uint8_t>(1u << (rng() % 8));
    offload::ByteReader r(fuzzed.data(), fuzzed.size());
    b.restore_from_quantized(r);  // surviving is the assert
  }
  offload::ByteReader r(good.data(), good.size());
  ASSERT_TRUE(b.restore_from_quantized(r));
}

// ------------------------------------------------ quantized server chains

TEST(QuantizedChain, ServerWaveIsSmallerAndRequantizationStable) {
  svc::ServerConfig qcfg;
  qcfg.snapshot_quantize = true;
  std::unique_ptr<svc::LocalizationServer> a = warm_server(qcfg);
  const std::vector<std::uint8_t> wave = a->snapshot_wave(true);
  svc::WaveView v;
  ASSERT_TRUE(svc::decode_wave(wave, v));
  EXPECT_EQ(v.header.payload_version, svc::kSnapshotVersionQuantized);

  // The quantized wave must be dramatically smaller than the lossless
  // one (the acceptance criterion's 4x lives mostly in the particle
  // arrays; the RNG engines stay exact and bound the ratio below 4x at
  // this session size -- the checkpoint bench reports the array-level
  // number).
  std::unique_ptr<svc::LocalizationServer> plain = warm_server();
  const std::vector<std::uint8_t> lossless = plain->snapshot_wave(true);
  EXPECT_LT(wave.size(), lossless.size() * 2 / 3);

  // Restore from the quantized chain, then re-wave: byte-stable.
  const svc::ChainCollapse collapsed = svc::collapse_chain({wave});
  ASSERT_TRUE(collapsed.ok);
  svc::LocalizationServer b(qcfg, factory_for(campus_deployment()), nullptr);
  ASSERT_TRUE(b.restore(collapsed.snapshot));
  EXPECT_EQ(b.live_sessions(), 2u);
  EXPECT_EQ(b.snapshot_wave(true), wave);
}

TEST(QuantizedChain, SplitSnapshotPreservesThePayloadVersion) {
  svc::ServerConfig qcfg;
  qcfg.snapshot_quantize = true;
  std::unique_ptr<svc::LocalizationServer> a = warm_server(qcfg);
  const svc::ChainCollapse collapsed =
      svc::collapse_chain({a->snapshot_wave(true)});
  ASSERT_TRUE(collapsed.ok);

  // Shard recovery from a quantized chain: split the v2 snapshot and
  // adopt every record -- each split payload must still say "v2" or the
  // adopter would parse fixed-point bytes as f64.
  const auto records = shard::split_snapshot_sessions(collapsed.snapshot);
  ASSERT_EQ(records.size(), 2u);
  svc::LocalizationServer b(svc::ServerConfig{},
                            factory_for(campus_deployment()), nullptr);
  for (const auto& [sid, payload] : records) {
    EXPECT_EQ(payload[4], svc::kSnapshotVersionQuantized) << sid;
    EXPECT_FALSE(b.adopt_session(payload, sid).has_value()) << sid;
  }
  EXPECT_EQ(b.live_sessions(), 2u);
}

}  // namespace
}  // namespace uniloc
