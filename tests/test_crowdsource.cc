#include "schemes/crowdsource.h"

#include <gtest/gtest.h>

#include "core/deployment.h"
#include "schemes/fingerprint_scheme.h"
#include "sim/walker.h"
#include "stats/rng.h"
#include "testing_util.h"

namespace uniloc::schemes {
namespace {

class CrowdsourceTest : public ::testing::Test {
 protected:
  CrowdsourceTest() : db_(*deployment_.wifi_db) {}

  const core::Deployment& deployment_ = testing_util::office_deployment();
  FingerprintDatabase db_;  // private working copy
};

TEST_F(CrowdsourceTest, RejectsLowConfidenceContributions) {
  FingerprintCrowdsourcer cs(&db_);
  const Fingerprint& fp = db_.fingerprints()[3];
  const std::vector<sim::ApReading> scan{{1, -60.0}};
  EXPECT_FALSE(cs.contribute(fp.pos, /*position_error_m=*/20.0, scan));
  EXPECT_EQ(cs.accepted(), 0u);
  EXPECT_EQ(cs.rejected(), 1u);
}

TEST_F(CrowdsourceTest, RejectsOffGridContributions) {
  FingerprintCrowdsourcer cs(&db_);
  const std::vector<sim::ApReading> scan{{1, -60.0}};
  EXPECT_FALSE(cs.contribute({500.0, 500.0}, 1.0, scan));
}

TEST_F(CrowdsourceTest, RejectsEmptyScan) {
  FingerprintCrowdsourcer cs(&db_);
  EXPECT_FALSE(cs.contribute(db_.fingerprints()[0].pos, 1.0, {}));
}

TEST_F(CrowdsourceTest, BlendsAcceptedReadings) {
  FingerprintCrowdsourcer::Options opts;
  opts.blend = 0.5;
  FingerprintCrowdsourcer cs(&db_, opts);
  const std::size_t idx = 5;
  const Fingerprint before = db_.fingerprints()[idx];
  const int ap_id = before.rssi.begin()->first;
  const double old_rssi = before.rssi.begin()->second;

  EXPECT_TRUE(cs.contribute(before.pos, 1.0, {{ap_id, old_rssi + 8.0}}));
  const double updated = db_.fingerprints()[idx].rssi.at(ap_id);
  EXPECT_NEAR(updated, old_rssi + 4.0, 1e-9);  // EMA with blend 0.5
  EXPECT_EQ(cs.contribution_counts()[idx], 1u);
}

TEST_F(CrowdsourceTest, CreatesEntryForNewTransmitter) {
  FingerprintCrowdsourcer cs(&db_);
  const std::size_t idx = 7;
  const geo::Vec2 pos = db_.fingerprints()[idx].pos;
  EXPECT_TRUE(cs.contribute(pos, 1.0, {{99999, -70.0}}));
  EXPECT_DOUBLE_EQ(db_.fingerprints()[idx].rssi.at(99999), -70.0);
}

TEST_F(CrowdsourceTest, MaintenanceTracksEnvironmentDrift) {
  // Apply a uniform +10 dB drift to the world; a maintained DB must match
  // drifted scans better than the stale one.
  FingerprintDatabase stale = db_;
  FingerprintCrowdsourcer cs(&db_);
  stats::Rng rng(3);

  auto drifted_scan = [&](geo::Vec2 pos) {
    stats::Rng scan_rng = rng.fork(17);
    std::vector<sim::ApReading> scan =
        deployment_.radio->wifi_scan(pos, scan_rng);
    for (sim::ApReading& r : scan) r.rssi_dbm += 10.0;
    return scan;
  };

  // Feed maintenance passes over every fingerprint position.
  for (int pass = 0; pass < 4; ++pass) {
    for (const Fingerprint& fp : db_.fingerprints()) {
      cs.contribute(fp.pos, 1.0, drifted_scan(fp.pos));
    }
  }
  EXPECT_GT(cs.accepted(), 100u);

  // Matching quality on fresh drifted scans.
  double stale_err = 0.0, maintained_err = 0.0;
  int n = 0;
  for (std::size_t i = 0; i < db_.size(); i += 5) {
    const geo::Vec2 pos = db_.fingerprints()[i].pos;
    const auto scan = drifted_scan(pos);
    const auto s = stale.k_nearest(scan, 1);
    const auto m = db_.k_nearest(scan, 1);
    ASSERT_FALSE(s.empty());
    ASSERT_FALSE(m.empty());
    stale_err += geo::distance(stale.fingerprints()[s[0].index].pos, pos);
    maintained_err += geo::distance(db_.fingerprints()[m[0].index].pos, pos);
    ++n;
  }
  EXPECT_LE(maintained_err / n, stale_err / n + 0.5);
}

TEST_F(CrowdsourceTest, GatingPreventsPoisoning) {
  // A flood of WRONG-position contributions with honest (large) error
  // estimates must leave the database untouched.
  FingerprintCrowdsourcer cs(&db_);
  const FingerprintDatabase before = db_;
  stats::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const geo::Vec2 wrong{rng.uniform(0.0, 56.0), rng.uniform(0.0, 20.0)};
    cs.contribute(wrong, /*position_error_m=*/30.0, {{1, -40.0}});
  }
  EXPECT_EQ(cs.accepted(), 0u);
  for (std::size_t i = 0; i < db_.size(); ++i) {
    EXPECT_EQ(db_.fingerprints()[i].rssi, before.fingerprints()[i].rssi);
  }
}

}  // namespace
}  // namespace uniloc::schemes
