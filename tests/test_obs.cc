// Telemetry subsystem: metrics registry semantics, histogram bucket
// edges, trace JSONL round-trip, and the null-object detach guarantees.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "core/runner.h"
#include "core/trainer.h"
#include "io/table.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/report.h"
#include "obs/slo.h"
#include "obs/span.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "testing_util.h"

namespace uniloc::obs {
namespace {

TEST(Counter, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddReset) {
  Gauge g;
  g.set(3.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 5.0});
  // Bucket i counts bounds[i-1] < v <= bounds[i]; overflow catches > 5.
  h.observe(1.0);   // bucket 0 (v <= 1)
  h.observe(0.5);   // bucket 0
  h.observe(1.001); // bucket 1
  h.observe(2.0);   // bucket 1 (edge is inclusive)
  h.observe(5.0);   // bucket 2
  h.observe(7.0);   // overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 2u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 7.0);
  EXPECT_NEAR(h.sum(), 16.501, 1e-9);
}

TEST(Histogram, ConstructorSortsBounds) {
  Histogram h({5.0, 1.0, 2.0});
  EXPECT_EQ(h.upper_bounds(), (std::vector<double>{1.0, 2.0, 5.0}));
}

TEST(Histogram, IgnoresNaN) {
  Histogram h({1.0});
  h.observe(std::nan(""));
  EXPECT_EQ(h.count(), 0u);
  h.observe(0.5);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, EmptyIsZeroed) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
}

TEST(Histogram, PercentilesClampedByExactMinMax) {
  Histogram h({1.0, 2.0, 5.0, 10.0});
  for (double v : {1.5, 2.5, 3.0, 4.0, 6.0}) h.observe(v);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.5);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 6.0);
  const double p50 = h.percentile(50.0);
  EXPECT_GE(p50, 1.5);
  EXPECT_LE(p50, 6.0);
  EXPECT_LE(h.percentile(25.0), h.percentile(75.0));
}

TEST(Histogram, OverflowOnlyPercentilesStayFinite) {
  // Every observation lands in the implicit overflow bucket; percentiles
  // must interpolate between the recorded min and max, never report +inf.
  Histogram h({1.0, 2.0, 5.0});
  for (double v : {10.0, 20.0, 30.0}) h.observe(v);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 30.0);
  for (double q : {25.0, 50.0, 75.0, 99.0}) {
    const double p = h.percentile(q);
    EXPECT_TRUE(std::isfinite(p)) << q;
    EXPECT_GE(p, 10.0) << q;
    EXPECT_LE(p, 30.0) << q;
  }
}

TEST(Histogram, ExplicitInfinityClampsToLastFiniteBound) {
  Histogram h({1.0, 2.0});
  h.observe(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 1u);
  for (double q : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(q), 2.0) << q;
  }
}

TEST(Histogram, SingleObservationIsEveryPercentile) {
  Histogram h({1.0, 2.0, 5.0});
  h.observe(3.0);
  for (double q : {0.0, 25.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(q), 3.0) << q;
  }
}

TEST(Histogram, MixedOverflowPercentileNeverExceedsMax) {
  Histogram h({1.0, 2.0, 5.0});
  for (double v : {0.5, 1.5, 3.0, 50.0, 80.0}) h.observe(v);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 80.0);
  const double p99 = h.percentile(99.0);
  EXPECT_TRUE(std::isfinite(p99));
  EXPECT_LE(p99, 80.0);
  EXPECT_LE(h.percentile(50.0), p99);
}

TEST(Counter, ConcurrentIncrementsAreExact) {
  // The svc.* instruments are written from pool workers concurrently.
  // Exactness, not just absence of crashes: a torn read-modify-write or
  // a lost CAS update would drop counts under this contention. Runs
  // under TSan via the `obs` label in scripts/check.sh.
  Counter c;
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c, &g] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        g.add(1.0);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) * kPerThread);
}

TEST(Gauge, ConcurrentAddAndSubCancelExactly) {
  // Occupancy-style gauge: every worker adds +1 on entry, -1 on exit.
  Gauge inflight;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&inflight] {
      for (int i = 0; i < kPerThread; ++i) {
        inflight.add(1.0);
        inflight.add(-1.0);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_DOUBLE_EQ(inflight.value(), 0.0);
}

TEST(Histogram, DefaultLatencyBoundsCoverMicrosecondToSecond) {
  const std::vector<double> b = Histogram::default_latency_bounds_us();
  ASSERT_FALSE(b.empty());
  EXPECT_DOUBLE_EQ(b.front(), 1.0);
  EXPECT_DOUBLE_EQ(b.back(), 1e6);
  EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
}

TEST(MetricsRegistry, SameNameReturnsSameInstrument) {
  MetricsRegistry r;
  EXPECT_TRUE(r.empty());
  Counter& a = r.counter("x");
  Counter& b = r.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_FALSE(r.empty());
  // Namespaces are separate: a gauge "x" is a different instrument.
  r.gauge("x").set(1.0);
  a.inc();
  EXPECT_EQ(r.counter("x").value(), 1u);
  EXPECT_DOUBLE_EQ(r.gauge("x").value(), 1.0);
}

TEST(MetricsRegistry, ResetZeroesButKeepsPointersValid) {
  MetricsRegistry r;
  Counter& c = r.counter("epochs");
  Histogram& h = r.histogram("lat", {1.0, 10.0});
  c.inc(5);
  h.observe(3.0);
  r.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  // The same objects are still registered and usable.
  c.inc();
  EXPECT_EQ(r.counter("epochs").value(), 1u);
  EXPECT_EQ(&r.histogram("lat"), &h);
  EXPECT_EQ(h.upper_bounds().size(), 2u);  // bounds survive the reset
}

TEST(MetricsRegistry, ToJsonIsWellFormedAndComplete) {
  MetricsRegistry r;
  r.counter("n").inc(3);
  r.gauge("temp").set(21.5);
  r.gauge("bad").set(std::nan(""));
  r.histogram("lat", {1.0, 2.0}).observe(1.5);
  const std::string j = r.to_json();
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"n\":3"), std::string::npos);
  EXPECT_NE(j.find("\"temp\":21.5"), std::string::npos);
  EXPECT_NE(j.find("\"bad\":null"), std::string::npos);
  EXPECT_NE(j.find("\"lat\""), std::string::npos);
  EXPECT_NE(j.find("\"buckets\""), std::string::npos);
  // Balanced braces/brackets (a cheap structural validity check).
  int depth = 0;
  for (char ch : j) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(MetricsRegistry, ToTableListsEveryInstrument) {
  MetricsRegistry r;
  r.counter("uniloc.epochs").inc(7);
  r.histogram("uniloc.update_us").observe(120.0);
  const std::string table = r.to_table().to_string();
  EXPECT_NE(table.find("uniloc.epochs"), std::string::npos);
  EXPECT_NE(table.find("uniloc.update_us"), std::string::npos);
}

TEST(ScopedTimer, ObservesWhenAttachedOnly) {
  Histogram h;
  {
    ScopedTimer t(&h);
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.max(), 0.0);
  {
    ScopedTimer detached(nullptr);  // must be a no-op, not a crash
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST(Json, DoublesSurviveWriteReadRoundTrip) {
  // The regression this pins: value(double) used "%.9g", which truncates
  // the mantissa -- strtod(write(v)) != v for most doubles.
  const double cases[] = {0.1,
                          1.0 / 3.0,
                          1.2345678901234567,
                          -2.5e-10,
                          1e-300,
                          1e+100,
                          5e-324,  // smallest denormal
                          1.7976931348623157e+308,
                          -0.0,
                          123456789.123456789};
  for (const double v : cases) {
    JsonWriter w;
    w.value(v);
    const double back = std::strtod(w.str().c_str(), nullptr);
    EXPECT_EQ(std::signbit(back), std::signbit(v)) << w.str();
    EXPECT_EQ(back, v) << w.str();
  }
}

TEST(Json, IntegralDoublesStayCompact) {
  JsonWriter w;
  w.begin_array().value(2.0).value(0.5).end_array();
  EXPECT_EQ(w.str(), "[2,0.5]");
}

TEST(Json, ParserRoundTripsWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.kv("name", "span \"x\"\n\t\x01");  // escapes incl. a control char
  w.kv("count", std::uint64_t{42});
  w.kv("neg", std::int64_t{-7});
  w.kv("pi", 3.25);
  w.kv("bad", std::nan(""));  // serializes as null
  w.kv("ok", true);
  w.key("items").begin_array().value(1).value(2).end_array();
  w.end_object();

  const std::optional<JsonValue> doc = parse_json(w.str());
  ASSERT_TRUE(doc.has_value()) << w.str();
  ASSERT_TRUE(doc->is_object());
  ASSERT_NE(doc->find("name"), nullptr);
  EXPECT_EQ(doc->find("name")->string, "span \"x\"\n\t\x01");
  EXPECT_EQ(doc->find("count")->as_u64(), 42u);
  EXPECT_DOUBLE_EQ(doc->find("neg")->number, -7.0);
  EXPECT_DOUBLE_EQ(doc->find("pi")->number, 3.25);
  EXPECT_TRUE(doc->find("bad")->is_null());
  EXPECT_TRUE(doc->find("ok")->boolean);
  ASSERT_NE(doc->find("items"), nullptr);
  ASSERT_EQ(doc->find("items")->items.size(), 2u);
  EXPECT_DOUBLE_EQ(doc->find("items")->items[1].number, 2.0);
  EXPECT_EQ(doc->find("missing"), nullptr);
  // Member order is preserved, so structural equality implies byte
  // equality for writer-emitted documents.
  EXPECT_EQ(doc->members.front().first, "name");
}

TEST(Json, ParserRejectsMalformedDocuments) {
  EXPECT_FALSE(parse_json("").has_value());
  EXPECT_FALSE(parse_json("{").has_value());
  EXPECT_FALSE(parse_json("{}trailing").has_value());
  EXPECT_FALSE(parse_json("{\"a\":}").has_value());
  EXPECT_FALSE(parse_json("[1,]").has_value());
  EXPECT_FALSE(parse_json("\"unterminated").has_value());
  EXPECT_FALSE(parse_json("nul").has_value());
  EXPECT_TRUE(parse_json(" {\"a\": [1, 2e3, -0.5]} ").has_value());
}

TEST(Trace, JsonLineEncodesNaNAsNull) {
  TraceEvent ev;
  ev.epoch = 3;
  ev.tau = 5.5;
  SchemeTrace st;
  st.name = "WiFi";
  st.available = false;  // error_m stays NaN
  ev.schemes.push_back(st);
  const std::string line = to_json_line(ev);
  EXPECT_NE(line.find("\"epoch\":3"), std::string::npos);
  EXPECT_NE(line.find("\"tau\":5.5"), std::string::npos);
  EXPECT_NE(line.find("\"name\":\"WiFi\""), std::string::npos);
  EXPECT_NE(line.find("\"err\":null"), std::string::npos);
  EXPECT_NE(line.find("\"mu\":null"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(Trace, NullSinkSwallowsEverything) {
  NullTraceSink sink;
  sink.on_epoch(TraceEvent{});
  sink.flush();  // nothing to assert beyond "does not crash"
}

TEST(Trace, JsonlSinkThrowsOnUnwritablePath) {
  EXPECT_THROW(JsonlTraceSink("/nonexistent-dir/x/y.jsonl"),
               std::runtime_error);
}

TEST(BenchReport, WritesSeriesScalarsAndMetrics) {
  MetricsRegistry r;
  r.histogram("uniloc.update_us").observe(42.0);
  BenchReport report("obs_test", &r);
  report.add_series("errors", {1.0, 2.0, 3.0, 4.0});
  report.add_series("empty", {});
  report.add_scalar("answer", 42.0);
  const std::string path = testing::TempDir() + "BENCH_obs_test.json";
  ASSERT_EQ(report.write(path), path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string j = ss.str();
  EXPECT_NE(j.find("\"bench\":\"obs_test\""), std::string::npos);
  EXPECT_NE(j.find("\"errors\""), std::string::npos);
  EXPECT_NE(j.find("\"p50\""), std::string::npos);
  EXPECT_NE(j.find("\"answer\":42"), std::string::npos);
  EXPECT_NE(j.find("\"metrics\""), std::string::npos);
  EXPECT_NE(j.find("uniloc.update_us"), std::string::npos);
  // The registry dump is spliced in as a sibling of "scalars", not nested
  // inside it, and the whole document balances.
  EXPECT_NE(j.find("},\"metrics\":{"), std::string::npos);
  int depth = 0;
  for (char ch : j) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(BenchReport, EmptySectionsStillBalance) {
  BenchReport report("bare", nullptr);  // no registry, series, or scalars
  const std::string j = report.to_json();
  EXPECT_NE(j.find("\"metrics\":{}"), std::string::npos);
  int depth = 0;
  for (char ch : j) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// --- integration: a real walk through the trace + metrics pipeline ----

const core::TrainedModels& models() {
  return testing_util::standard_models(150);
}

const core::Deployment& office() { return testing_util::office_deployment(); }

TEST(TraceIntegration, JsonlRoundTripMatchesRecordedEpochs) {
  const std::string path = testing::TempDir() + "walk_trace.jsonl";
  core::Uniloc u = core::make_uniloc(office(), models());
  JsonlTraceSink sink(path);
  core::RunOptions opts;
  opts.walk.seed = 11;
  opts.trace = &sink;
  const core::RunResult run = core::run_walk(u, office(), 0, opts);

  ASSERT_GT(run.epochs.size(), 0u);
  EXPECT_EQ(sink.events_written(), run.epochs.size());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"epoch\":"), std::string::npos);
    EXPECT_NE(line.find("\"schemes\":["), std::string::npos);
    EXPECT_NE(line.find("\"uniloc2_err\":"), std::string::npos);
    // Every registered scheme appears on every line.
    for (const std::string& name : run.scheme_names) {
      EXPECT_NE(line.find("\"name\":\"" + name + "\""), std::string::npos);
    }
    ++lines;
  }
  EXPECT_EQ(lines, run.epochs.size());
}

TEST(MetricsIntegration, AttachedRunFillsExpectedHistograms) {
  MetricsRegistry r;
  core::Uniloc u = core::make_uniloc(office(), models());
  u.attach_metrics(&r);
  office().wifi_db->attach_metrics(&r, "fpdb.wifi");
  core::RunOptions opts;
  opts.walk.seed = 12;
  const core::RunResult run = core::run_walk(u, office(), 0, opts);

  EXPECT_GT(r.counter("uniloc.epochs").value(), 0u);
  EXPECT_GT(r.histogram("uniloc.update_us").count(), 0u);
  EXPECT_GT(r.histogram("uniloc.fuse_us").count(), 0u);
  EXPECT_GT(r.histogram("fpdb.wifi.match_us").count(), 0u);
  // Every registered scheme got its localize histogram.
  for (const std::string& name : run.scheme_names) {
    EXPECT_GT(r.histogram("scheme." + name + ".localize_us").count(), 0u)
        << name;
  }
  // The PDR-family schemes cascade into their particle filters.
  EXPECT_GT(r.histogram("scheme.Motion.pf.predict_us").count(), 0u);

  // `r` dies with this test but office() is static: detach so the shared
  // deployment never holds a dangling instrument pointer.
  office().wifi_db->attach_metrics(nullptr, "fpdb.wifi");
}

TEST(MetricsIntegration, NullRegistryDetachesCleanly) {
  MetricsRegistry r;
  core::Uniloc u = core::make_uniloc(office(), models());
  u.attach_metrics(&r);
  u.attach_metrics(nullptr);  // detach again
  const std::uint64_t before = r.counter("uniloc.epochs").value();
  core::RunOptions opts;
  opts.walk.seed = 13;
  const core::RunResult run = core::run_walk(u, office(), 0, opts);
  ASSERT_GT(run.epochs.size(), 0u);
  EXPECT_EQ(r.counter("uniloc.epochs").value(), before);
  EXPECT_EQ(r.histogram("uniloc.update_us").count(), 0u);
}

// --- span tracer ------------------------------------------------------

TEST(Span, AdoptsAmbientTraceContext) {
  VectorSpanSink sink;
  SpanTracer tracer(&sink);
  const SpanHandle root = tracer.begin("client.epoch", "client",
                                       tracer.next_trace_id(), 0, 7);
  {
    TraceScope scope({root.trace_id, root.span_id, 7});
    const SpanHandle child = tracer.begin("link.send", "link");
    EXPECT_EQ(child.trace_id, root.trace_id);
    EXPECT_EQ(child.parent_id, root.span_id);
    EXPECT_EQ(child.session_id, 7u);
    tracer.end(child, "ok");
  }
  // Outside the scope a defaulted begin() self-roots in a fresh trace.
  const SpanHandle stray = tracer.begin("svc.epoch", "svc");
  EXPECT_NE(stray.trace_id, root.trace_id);
  EXPECT_EQ(stray.parent_id, 0u);
  tracer.end(stray);
  tracer.end(root);
  EXPECT_EQ(tracer.spans_opened(), 3u);
  EXPECT_EQ(tracer.spans_closed(), 3u);
  EXPECT_EQ(sink.size(), 3u);
}

TEST(Span, NestedScopesRestoreOnExit) {
  EXPECT_EQ(current_trace().trace_id, 0u);
  {
    TraceScope outer({1, 10, 5});
    {
      TraceScope inner({2, 20, 6});
      EXPECT_EQ(current_trace().trace_id, 2u);
      EXPECT_EQ(current_trace().parent_span, 20u);
    }
    EXPECT_EQ(current_trace().trace_id, 1u);
    EXPECT_EQ(current_trace().parent_span, 10u);
    EXPECT_EQ(current_trace().session_id, 5u);
  }
  EXPECT_EQ(current_trace().trace_id, 0u);
}

TEST(Span, DetachedScopedSpanIsANoOp) {
  ScopedSpan detached(nullptr, "x", "y");
  EXPECT_EQ(detached.id(), 0u);
  EXPECT_EQ(detached.trace(), 0u);
  detached.finish("ignored");  // double finish on a null tracer: no-op
}

TEST(Span, ConcurrentBeginEndBalances) {
  // Runs under TSan via the `obs` label: ids from relaxed atomics,
  // emission serialized on the sink mutex.
  VectorSpanSink sink;
  SpanTracer tracer(&sink);
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tracer] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan root(&tracer, "svc.epoch", "svc",
                        tracer.next_trace_id());
        TraceScope scope({root.trace(), root.id(), 0});
        ScopedSpan child(&tracer, "svc.decode", "svc");
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const std::uint64_t total =
      static_cast<std::uint64_t>(kThreads) * kSpansPerThread * 2;
  EXPECT_EQ(tracer.spans_opened(), total);
  EXPECT_EQ(tracer.spans_closed(), total);
  ASSERT_EQ(sink.size(), total);
  // Span ids are process-unique across threads.
  std::set<std::uint64_t> ids;
  for (const SpanEvent& ev : sink.events()) ids.insert(ev.span_id);
  EXPECT_EQ(ids.size(), total);
}

TEST(SpanIntegration, WalkEmitsOneRootedTreePerEpoch) {
  // The satellite contract: serialize spans as JSONL through a real core
  // run, read them back with the in-repo JSON reader, and require every
  // epoch's spans to form exactly one rooted tree.
  std::ostringstream buf;
  JsonlSpanSink sink(buf);
  SpanTracer tracer(&sink);
  core::Uniloc u = core::make_uniloc(office(), models());
  core::RunOptions opts;
  opts.walk.seed = 14;
  opts.tracer = &tracer;
  const core::RunResult run = core::run_walk(u, office(), 0, opts);
  ASSERT_GT(run.epochs.size(), 0u);
  EXPECT_EQ(tracer.spans_opened(), tracer.spans_closed());

  struct Parsed {
    std::uint64_t span{0};
    std::uint64_t parent{0};
    std::string name;
  };
  std::map<std::uint64_t, std::vector<Parsed>> traces;
  std::istringstream in(buf.str());
  std::string line;
  while (std::getline(in, line)) {
    const std::optional<JsonValue> doc = parse_json(line);
    ASSERT_TRUE(doc.has_value() && doc->is_object()) << line;
    for (const char* key : {"trace", "span", "parent", "name", "cat",
                            "start_us", "dur_us"}) {
      ASSERT_NE(doc->find(key), nullptr) << key << " missing: " << line;
    }
    traces[doc->find("trace")->as_u64()].push_back(
        {doc->find("span")->as_u64(), doc->find("parent")->as_u64(),
         doc->find("name")->string});
  }
  EXPECT_EQ(traces.size(), run.epochs.size());

  for (const auto& [trace_id, spans] : traces) {
    // One core.epoch root; every other span's parent is in the same
    // trace (single rooted tree, no orphans, no cross-trace edges).
    std::set<std::uint64_t> ids;
    for (const Parsed& s : spans) ids.insert(s.span);
    std::size_t roots = 0;
    std::set<std::string> names;
    for (const Parsed& s : spans) {
      names.insert(s.name);
      if (s.parent == 0) {
        ++roots;
        EXPECT_EQ(s.name, "core.epoch");
      } else {
        EXPECT_EQ(ids.count(s.parent), 1u)
            << s.name << " orphaned in trace " << trace_id;
      }
    }
    EXPECT_EQ(roots, 1u) << "trace " << trace_id;
    // Every registered scheme span plus the fusion span, every epoch.
    EXPECT_EQ(names.count("core.fuse"), 1u);
    for (const std::string& scheme : run.scheme_names) {
      EXPECT_EQ(names.count("scheme." + scheme), 1u) << scheme;
    }
    EXPECT_EQ(spans.size(), 2u + run.scheme_names.size());
  }
}

// --- flight recorder --------------------------------------------------

TEST(FlightRecorder, RingKeepsLastNPerSession) {
  FlightRecorder fr(4);
  for (std::uint64_t e = 0; e < 10; ++e) {
    fr.record({7, e, FlightKind::kEpochSubmit, 0, 0, 0.0});
  }
  fr.record({9, 0, FlightKind::kHello, 0, 0, 0.0});
  EXPECT_EQ(fr.total_recorded(), 11u);
  EXPECT_EQ(fr.session_ids(), (std::vector<std::uint64_t>{7, 9}));

  const std::vector<FlightEvent> kept = fr.session_events(7);
  ASSERT_EQ(kept.size(), 4u);  // the ring holds only the last 4
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].epoch, 6u + i);  // oldest first
  }
  const std::string dump = fr.dump_jsonl();
  EXPECT_NE(dump.find("\"events_seen\":10"), std::string::npos);
  EXPECT_NE(dump.find("\"events_kept\":4"), std::string::npos);

  fr.clear();
  EXPECT_EQ(fr.total_recorded(), 0u);
  EXPECT_TRUE(fr.session_ids().empty());
}

TEST(FlightRecorder, DumpIsDeterministicAndParseable) {
  const auto fill = [](FlightRecorder& fr) {
    fr.record({2, 5, FlightKind::kServerEpoch, 1, 1, 4.5});
    fr.record({1, 0, FlightKind::kRetry, 2, 0, 0.0});
    fr.record({1, 1, FlightKind::kEpochAccepted, 3, 0, 1.25});
  };
  FlightRecorder a(8);
  FlightRecorder b(8);
  fill(a);
  fill(b);
  // Identical recording sequences produce identical bytes -- the
  // property that makes same-seed crash dumps diffable.
  EXPECT_EQ(a.dump_jsonl(), b.dump_jsonl());

  // Sessions ascending, every line parses through the in-repo reader.
  std::istringstream in(a.dump_jsonl());
  std::string line;
  std::vector<std::uint64_t> header_sessions;
  while (std::getline(in, line)) {
    const std::optional<JsonValue> doc = parse_json(line);
    ASSERT_TRUE(doc.has_value() && doc->is_object()) << line;
    if (doc->find("events_seen") != nullptr) {
      header_sessions.push_back(doc->find("session")->as_u64());
    } else {
      ASSERT_NE(doc->find("kind"), nullptr) << line;
    }
  }
  EXPECT_EQ(header_sessions, (std::vector<std::uint64_t>{1, 2}));

  const std::string path = testing::TempDir() + "flight_dump.jsonl";
  ASSERT_TRUE(a.dump_to_file(path));
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_EQ(ss.str(), a.dump_jsonl());
}

TEST(FlightRecorder, ConcurrentRecordingCountsEverything) {
  // Runs under TSan via the `obs` label: many sessions record at once.
  FlightRecorder fr(16);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&fr, t] {
      for (std::uint64_t e = 0; e < kPerThread; ++e) {
        fr.record({static_cast<std::uint64_t>(t + 1), e,
                   FlightKind::kEpochSubmit, 0, 0, 0.0});
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(fr.total_recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  ASSERT_EQ(fr.session_ids().size(), static_cast<std::size_t>(kThreads));
  for (const std::uint64_t sid : fr.session_ids()) {
    const std::vector<FlightEvent> kept = fr.session_events(sid);
    ASSERT_EQ(kept.size(), 16u);  // capacity-bounded
    EXPECT_EQ(kept.back().epoch, static_cast<std::uint64_t>(kPerThread - 1));
  }
}

// --- SLO monitor ------------------------------------------------------

TEST(Slo, SilentBeforeMinSamples) {
  SloConfig cfg;
  cfg.latency_slo_us = 100.0;
  cfg.latency_budget = 0.1;
  cfg.error_budget = 0.1;
  cfg.window = 64;
  cfg.min_samples = 8;
  SloMonitor slo(cfg);
  for (int i = 0; i < 7; ++i) slo.observe(1000.0, true);  // all bad
  EXPECT_FALSE(slo.breached());  // no verdicts before min_samples
  EXPECT_EQ(slo.breaches(), 0u);
  slo.observe(1000.0, true);  // 8th sample: verdicts switch on
  EXPECT_TRUE(slo.breached());
  EXPECT_EQ(slo.breaches(), 1u);
  EXPECT_EQ(slo.samples(), 8u);
}

TEST(Slo, BurnRatesBreachEdgeAndGauges) {
  MetricsRegistry r;
  SloConfig cfg;
  cfg.latency_slo_us = 100.0;
  cfg.latency_budget = 0.25;
  cfg.error_budget = 0.25;
  cfg.window = 16;
  cfg.min_samples = 4;
  SloMonitor slo(cfg, &r);
  int fired = 0;
  slo.on_breach = [&fired] { ++fired; };

  for (int i = 0; i < 16; ++i) slo.observe(10.0, false);
  EXPECT_FALSE(slo.breached());
  EXPECT_DOUBLE_EQ(slo.latency_burn_rate(), 0.0);
  EXPECT_DOUBLE_EQ(slo.error_burn_rate(), 0.0);

  // 8 of the 16-wide window slow AND failing: 0.5 observed over a 0.25
  // budget = burn rate 2 on both axes.
  for (int i = 0; i < 8; ++i) slo.observe(500.0, true);
  EXPECT_TRUE(slo.breached());
  EXPECT_EQ(fired, 1);  // edge-triggered, not level-triggered
  EXPECT_DOUBLE_EQ(slo.latency_burn_rate(), 2.0);
  EXPECT_DOUBLE_EQ(slo.error_burn_rate(), 2.0);
  EXPECT_GE(slo.p99_latency_us(), 100.0);
  EXPECT_DOUBLE_EQ(r.gauge("slo.breached").value(), 1.0);
  EXPECT_DOUBLE_EQ(r.gauge("slo.latency_burn_rate").value(), 2.0);
  EXPECT_DOUBLE_EQ(r.gauge("slo.error_burn_rate").value(), 2.0);
  EXPECT_EQ(r.counter("slo.breaches").value(), 1u);

  // Recovery slides the bad samples out; the next breach re-fires.
  for (int i = 0; i < 16; ++i) slo.observe(10.0, false);
  EXPECT_FALSE(slo.breached());
  EXPECT_DOUBLE_EQ(r.gauge("slo.breached").value(), 0.0);
  for (int i = 0; i < 8; ++i) slo.observe(500.0, true);
  EXPECT_EQ(slo.breaches(), 2u);
  EXPECT_EQ(fired, 2);
}

// --- Prometheus text exposition ---------------------------------------

TEST(Prometheus, SanitizesMetricNames) {
  EXPECT_EQ(prometheus_name("svc.request_us"), "svc_request_us");
  EXPECT_EQ(prometheus_name("a-b c:d"), "a_b_c:d");
  EXPECT_EQ(prometheus_name("9lives"), "_9lives");
}

TEST(Prometheus, RendersAllInstrumentKinds) {
  MetricsRegistry r;
  r.counter("svc.accepted").inc(3);
  r.gauge("pool.active").set(2.5);
  Histogram& h = r.histogram("svc.request_us", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(100.0);

  const std::string text = prometheus_text(r);
  EXPECT_NE(text.find("# TYPE uniloc_svc_accepted counter\n"
                      "uniloc_svc_accepted 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE uniloc_pool_active gauge\n"
                      "uniloc_pool_active 2.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE uniloc_svc_request_us histogram"),
            std::string::npos);
  // Buckets are cumulative and end at le="+Inf" == _count.
  EXPECT_NE(text.find("uniloc_svc_request_us_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("uniloc_svc_request_us_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("uniloc_svc_request_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("uniloc_svc_request_us_sum 105.5"),
            std::string::npos);
  EXPECT_NE(text.find("uniloc_svc_request_us_count 3"),
            std::string::npos);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');

  // Deterministic: same registry contents, same bytes.
  EXPECT_EQ(text, prometheus_text(r));
  // And the prefix is caller-controlled.
  EXPECT_NE(prometheus_text(r, "x_").find("x_svc_accepted 3"),
            std::string::npos);
}

// --- bench history ----------------------------------------------------

TEST(BenchReport, HistoryLineIsCompactAndTimestamped) {
  BenchReport report("pipeline", nullptr);
  report.add_scalar("speedup", 2.5);
  report.add_series("epoch_us", {1.0, 2.0, 3.0, 4.0});

  const std::string line = report.history_line("2026-08-08T00:00:00Z");
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const std::optional<JsonValue> doc = parse_json(line);
  ASSERT_TRUE(doc.has_value() && doc->is_object()) << line;
  EXPECT_EQ(doc->find("bench")->string, "pipeline");
  EXPECT_EQ(doc->find("ts")->string, "2026-08-08T00:00:00Z");
  ASSERT_NE(doc->find("scalars"), nullptr);
  EXPECT_DOUBLE_EQ(doc->find("scalars")->find("speedup")->number, 2.5);
  const JsonValue* series = doc->find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_NE(series->find("epoch_us"), nullptr);
  EXPECT_EQ(series->find("epoch_us")->find("n")->as_u64(), 4u);
  EXPECT_NE(series->find("epoch_us")->find("p50"), nullptr);
  // Compact: no raw samples, no registry dump in a history record.
  EXPECT_EQ(line.find("metrics"), std::string::npos);

  // The timestamp is caller-supplied -- this layer never reads a clock,
  // so identical inputs produce identical lines.
  EXPECT_EQ(line, report.history_line("2026-08-08T00:00:00Z"));

  const std::string path = testing::TempDir() + "bench_history.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(report.append_history(path, "t1"));
  ASSERT_TRUE(report.append_history(path, "t2"));
  std::ifstream in(path);
  std::string l;
  std::vector<std::string> stamps;
  while (std::getline(in, l)) {
    const std::optional<JsonValue> d = parse_json(l);
    ASSERT_TRUE(d.has_value()) << l;
    stamps.push_back(d->find("ts")->string);
  }
  EXPECT_EQ(stamps, (std::vector<std::string>{"t1", "t2"}));
}

TEST(BenchReport, AppendHistoryFailsOnUnwritablePath) {
  BenchReport report("x", nullptr);
  EXPECT_FALSE(report.append_history("/nonexistent-dir/x/h.jsonl", "t"));
}

}  // namespace
}  // namespace uniloc::obs
