// Telemetry subsystem: metrics registry semantics, histogram bucket
// edges, trace JSONL round-trip, and the null-object detach guarantees.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/runner.h"
#include "core/trainer.h"
#include "io/table.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace uniloc::obs {
namespace {

TEST(Counter, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddReset) {
  Gauge g;
  g.set(3.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 5.0});
  // Bucket i counts bounds[i-1] < v <= bounds[i]; overflow catches > 5.
  h.observe(1.0);   // bucket 0 (v <= 1)
  h.observe(0.5);   // bucket 0
  h.observe(1.001); // bucket 1
  h.observe(2.0);   // bucket 1 (edge is inclusive)
  h.observe(5.0);   // bucket 2
  h.observe(7.0);   // overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 2u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 7.0);
  EXPECT_NEAR(h.sum(), 16.501, 1e-9);
}

TEST(Histogram, ConstructorSortsBounds) {
  Histogram h({5.0, 1.0, 2.0});
  EXPECT_EQ(h.upper_bounds(), (std::vector<double>{1.0, 2.0, 5.0}));
}

TEST(Histogram, IgnoresNaN) {
  Histogram h({1.0});
  h.observe(std::nan(""));
  EXPECT_EQ(h.count(), 0u);
  h.observe(0.5);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, EmptyIsZeroed) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
}

TEST(Histogram, PercentilesClampedByExactMinMax) {
  Histogram h({1.0, 2.0, 5.0, 10.0});
  for (double v : {1.5, 2.5, 3.0, 4.0, 6.0}) h.observe(v);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.5);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 6.0);
  const double p50 = h.percentile(50.0);
  EXPECT_GE(p50, 1.5);
  EXPECT_LE(p50, 6.0);
  EXPECT_LE(h.percentile(25.0), h.percentile(75.0));
}

TEST(Histogram, DefaultLatencyBoundsCoverMicrosecondToSecond) {
  const std::vector<double> b = Histogram::default_latency_bounds_us();
  ASSERT_FALSE(b.empty());
  EXPECT_DOUBLE_EQ(b.front(), 1.0);
  EXPECT_DOUBLE_EQ(b.back(), 1e6);
  EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
}

TEST(MetricsRegistry, SameNameReturnsSameInstrument) {
  MetricsRegistry r;
  EXPECT_TRUE(r.empty());
  Counter& a = r.counter("x");
  Counter& b = r.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_FALSE(r.empty());
  // Namespaces are separate: a gauge "x" is a different instrument.
  r.gauge("x").set(1.0);
  a.inc();
  EXPECT_EQ(r.counter("x").value(), 1u);
  EXPECT_DOUBLE_EQ(r.gauge("x").value(), 1.0);
}

TEST(MetricsRegistry, ResetZeroesButKeepsPointersValid) {
  MetricsRegistry r;
  Counter& c = r.counter("epochs");
  Histogram& h = r.histogram("lat", {1.0, 10.0});
  c.inc(5);
  h.observe(3.0);
  r.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  // The same objects are still registered and usable.
  c.inc();
  EXPECT_EQ(r.counter("epochs").value(), 1u);
  EXPECT_EQ(&r.histogram("lat"), &h);
  EXPECT_EQ(h.upper_bounds().size(), 2u);  // bounds survive the reset
}

TEST(MetricsRegistry, ToJsonIsWellFormedAndComplete) {
  MetricsRegistry r;
  r.counter("n").inc(3);
  r.gauge("temp").set(21.5);
  r.gauge("bad").set(std::nan(""));
  r.histogram("lat", {1.0, 2.0}).observe(1.5);
  const std::string j = r.to_json();
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"n\":3"), std::string::npos);
  EXPECT_NE(j.find("\"temp\":21.5"), std::string::npos);
  EXPECT_NE(j.find("\"bad\":null"), std::string::npos);
  EXPECT_NE(j.find("\"lat\""), std::string::npos);
  EXPECT_NE(j.find("\"buckets\""), std::string::npos);
  // Balanced braces/brackets (a cheap structural validity check).
  int depth = 0;
  for (char ch : j) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(MetricsRegistry, ToTableListsEveryInstrument) {
  MetricsRegistry r;
  r.counter("uniloc.epochs").inc(7);
  r.histogram("uniloc.update_us").observe(120.0);
  const std::string table = r.to_table().to_string();
  EXPECT_NE(table.find("uniloc.epochs"), std::string::npos);
  EXPECT_NE(table.find("uniloc.update_us"), std::string::npos);
}

TEST(ScopedTimer, ObservesWhenAttachedOnly) {
  Histogram h;
  {
    ScopedTimer t(&h);
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.max(), 0.0);
  {
    ScopedTimer detached(nullptr);  // must be a no-op, not a crash
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST(Json, DoublesSurviveWriteReadRoundTrip) {
  // The regression this pins: value(double) used "%.9g", which truncates
  // the mantissa -- strtod(write(v)) != v for most doubles.
  const double cases[] = {0.1,
                          1.0 / 3.0,
                          1.2345678901234567,
                          -2.5e-10,
                          1e-300,
                          1e+100,
                          5e-324,  // smallest denormal
                          1.7976931348623157e+308,
                          -0.0,
                          123456789.123456789};
  for (const double v : cases) {
    JsonWriter w;
    w.value(v);
    const double back = std::strtod(w.str().c_str(), nullptr);
    EXPECT_EQ(std::signbit(back), std::signbit(v)) << w.str();
    EXPECT_EQ(back, v) << w.str();
  }
}

TEST(Json, IntegralDoublesStayCompact) {
  JsonWriter w;
  w.begin_array().value(2.0).value(0.5).end_array();
  EXPECT_EQ(w.str(), "[2,0.5]");
}

TEST(Trace, JsonLineEncodesNaNAsNull) {
  TraceEvent ev;
  ev.epoch = 3;
  ev.tau = 5.5;
  SchemeTrace st;
  st.name = "WiFi";
  st.available = false;  // error_m stays NaN
  ev.schemes.push_back(st);
  const std::string line = to_json_line(ev);
  EXPECT_NE(line.find("\"epoch\":3"), std::string::npos);
  EXPECT_NE(line.find("\"tau\":5.5"), std::string::npos);
  EXPECT_NE(line.find("\"name\":\"WiFi\""), std::string::npos);
  EXPECT_NE(line.find("\"err\":null"), std::string::npos);
  EXPECT_NE(line.find("\"mu\":null"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(Trace, NullSinkSwallowsEverything) {
  NullTraceSink sink;
  sink.on_epoch(TraceEvent{});
  sink.flush();  // nothing to assert beyond "does not crash"
}

TEST(Trace, JsonlSinkThrowsOnUnwritablePath) {
  EXPECT_THROW(JsonlTraceSink("/nonexistent-dir/x/y.jsonl"),
               std::runtime_error);
}

TEST(BenchReport, WritesSeriesScalarsAndMetrics) {
  MetricsRegistry r;
  r.histogram("uniloc.update_us").observe(42.0);
  BenchReport report("obs_test", &r);
  report.add_series("errors", {1.0, 2.0, 3.0, 4.0});
  report.add_series("empty", {});
  report.add_scalar("answer", 42.0);
  const std::string path = testing::TempDir() + "BENCH_obs_test.json";
  ASSERT_EQ(report.write(path), path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string j = ss.str();
  EXPECT_NE(j.find("\"bench\":\"obs_test\""), std::string::npos);
  EXPECT_NE(j.find("\"errors\""), std::string::npos);
  EXPECT_NE(j.find("\"p50\""), std::string::npos);
  EXPECT_NE(j.find("\"answer\":42"), std::string::npos);
  EXPECT_NE(j.find("\"metrics\""), std::string::npos);
  EXPECT_NE(j.find("uniloc.update_us"), std::string::npos);
  // The registry dump is spliced in as a sibling of "scalars", not nested
  // inside it, and the whole document balances.
  EXPECT_NE(j.find("},\"metrics\":{"), std::string::npos);
  int depth = 0;
  for (char ch : j) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(BenchReport, EmptySectionsStillBalance) {
  BenchReport report("bare", nullptr);  // no registry, series, or scalars
  const std::string j = report.to_json();
  EXPECT_NE(j.find("\"metrics\":{}"), std::string::npos);
  int depth = 0;
  for (char ch : j) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// --- integration: a real walk through the trace + metrics pipeline ----

const core::TrainedModels& models() {
  static const core::TrainedModels m = core::train_standard_models(42, 150);
  return m;
}

const core::Deployment& office() {
  static core::Deployment d = core::make_deployment(
      sim::office_place(42), core::DeploymentOptions{.seed = 42});
  return d;
}

TEST(TraceIntegration, JsonlRoundTripMatchesRecordedEpochs) {
  const std::string path = testing::TempDir() + "walk_trace.jsonl";
  core::Uniloc u = core::make_uniloc(office(), models());
  JsonlTraceSink sink(path);
  core::RunOptions opts;
  opts.walk.seed = 11;
  opts.trace = &sink;
  const core::RunResult run = core::run_walk(u, office(), 0, opts);

  ASSERT_GT(run.epochs.size(), 0u);
  EXPECT_EQ(sink.events_written(), run.epochs.size());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"epoch\":"), std::string::npos);
    EXPECT_NE(line.find("\"schemes\":["), std::string::npos);
    EXPECT_NE(line.find("\"uniloc2_err\":"), std::string::npos);
    // Every registered scheme appears on every line.
    for (const std::string& name : run.scheme_names) {
      EXPECT_NE(line.find("\"name\":\"" + name + "\""), std::string::npos);
    }
    ++lines;
  }
  EXPECT_EQ(lines, run.epochs.size());
}

TEST(MetricsIntegration, AttachedRunFillsExpectedHistograms) {
  MetricsRegistry r;
  core::Uniloc u = core::make_uniloc(office(), models());
  u.attach_metrics(&r);
  office().wifi_db->attach_metrics(&r, "fpdb.wifi");
  core::RunOptions opts;
  opts.walk.seed = 12;
  const core::RunResult run = core::run_walk(u, office(), 0, opts);

  EXPECT_GT(r.counter("uniloc.epochs").value(), 0u);
  EXPECT_GT(r.histogram("uniloc.update_us").count(), 0u);
  EXPECT_GT(r.histogram("uniloc.fuse_us").count(), 0u);
  EXPECT_GT(r.histogram("fpdb.wifi.match_us").count(), 0u);
  // Every registered scheme got its localize histogram.
  for (const std::string& name : run.scheme_names) {
    EXPECT_GT(r.histogram("scheme." + name + ".localize_us").count(), 0u)
        << name;
  }
  // The PDR-family schemes cascade into their particle filters.
  EXPECT_GT(r.histogram("scheme.Motion.pf.predict_us").count(), 0u);

  // `r` dies with this test but office() is static: detach so the shared
  // deployment never holds a dangling instrument pointer.
  office().wifi_db->attach_metrics(nullptr, "fpdb.wifi");
}

TEST(MetricsIntegration, NullRegistryDetachesCleanly) {
  MetricsRegistry r;
  core::Uniloc u = core::make_uniloc(office(), models());
  u.attach_metrics(&r);
  u.attach_metrics(nullptr);  // detach again
  const std::uint64_t before = r.counter("uniloc.epochs").value();
  core::RunOptions opts;
  opts.walk.seed = 13;
  const core::RunResult run = core::run_walk(u, office(), 0, opts);
  ASSERT_GT(run.epochs.size(), 0u);
  EXPECT_EQ(r.counter("uniloc.epochs").value(), before);
  EXPECT_EQ(r.histogram("uniloc.update_us").count(), 0u);
}

}  // namespace
}  // namespace uniloc::obs
