#include <gtest/gtest.h>

#include <cmath>

#include "filter/hmm.h"
#include "filter/kalman1d.h"
#include "filter/location_predictor.h"
#include "filter/particle_filter.h"

namespace uniloc::filter {
namespace {

// ---------------------------------------------------------------- particles

TEST(ParticleFilter, InitClustersAroundStart) {
  ParticleFilter pf(500, stats::Rng(1));
  pf.init({10.0, 20.0}, 0.5, 1.0, 0.1, 0.05);
  const geo::Vec2 m = pf.mean();
  EXPECT_NEAR(m.x, 10.0, 0.3);
  EXPECT_NEAR(m.y, 20.0, 0.3);
  EXPECT_NEAR(pf.mean_heading(), 0.5, 0.05);
  EXPECT_LT(pf.spread(), 2.5);
}

TEST(ParticleFilter, PredictMovesCloudAlongHeading) {
  ParticleFilter pf(500, stats::Rng(2));
  pf.init({0.0, 0.0}, 0.0, 0.1, 0.01, 0.0);
  for (int i = 0; i < 10; ++i) pf.predict(1.0, 0.0, 0.01, 0.005);
  const geo::Vec2 m = pf.mean();
  EXPECT_NEAR(m.x, 10.0, 0.5);
  EXPECT_NEAR(m.y, 0.0, 0.5);
}

TEST(ParticleFilter, PredictTurns) {
  ParticleFilter pf(500, stats::Rng(3));
  pf.init({0.0, 0.0}, 0.0, 0.01, 0.001, 0.0);
  // Quarter turn over 10 steps, then walk straight up.
  for (int i = 0; i < 10; ++i) {
    pf.predict(0.0, std::numbers::pi / 20.0, 0.0, 0.001);
  }
  for (int i = 0; i < 10; ++i) pf.predict(1.0, 0.0, 0.01, 0.001);
  const geo::Vec2 m = pf.mean();
  EXPECT_NEAR(m.x, 0.0, 0.8);
  EXPECT_NEAR(m.y, 10.0, 0.8);
}

TEST(ParticleFilter, ReweightShiftsMean) {
  ParticleFilter pf(2000, stats::Rng(4));
  pf.init({0.0, 0.0}, 0.0, 5.0, 0.1, 0.0);
  // Favor particles on the +x side.
  pf.reweight([](const Particle& p) { return p.pos.x > 0.0 ? 1.0 : 0.01; });
  EXPECT_GT(pf.mean().x, 1.0);
}

TEST(ParticleFilter, ZeroLikelihoodEverywhereResetsUniform) {
  ParticleFilter pf(100, stats::Rng(5));
  pf.init({0.0, 0.0}, 0.0, 1.0, 0.1, 0.0);
  pf.reweight([](const Particle&) { return 0.0; });
  // Weights reset to uniform rather than NaN.
  for (std::size_t i = 0; i < pf.size(); ++i) {
    EXPECT_NEAR(pf.weight(i), 1.0 / 100.0, 1e-12);
  }
}

TEST(ParticleFilter, EffectiveSampleSize) {
  ParticleFilter pf(100, stats::Rng(6));
  pf.init({0.0, 0.0}, 0.0, 1.0, 0.1, 0.0);
  EXPECT_NEAR(pf.effective_sample_size(), 100.0, 1e-6);
  // Concentrate all weight in one particle.
  bool first = true;
  pf.reweight([&first](const Particle&) {
    const double w = first ? 1.0 : 1e-12;
    first = false;
    return w;
  });
  EXPECT_LT(pf.effective_sample_size(), 2.0);
}

TEST(ParticleFilter, ResampleRestoresEss) {
  ParticleFilter pf(200, stats::Rng(7));
  pf.init({0.0, 0.0}, 0.0, 1.0, 0.1, 0.0);
  pf.reweight([](const Particle& p) {
    return std::exp(-p.pos.norm2());  // sharply peaked
  });
  pf.resample(1.0);
  EXPECT_NEAR(pf.effective_sample_size(), 200.0, 1e-6);
  EXPECT_EQ(pf.size(), 200u);
}

TEST(ParticleFilter, ResampleSkipsWhenEssHigh) {
  ParticleFilter pf(100, stats::Rng(8));
  pf.init({0.0, 0.0}, 0.0, 1.0, 0.1, 0.0);
  const geo::Vec2 before = pf.pos(0);
  pf.resample(0.5);  // uniform weights: ESS = N, no resample
  EXPECT_EQ(pf.pos(0), before);
}

TEST(ParticleFilter, ResamplePreservesMean) {
  ParticleFilter pf(3000, stats::Rng(9));
  pf.init({5.0, -2.0}, 0.0, 2.0, 0.1, 0.0);
  pf.reweight([](const Particle& p) {
    return std::exp(-0.1 * p.pos.norm2());
  });
  const geo::Vec2 before = pf.mean();
  pf.resample(1.0);
  const geo::Vec2 after = pf.mean();
  EXPECT_NEAR(before.x, after.x, 0.3);
  EXPECT_NEAR(before.y, after.y, 0.3);
}

TEST(ParticleFilter, StepScalePersonalization) {
  ParticleFilter pf(2000, stats::Rng(10));
  pf.init({0.0, 0.0}, 0.0, 0.01, 0.001, 0.2);
  // Particles with larger step_scale end up further along x; selecting for
  // them mimics the gait-personalization adaptation.
  for (int i = 0; i < 20; ++i) pf.predict(1.0, 0.0, 0.0, 0.0);
  pf.reweight([](const Particle& p) { return p.pos.x > 22.0 ? 1.0 : 1e-9; });
  pf.resample(1.0);
  double mean_scale = 0.0;
  for (std::size_t i = 0; i < pf.size(); ++i) mean_scale += pf.step_scale(i);
  mean_scale /= static_cast<double>(pf.size());
  EXPECT_GT(mean_scale, 1.05);
}

// --------------------------------------------------------------------- hmm

TEST(Hmm, UniformPriorSingleObservation) {
  Hmm hmm(3, [](std::size_t, std::size_t) { return 1.0 / 3.0; });
  hmm.step([](std::size_t j) { return j == 1 ? 1.0 : 0.0; });
  EXPECT_EQ(hmm.map_state(), 1u);
  EXPECT_NEAR(hmm.belief()[1], 1.0, 1e-12);
}

TEST(Hmm, TransitionPropagatesBelief) {
  // Deterministic right-shift chain on 4 states.
  Hmm hmm(4, [](std::size_t i, std::size_t j) {
    return j == (i + 1) % 4 ? 1.0 : 0.0;
  });
  hmm.set_belief({1.0, 0.0, 0.0, 0.0});
  hmm.step([](std::size_t) { return 1.0; });  // uninformative observation
  EXPECT_EQ(hmm.map_state(), 1u);
  hmm.step([](std::size_t) { return 1.0; });
  EXPECT_EQ(hmm.map_state(), 2u);
}

TEST(Hmm, BeliefSumsToOne) {
  Hmm hmm(5, [](std::size_t, std::size_t) { return 0.2; });
  for (int t = 0; t < 10; ++t) {
    hmm.step([t](std::size_t j) { return j == static_cast<std::size_t>(t % 5) ? 0.9 : 0.1; });
    double sum = 0.0;
    for (double b : hmm.belief()) sum += b;
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Hmm, ZeroEmissionsResetUniform) {
  Hmm hmm(3, [](std::size_t, std::size_t) { return 1.0 / 3.0; });
  hmm.step([](std::size_t) { return 0.0; });
  for (double b : hmm.belief()) EXPECT_NEAR(b, 1.0 / 3.0, 1e-12);
}

TEST(Hmm, ViterbiDecodesShiftChain) {
  Hmm hmm(3, [](std::size_t i, std::size_t j) {
    return j == (i + 1) % 3 ? 0.9 : 0.05;
  });
  std::vector<std::function<double(std::size_t)>> emissions;
  // Observations consistent with path 0 -> 1 -> 2.
  for (std::size_t truth : {0u, 1u, 2u}) {
    emissions.emplace_back([truth](std::size_t j) {
      return j == truth ? 0.8 : 0.1;
    });
  }
  const std::vector<std::size_t> path =
      hmm.viterbi(emissions, {1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0});
  EXPECT_EQ(path, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(SecondOrderHmm, MarginalSumsToOne) {
  SecondOrderHmm hmm(4, [](std::size_t, std::size_t c, std::size_t n) {
    return n == (c + 1) % 4 ? 0.8 : 0.2 / 3.0;
  });
  hmm.step([](std::size_t j) { return j == 2 ? 0.9 : 0.1; });
  double sum = 0.0;
  for (double m : hmm.marginal()) sum += m;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_EQ(hmm.map_state(), 2u);
}

TEST(SecondOrderHmm, UsesSecondOrderContext) {
  // Transition prefers continuing the direction implied by (prev, cur):
  // if cur = prev + 1 it keeps going up; if cur = prev - 1 it goes down.
  const std::size_t n = 5;
  SecondOrderHmm hmm(n, [n](std::size_t p, std::size_t c, std::size_t x) {
    const int dir = static_cast<int>(c) - static_cast<int>(p);
    const int expected = static_cast<int>(c) + (dir >= 0 ? 1 : -1);
    if (expected < 0 || expected >= static_cast<int>(n)) {
      return x == c ? 1.0 : 0.0;
    }
    return x == static_cast<std::size_t>(expected) ? 0.9 : 0.025;
  });
  // Observe 1 then 2 (moving up), then give an uninformative observation:
  // the belief should continue to 3.
  hmm.step([](std::size_t j) { return j == 1 ? 1.0 : 1e-6; });
  hmm.step([](std::size_t j) { return j == 2 ? 1.0 : 1e-6; });
  hmm.step([](std::size_t) { return 1.0; });
  EXPECT_EQ(hmm.map_state(), 3u);
}

// ------------------------------------------------------------------ kalman

TEST(Kalman1d, ConvergesToConstantSignal) {
  Kalman1d k(0.0, 10.0, 0.01, 1.0);
  for (int i = 0; i < 100; ++i) k.update(5.0);
  EXPECT_NEAR(k.estimate(), 5.0, 0.05);
  EXPECT_LT(k.sd(), 1.0);
}

TEST(Kalman1d, TracksDrift) {
  Kalman1d k(0.0, 1.0, 0.5, 1.0);
  double target = 0.0;
  for (int i = 0; i < 200; ++i) {
    target += 0.05;
    k.update(target);
  }
  EXPECT_NEAR(k.estimate(), target, 0.5);
}

TEST(Kalman1d, SmoothsNoise) {
  stats::Rng rng(3);
  Kalman1d k(0.0, 5.0, 0.01, 2.0);
  for (int i = 0; i < 500; ++i) k.update(3.0 + rng.normal(0.0, 2.0));
  EXPECT_NEAR(k.estimate(), 3.0, 0.4);
}

// -------------------------------------------------------------- predictor

TEST(LocationPredictor, EmptyBeforeFirstObservation) {
  LocationPredictor p;
  EXPECT_FALSE(p.predict().has_value());
  EXPECT_DOUBLE_EQ(p.uncertainty(), 0.0);
}

TEST(LocationPredictor, TracksStationaryObservations) {
  LocationPredictor p;
  for (int i = 0; i < 5; ++i) p.observe({10.0, 20.0});
  const auto pred = p.predict();
  ASSERT_TRUE(pred.has_value());
  EXPECT_NEAR(pred->x, 10.0, 1.5);
  EXPECT_NEAR(pred->y, 20.0, 1.5);
}

TEST(LocationPredictor, ExtrapolatesMotion) {
  LocationPredictor p;
  // Walk along +x at 1 m per observation.
  for (int i = 0; i <= 10; ++i) p.observe({static_cast<double>(i), 0.0});
  const auto pred = p.predict();
  ASSERT_TRUE(pred.has_value());
  EXPECT_GT(pred->x, 8.0);
}

TEST(LocationPredictor, RobustToOneOutlier) {
  LocationPredictor p;
  for (int i = 0; i <= 10; ++i) p.observe({static_cast<double>(i), 0.0});
  p.observe({50.0, 50.0});  // wild observation
  const auto pred = p.predict();
  ASSERT_TRUE(pred.has_value());
  // The motion prior keeps the prediction near the trajectory.
  EXPECT_LT(geo::distance(*pred, {11.0, 0.0}), 15.0);
}

TEST(LocationPredictor, ResetClearsState) {
  LocationPredictor p;
  p.observe({1.0, 2.0});
  p.reset();
  EXPECT_FALSE(p.predict().has_value());
}

}  // namespace
}  // namespace uniloc::filter
