#include "sim/place.h"

#include <gtest/gtest.h>

#include "sim/builders.h"

namespace uniloc::sim {
namespace {

Place simple_place() {
  Place p("test", {1.35, 103.68});
  p.add_walkway(make_walkway(
      "w", {0.0, 0.0}, 0.0,
      {{SegmentType::kOffice, 20.0, 90.0, 2.0},
       {SegmentType::kCorridor, 30.0, 0.0, 4.0},
       {SegmentType::kOpenSpace, 50.0, 0.0, 12.0}}));
  return p;
}

TEST(SegmentType, IndoorClassification) {
  EXPECT_TRUE(is_indoor(SegmentType::kOffice));
  EXPECT_TRUE(is_indoor(SegmentType::kCorridor));   // roofed => indoor
  EXPECT_TRUE(is_indoor(SegmentType::kBasement));
  EXPECT_TRUE(is_indoor(SegmentType::kCarPark));
  EXPECT_TRUE(is_indoor(SegmentType::kMallAisle));
  EXPECT_FALSE(is_indoor(SegmentType::kOpenSpace));
}

TEST(SegmentType, SkyVisibilityOrdering) {
  EXPECT_DOUBLE_EQ(sky_visibility(SegmentType::kOpenSpace), 1.0);
  EXPECT_DOUBLE_EQ(sky_visibility(SegmentType::kBasement), 0.0);
  EXPECT_LT(sky_visibility(SegmentType::kOffice),
            sky_visibility(SegmentType::kCorridor));
}

TEST(SegmentType, Names) {
  EXPECT_STREQ(segment_name(SegmentType::kBasement), "basement");
  EXPECT_STREQ(segment_name(SegmentType::kOpenSpace), "open_space");
}

TEST(Walkway, SegmentAtArclen) {
  const Place p = simple_place();
  const Walkway& w = p.walkways()[0];
  EXPECT_EQ(w.segment_at(5.0).type, SegmentType::kOffice);
  EXPECT_EQ(w.segment_at(25.0).type, SegmentType::kCorridor);
  EXPECT_EQ(w.segment_at(99.0).type, SegmentType::kOpenSpace);
}

TEST(Walkway, SegmentAtClampsToEnds) {
  const Place p = simple_place();
  const Walkway& w = p.walkways()[0];
  EXPECT_EQ(w.segment_at(-1.0).type, SegmentType::kOffice);
  EXPECT_EQ(w.segment_at(1e9).type, SegmentType::kOpenSpace);
}

TEST(Walkway, LengthWhere) {
  const Place p = simple_place();
  const Walkway& w = p.walkways()[0];
  EXPECT_DOUBLE_EQ(w.length_where(is_indoor), 50.0);
  EXPECT_DOUBLE_EQ(w.line.length(), 100.0);
}

TEST(Walkway, TurnLandmarksAtSharpCorners) {
  const Place p = simple_place();
  const std::vector<Landmark> turns = p.walkways()[0].turn_landmarks();
  ASSERT_EQ(turns.size(), 1u);  // single 90-degree corner at 20 m
  EXPECT_NEAR(turns[0].pos.x, 20.0, 1e-9);
}

TEST(Place, AddTurnLandmarksSkipsOutdoor) {
  Place p("t", {1.35, 103.68});
  p.add_walkway(make_walkway("w", {0.0, 0.0}, 0.0,
                             {{SegmentType::kOpenSpace, 30.0, 90.0},
                              {SegmentType::kOpenSpace, 30.0, 0.0}}));
  p.add_turn_landmarks();
  EXPECT_TRUE(p.landmarks().empty());  // outdoor turns are not landmarks
}

TEST(Place, EnvironmentAtResolvesSegment) {
  const Place p = simple_place();
  const LocalEnvironment env = p.environment_at({10.0, 0.5});
  EXPECT_EQ(env.type, SegmentType::kOffice);
  EXPECT_TRUE(env.indoor);
  EXPECT_DOUBLE_EQ(env.corridor_width_m, 2.0);
  EXPECT_NEAR(env.distance_to_walkway, 0.5, 1e-9);
}

TEST(Place, EnvironmentFarFromWalkwaysIsOutdoor) {
  const Place p = simple_place();
  const LocalEnvironment env = p.environment_at({500.0, 500.0});
  EXPECT_EQ(env.type, SegmentType::kOpenSpace);
  EXPECT_FALSE(env.indoor);
}

TEST(Place, LandmarksNear) {
  Place p = simple_place();
  p.add_landmark({{10.0, 0.0}, LandmarkKind::kDoor, 2.0});
  p.add_landmark({{90.0, 0.0}, LandmarkKind::kDoor, 2.0});
  EXPECT_EQ(p.landmarks_near({11.0, 0.0}, 3.0).size(), 1u);
  EXPECT_EQ(p.landmarks_near({50.0, 50.0}, 3.0).size(), 0u);
}

TEST(Place, BoundsInflated) {
  const Place p = simple_place();
  const geo::BBox b = p.bounds();
  EXPECT_TRUE(b.contains({0.0, 0.0}));
  EXPECT_TRUE(b.contains({20.0, 80.0}));
}

TEST(Place, RejectsDegenerateWalkway) {
  Place p("t", {1.35, 103.68});
  Walkway w;
  w.name = "point";
  w.line = geo::Polyline({{0.0, 0.0}});
  EXPECT_THROW(p.add_walkway(std::move(w)), std::invalid_argument);
}

TEST(Place, DefaultSegmentCoversWholeLine) {
  Place p("t", {1.35, 103.68});
  Walkway w;
  w.name = "bare";
  w.line = geo::Polyline({{0.0, 0.0}, {10.0, 0.0}});
  const std::size_t i = p.add_walkway(std::move(w));
  const Walkway& added = p.walkways()[i];
  ASSERT_EQ(added.segments.size(), 1u);
  EXPECT_DOUBLE_EQ(added.segments[0].end_arclen, 10.0);
}

TEST(MakeWalkway, MergesSameTypeSameWidthLegs) {
  const Walkway w = make_walkway(
      "m", {0.0, 0.0}, 0.0,
      {{SegmentType::kOffice, 10.0, 0.0}, {SegmentType::kOffice, 10.0, 0.0}});
  EXPECT_EQ(w.segments.size(), 1u);
  EXPECT_DOUBLE_EQ(w.segments[0].end_arclen, 20.0);
}

TEST(MakeWalkway, KeepsDistinctWidths) {
  const Walkway w = make_walkway(
      "m", {0.0, 0.0}, 0.0,
      {{SegmentType::kOffice, 10.0, 0.0, 2.0},
       {SegmentType::kOffice, 10.0, 0.0, 4.0}});
  EXPECT_EQ(w.segments.size(), 2u);
}

TEST(MakeWalkway, TurnChangesDirection) {
  const Walkway w = make_walkway(
      "m", {0.0, 0.0}, 0.0,
      {{SegmentType::kOffice, 10.0, 90.0}, {SegmentType::kOffice, 10.0, 0.0}});
  const geo::Vec2 end = w.line.points().back();
  EXPECT_NEAR(end.x, 10.0, 1e-9);
  EXPECT_NEAR(end.y, 10.0, 1e-9);
}

}  // namespace
}  // namespace uniloc::sim
