// Checkpoint/restore correctness: the crash-recovery differential suite.
//
// The snapshot codec (svc/checkpoint.h) claims that a server killed at an
// arbitrary round and restored from its latest checkpoint serves the
// exact epoch stream of an uninterrupted run. These tests hold it to that
// claim the same way the fast-path differential suite does -- bit-for-bit
// comparisons, never tolerances:
//
//   * codec round trips at every layer (RNG engine, particle filter,
//     whole server) continue the random stream exactly;
//   * crash+restore every K rounds (K in {1, 7, 31}) on the campus
//     deployment covering all eight paths, at workers 0 and 4, across a
//     16-seed sweep, reproduces the uninterrupted timeline;
//   * hostile input -- truncations at every prefix length, single bit
//     flips, bad magic/version/framing -- is rejected cleanly (the
//     ASan+UBSan gate in scripts/check.sh runs this suite).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/runner.h"
#include "core/trainer.h"
#include "fault/crash.h"
#include "fault/plan.h"
#include "filter/particle_filter.h"
#include "offload/bytes.h"
#include "sim/builders.h"
#include "sim/virtual_clock.h"
#include "stats/rng_codec.h"
#include "svc/checkpoint.h"
#include "svc/epoch_codec.h"
#include "svc/loadgen.h"
#include "svc/server.h"
#include "svc/wire.h"
#include "testing_util.h"

namespace uniloc {
namespace {

const core::TrainedModels& test_models() {
  return testing_util::standard_models(100);
}

const core::Deployment& campus_deployment() {
  static const core::Deployment d = core::make_deployment(
      sim::campus(42), core::DeploymentOptions{.seed = 42});
  return d;
}

svc::UnilocFactory factory_for(const core::Deployment& d) {
  return [&d](std::uint64_t sid) {
    return std::make_unique<core::Uniloc>(core::make_uniloc(
        d, test_models(), {}, false, /*seed=*/7 + sid));
  };
}

void expect_same(double a, double b, const std::string& what) {
  if (std::isnan(a) && std::isnan(b)) return;
  EXPECT_EQ(a, b) << what;
}

void expect_identical_reports(const svc::LoadReport& ref,
                              const svc::LoadReport& crashed,
                              const std::string& label) {
  ASSERT_EQ(ref.walkers.size(), crashed.walkers.size()) << label;
  EXPECT_EQ(ref.total_epochs, crashed.total_epochs) << label;
  for (std::size_t w = 0; w < ref.walkers.size(); ++w) {
    const svc::WalkerOutcome& r = ref.walkers[w];
    const svc::WalkerOutcome& c = crashed.walkers[w];
    const std::string at = label + " walker " + std::to_string(w);
    EXPECT_EQ(r.session_id, c.session_id) << at;
    EXPECT_EQ(r.walkway, c.walkway) << at;
    EXPECT_EQ(r.epochs_accepted, c.epochs_accepted) << at;
    EXPECT_EQ(r.local_epochs, c.local_epochs) << at;
    EXPECT_EQ(r.rehellos, c.rehellos) << at;
    ASSERT_EQ(r.timeline.size(), c.timeline.size()) << at;
    for (std::size_t e = 0; e < r.timeline.size(); ++e) {
      const svc::EpochEvent& re = r.timeline[e];
      const svc::EpochEvent& ce = c.timeline[e];
      const std::string ep = at + " epoch " + std::to_string(e);
      EXPECT_EQ(re.epoch, ce.epoch) << ep;
      EXPECT_EQ(re.source, ce.source) << ep;
      EXPECT_EQ(re.attempts, ce.attempts) << ep;
      EXPECT_EQ(re.rehello, ce.rehello) << ep;
      expect_same(re.estimate.x, ce.estimate.x, ep + " x");
      expect_same(re.estimate.y, ce.estimate.y, ep + " y");
      expect_same(re.error_m, ce.error_m, ep + " err");
    }
  }
}

// ------------------------------------------------------------ codec units

TEST(RngCodec, EngineRoundTripContinuesStreamExactly) {
  std::mt19937_64 original(12345);
  for (int i = 0; i < 1000; ++i) original();  // mid-stream position

  offload::ByteWriter w;
  stats::snapshot_engine(original, w);
  const std::vector<std::uint8_t> bytes = w.take();

  offload::ByteReader r(bytes.data(), bytes.size());
  std::mt19937_64 restored;
  ASSERT_TRUE(stats::restore_engine(restored, r));
  EXPECT_EQ(r.remaining(), 0u);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(original(), restored()) << "draw " << i;
  }
}

TEST(RngCodec, RejectsWrongTokenCountAndHostilePosition) {
  constexpr std::size_t kState = std::mt19937_64::state_size;
  std::mt19937_64 engine(1);
  {
    offload::ByteWriter w;
    w.put_u32(static_cast<std::uint32_t>(kState));  // one token short
    for (std::size_t i = 0; i < kState; ++i) w.put_u64(0);
    const std::vector<std::uint8_t> bytes = w.take();
    offload::ByteReader r(bytes.data(), bytes.size());
    EXPECT_FALSE(stats::restore_engine(engine, r));
  }
  {
    // A hostile read-position token past the state array: accepting it
    // would make the engine index out of bounds on the next draw.
    offload::ByteWriter w;
    w.put_u32(static_cast<std::uint32_t>(kState + 1));
    for (std::size_t i = 0; i < kState; ++i) w.put_u64(i + 1);
    w.put_u64(kState + 100);
    const std::vector<std::uint8_t> bytes = w.take();
    offload::ByteReader r(bytes.data(), bytes.size());
    EXPECT_FALSE(stats::restore_engine(engine, r));
  }
}

TEST(ParticleFilter, SnapshotRestoreContinuesFilterBitIdentically) {
  filter::ParticleFilter a(64, /*seed=*/5);
  a.init({3.0, 4.0}, 0.7, 0.8, 0.08, 0.07);
  a.predict(0.7, 0.1, 0.12, 0.035);

  offload::ByteWriter w;
  a.snapshot_into(w);
  const std::vector<std::uint8_t> bytes = w.take();

  // Restore into a filter built with a DIFFERENT seed: the snapshot must
  // fully determine the continuation.
  filter::ParticleFilter b(64, /*seed=*/999);
  offload::ByteReader r(bytes.data(), bytes.size());
  ASSERT_TRUE(b.restore_from(r));
  EXPECT_EQ(r.remaining(), 0u);

  for (int step = 0; step < 10; ++step) {
    a.predict(0.7, -0.05, 0.12, 0.035);
    b.predict(0.7, -0.05, 0.12, 0.035);
    a.resample(1.0);  // force a resample: consumes the uniform draw
    b.resample(1.0);
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const filter::Particle pa = a.particle(i);
    const filter::Particle pb = b.particle(i);
    ASSERT_EQ(pa.pos.x, pb.pos.x) << i;
    ASSERT_EQ(pa.pos.y, pb.pos.y) << i;
    ASSERT_EQ(pa.heading, pb.heading) << i;
    ASSERT_EQ(pa.step_scale, pb.step_scale) << i;
    ASSERT_EQ(pa.weight, pb.weight) << i;
  }
}

TEST(ParticleFilter, RestoreRejectsCountMismatchWithoutTouchingState) {
  filter::ParticleFilter a(32, 5);
  a.init({0, 0}, 0.0, 0.5, 0.05, 0.05);
  offload::ByteWriter w;
  a.snapshot_into(w);
  const std::vector<std::uint8_t> bytes = w.take();

  filter::ParticleFilter b(33, 5);  // different particle count
  b.init({9, 9}, 1.0, 0.5, 0.05, 0.05);
  const filter::Particle before = b.particle(0);
  offload::ByteReader r(bytes.data(), bytes.size());
  EXPECT_FALSE(b.restore_from(r));
  const filter::Particle after = b.particle(0);
  EXPECT_EQ(before.pos.x, after.pos.x);
  EXPECT_EQ(before.heading, after.heading);
}

// --------------------------------------------------------- server snapshot

std::vector<std::uint8_t> hello_frame(std::uint64_t sid, geo::Vec2 start,
                                      double heading) {
  svc::Frame f;
  f.type = svc::FrameType::kHello;
  f.session_id = sid;
  f.payload = svc::encode_hello({start, heading});
  return svc::encode_frame(f);
}

std::vector<std::uint8_t> epoch_frame(std::uint64_t sid) {
  svc::Frame f;
  f.type = svc::FrameType::kEpoch;
  f.session_id = sid;
  f.payload = svc::encode_epoch({}, sim::SensorFrame{});
  return svc::encode_frame(f);
}

/// A small live server: two sessions, a few epochs of traffic.
std::unique_ptr<svc::LocalizationServer> warm_server() {
  auto server = std::make_unique<svc::LocalizationServer>(
      svc::ServerConfig{}, factory_for(campus_deployment()), nullptr);
  for (std::uint64_t sid : {1ull, 2ull}) {
    server->submit(hello_frame(sid, {1.0, 2.0}, 0.3)).get();
    for (int e = 0; e < 3; ++e) server->submit(epoch_frame(sid)).get();
  }
  return server;
}

TEST(ServerSnapshot, RestoredServerServesIdenticalRepliesAndReSnapshots) {
  std::unique_ptr<svc::LocalizationServer> a = warm_server();
  const std::vector<std::uint8_t> snap = a->snapshot();

  svc::LocalizationServer b(svc::ServerConfig{},
                            factory_for(campus_deployment()), nullptr);
  ASSERT_TRUE(b.restore(snap));
  EXPECT_EQ(b.live_sessions(), 2u);
  // Re-snapshotting the restored server must reproduce the snapshot
  // byte for byte (state AND bookkeeping both round-tripped).
  EXPECT_EQ(b.snapshot(), snap);

  // Both servers now serve the same continuation.
  for (std::uint64_t sid : {1ull, 2ull}) {
    for (int e = 0; e < 4; ++e) {
      const std::vector<std::uint8_t> ra =
          a->submit(epoch_frame(sid)).get();
      const std::vector<std::uint8_t> rb =
          b.submit(epoch_frame(sid)).get();
      EXPECT_EQ(ra, rb) << "session " << sid << " epoch " << e;
    }
  }
}

TEST(ServerSnapshot, CrashDropsAllSessionsAndRestoreRevivesThem) {
  std::unique_ptr<svc::LocalizationServer> server = warm_server();
  const std::vector<std::uint8_t> snap = server->snapshot();

  server->crash();
  EXPECT_EQ(server->live_sessions(), 0u);
  const svc::DecodeResult lost =
      svc::decode_frame(server->submit(epoch_frame(1)).get());
  ASSERT_TRUE(lost.frame.has_value());
  EXPECT_EQ(lost.frame->type, svc::FrameType::kError);

  ASSERT_TRUE(server->restore(snap));
  EXPECT_EQ(server->live_sessions(), 2u);
  const svc::DecodeResult back =
      svc::decode_frame(server->submit(epoch_frame(1)).get());
  ASSERT_TRUE(back.frame.has_value());
  EXPECT_EQ(back.frame->type, svc::FrameType::kReply);
}

// ------------------------------------------------------ hostile snapshots

TEST(ServerSnapshot, RejectsBadMagicVersionTrailerAndCount) {
  std::unique_ptr<svc::LocalizationServer> server = warm_server();
  const std::vector<std::uint8_t> snap = server->snapshot();
  svc::LocalizationServer b(svc::ServerConfig{},
                            factory_for(campus_deployment()), nullptr);

  std::vector<std::uint8_t> bad = snap;
  bad[0] ^= 0xFF;  // magic
  EXPECT_FALSE(b.restore(bad));

  bad = snap;
  bad[4] = svc::kSnapshotVersion + 1;  // unknown version
  EXPECT_FALSE(b.restore(bad));

  bad = snap;
  bad.push_back(0);  // trailing garbage
  EXPECT_FALSE(b.restore(bad));

  bad = snap;
  bad[13] += 1;  // session-count field (after magic+version+scan counter)
  EXPECT_FALSE(b.restore(bad));

  EXPECT_FALSE(b.restore({}));  // empty

  // A failed restore leaves no half-restored population behind.
  EXPECT_EQ(b.live_sessions(), 0u);
  // And the pristine snapshot still restores fine afterwards.
  EXPECT_TRUE(b.restore(snap));
  EXPECT_EQ(b.live_sessions(), 2u);
}

TEST(ServerSnapshot, EveryTruncationIsRejectedCleanly) {
  std::unique_ptr<svc::LocalizationServer> server = warm_server();
  const std::vector<std::uint8_t> snap = server->snapshot();
  svc::LocalizationServer b(svc::ServerConfig{},
                            factory_for(campus_deployment()), nullptr);

  // Exhaustive over the framing-dense prefix, strided across the bulk
  // (particle arrays), and exhaustive again near the end.
  std::vector<std::size_t> lengths;
  for (std::size_t n = 0; n < std::min<std::size_t>(snap.size(), 512); ++n) {
    lengths.push_back(n);
  }
  for (std::size_t n = 512; n + 64 < snap.size(); n += 97) {
    lengths.push_back(n);
  }
  for (std::size_t n = snap.size() - std::min<std::size_t>(snap.size(), 64);
       n < snap.size(); ++n) {
    lengths.push_back(n);
  }
  for (const std::size_t n : lengths) {
    const std::vector<std::uint8_t> cut(snap.begin(), snap.begin() + n);
    EXPECT_FALSE(b.restore(cut)) << "truncated to " << n << " bytes";
  }
  EXPECT_TRUE(b.restore(snap));
}

TEST(ServerSnapshot, BitFlipsNeverCrashTheRestorer) {
  std::unique_ptr<svc::LocalizationServer> server = warm_server();
  const std::vector<std::uint8_t> snap = server->snapshot();
  svc::LocalizationServer b(svc::ServerConfig{},
                            factory_for(campus_deployment()), nullptr);

  // A flipped bit may land in a particle coordinate (restore succeeds
  // with a different cloud -- benign) or in framing (restore must reject);
  // either way: no crash, no UB, server still usable. The stride covers
  // header, bookkeeping, scheme names, lengths and payload bytes.
  std::mt19937_64 rng(7);
  for (std::size_t trial = 0; trial < 1500; ++trial) {
    std::vector<std::uint8_t> mutated = snap;
    const std::size_t byte = rng() % mutated.size();
    mutated[byte] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    b.restore(mutated);  // outcome unspecified; surviving is the assert
  }
  ASSERT_TRUE(b.restore(snap));
  const svc::DecodeResult reply =
      svc::decode_frame(b.submit(epoch_frame(1)).get());
  ASSERT_TRUE(reply.frame.has_value());
  EXPECT_EQ(reply.frame->type, svc::FrameType::kReply);
}

// ------------------------------------------------------- checkpoint files

TEST(CheckpointFile, AtomicWriteReadRoundTrip) {
  const std::string dir = "/tmp/uniloc_ckpt_test";
  std::filesystem::create_directories(dir);
  const std::vector<std::uint8_t> bytes = {1, 2, 3, 0xFF, 0, 42};
  ASSERT_TRUE(svc::write_checkpoint_file(dir, bytes));
  const auto back = svc::read_checkpoint_file(dir);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes);
  // Overwrite is atomic-replace, not append.
  const std::vector<std::uint8_t> second = {9, 9};
  ASSERT_TRUE(svc::write_checkpoint_file(dir, second));
  EXPECT_EQ(*svc::read_checkpoint_file(dir), second);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointFile, MissingDirectoryOrFileReportsFailure) {
  EXPECT_FALSE(svc::write_checkpoint_file("/nonexistent_dir_xyz", {1}));
  EXPECT_FALSE(svc::read_checkpoint_file("/nonexistent_dir_xyz").has_value());
}

// ---------------------------------------------- crash-recovery differential

struct CrashScenario {
  std::size_t crash_every_rounds{0};  ///< 0 = uninterrupted baseline.
  int workers{0};
  std::uint64_t seed{2024};
  std::size_t epochs{33};  ///< > 31 so the largest K fires at least once.
};

svc::LoadReport run_crash_scenario(const core::Deployment& d,
                                   const CrashScenario& sc) {
  svc::ServerConfig cfg;
  cfg.workers = sc.workers;
  svc::LocalizationServer server(cfg, factory_for(d), nullptr);

  fault::FaultPlan plan(sc.seed);
  if (sc.crash_every_rounds > 0) {
    for (std::size_t r = sc.crash_every_rounds - 1; r <= sc.epochs + 1;
         r += sc.crash_every_rounds) {
      plan.script_crash(r);
    }
  }
  fault::CrashInjector injector(&server, &plan);

  svc::LoadGenConfig lg;
  lg.walkers = 8;  // round-robin: one per campus path
  lg.max_epochs_per_walker = sc.epochs;
  lg.seed = sc.seed;
  lg.resilience.record_timeline = true;
  lg.on_round = [&injector](std::size_t round) { injector.on_round(round); };
  const svc::LoadReport report = run_load(server, d, lg, nullptr);

  if (sc.crash_every_rounds > 0) {
    EXPECT_GT(injector.crashes(), 0u)
        << "crash schedule K=" << sc.crash_every_rounds << " never fired";
  }
  EXPECT_EQ(injector.restore_failures(), 0u);
  return report;
}

TEST(CrashRecovery, AllCampusPathsBitIdenticalForEveryCrashPeriod) {
  const core::Deployment& d = campus_deployment();
  ASSERT_EQ(d.place->walkways().size(), 8u);
  const svc::LoadReport baseline = run_crash_scenario(d, {});
  for (const std::size_t k : {std::size_t{1}, std::size_t{7},
                              std::size_t{31}}) {
    const svc::LoadReport w0 =
        run_crash_scenario(d, {.crash_every_rounds = k, .workers = 0});
    expect_identical_reports(baseline, w0,
                             "K=" + std::to_string(k) + " workers=0");
    const svc::LoadReport w4 =
        run_crash_scenario(d, {.crash_every_rounds = k, .workers = 4});
    expect_identical_reports(baseline, w4,
                             "K=" + std::to_string(k) + " workers=4");
  }
}

TEST(CrashRecovery, SixteenSeedSweepBitIdentical) {
  const core::Deployment& d = campus_deployment();
  const std::size_t periods[] = {1, 7, 31};
  for (std::uint64_t seed = 3000; seed < 3016; ++seed) {
    const std::size_t k = periods[seed % 3];
    const svc::LoadReport baseline =
        run_crash_scenario(d, {.seed = seed, .epochs = 33});
    const svc::LoadReport crashed = run_crash_scenario(
        d, {.crash_every_rounds = k,
            .workers = static_cast<int>(seed % 2) * 4,
            .seed = seed,
            .epochs = 33});
    expect_identical_reports(
        baseline, crashed,
        "seed " + std::to_string(seed) + " K=" + std::to_string(k));
  }
}

// ------------------------------------------------- periodic checkpointing

TEST(PeriodicCheckpoint, FiresOnScheduleAndDoesNotPerturbTheRun) {
  const core::Deployment& d = campus_deployment();

  const auto run_once = [&d](bool with_checkpoints,
                             std::vector<std::uint8_t>* last,
                             std::size_t* fired) {
    sim::VirtualClock clock;
    svc::ServerConfig cfg;
    cfg.now_us = clock.now_fn();
    if (with_checkpoints) {
      cfg.checkpoint_period_us = 2'000'000;  // every 4 rounds at 0.5 s
      cfg.on_checkpoint = [last, fired](const std::vector<std::uint8_t>& b) {
        if (last != nullptr) *last = b;
        if (fired != nullptr) ++*fired;
      };
    }
    svc::LocalizationServer server(cfg, factory_for(d), nullptr);
    svc::LoadGenConfig lg;
    lg.walkers = 4;
    lg.max_epochs_per_walker = 12;
    lg.clock = &clock;
    lg.resilience.record_timeline = true;
    return run_load(server, d, lg, nullptr);
  };

  std::vector<std::uint8_t> last;
  std::size_t fired = 0;
  const svc::LoadReport plain = run_once(false, nullptr, nullptr);
  const svc::LoadReport checkpointed = run_once(true, &last, &fired);
  EXPECT_GT(fired, 1u);
  ASSERT_FALSE(last.empty());
  expect_identical_reports(plain, checkpointed, "periodic checkpoints");

  // The last periodic checkpoint is a valid restore source.
  svc::LocalizationServer restored(svc::ServerConfig{}, factory_for(d),
                                   nullptr);
  EXPECT_TRUE(restored.restore(last));
  EXPECT_EQ(restored.live_sessions(), 4u);
}

}  // namespace
}  // namespace uniloc
